"""Metrics and resource accounting for simulated experiments.

The paper's central complaints are quantitative — wasted electricity from
duplicated mining/validation (Digiconomist, section I) and the cost of
moving huge medical data sets (section IV).  This module gives every
experiment a uniform way to account CPU work, hash operations, bytes moved,
and derived energy, so benchmarks E1–E12 can report them.

Simulated time (the kernel's clock) and *wall-clock* time are distinct
axes: the former is what experiments model, the latter is what the parallel
executor backends actually change.  ``MetricsRegistry`` tracks both — use
:meth:`MetricsRegistry.wallclock` to time real code blocks so benchmarks
like E4's ``--wallclock`` mode report measured speedups alongside simulated
ones.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class EnergyModel:
    """Converts abstract work units into joules.

    Defaults are order-of-magnitude figures for commodity server hardware;
    experiments only compare *ratios*, so absolute calibration is not
    load-bearing.
    """

    joules_per_hash: float = 1e-6  # one SHA-256 double-hash attempt
    joules_per_gas: float = 5e-8  # one unit of contract gas
    joules_per_byte_transferred: float = 1e-8  # NIC + switch energy
    joules_per_flop: float = 1e-10  # numeric analytics work

    def energy_joules(
        self,
        hashes: float = 0.0,
        gas: float = 0.0,
        bytes_transferred: float = 0.0,
        flops: float = 0.0,
    ) -> float:
        return (
            hashes * self.joules_per_hash
            + gas * self.joules_per_gas
            + bytes_transferred * self.joules_per_byte_transferred
            + flops * self.joules_per_flop
        )


@dataclass
class Histogram:
    """Simple value recorder with summary statistics."""

    values: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile; ``fraction`` in [0, 1]."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[rank]


class Stopwatch:
    """Context manager timing a real (wall-clock) code block.

    On exit, records the elapsed seconds as both a counter
    (``wallclock_<name>_s``, summed across entries) and a histogram
    (``wallclock_<name>``, for percentiles) on the owning registry.
    """

    def __init__(self, registry: "MetricsRegistry", name: str, scope: str = ""):
        self.registry = registry
        self.name = name
        self.scope = scope
        self.elapsed_s = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:  # pragma: no cover - misuse guard
            return
        self.elapsed_s = time.perf_counter() - self._start
        self.registry.add_wallclock(self.name, self.elapsed_s, self.scope)


class MetricsRegistry:
    """Per-experiment counter/histogram store with resource accounting.

    Counters are keyed by ``(name, scope)`` where scope is typically a node
    name; aggregate views sum across scopes.
    """

    def __init__(self, energy_model: Optional[EnergyModel] = None):
        self.energy_model = energy_model or _DEFAULT_ENERGY_MODEL
        self._counters: Dict[Tuple[str, str], float] = defaultdict(float)
        self._histograms: Dict[str, Histogram] = defaultdict(Histogram)

    # -- counters ---------------------------------------------------------
    def add(self, name: str, value: float = 1.0, scope: str = "") -> None:
        self._counters[(name, scope)] += value

    def counter(self, name: str, scope: str = "") -> float:
        return self._counters[(name, scope)]

    def counter_total(self, name: str) -> float:
        return sum(
            value for (key, __), value in self._counters.items() if key == name
        )

    def scopes(self, name: str) -> Dict[str, float]:
        return {
            scope: value
            for (key, scope), value in self._counters.items()
            if key == name
        }

    # -- resource shorthands ----------------------------------------------
    def add_hashes(self, count: float, scope: str = "") -> None:
        self.add("hashes", count, scope)

    def add_gas(self, amount: float, scope: str = "") -> None:
        self.add("gas", amount, scope)

    def add_bytes(self, count: float, scope: str = "") -> None:
        self.add("bytes_transferred", count, scope)

    def add_flops(self, count: float, scope: str = "") -> None:
        self.add("flops", count, scope)

    # -- wall-clock timing --------------------------------------------------
    def add_wallclock(self, name: str, seconds: float, scope: str = "") -> None:
        """Record real elapsed seconds for a named operation."""
        self.add(f"wallclock_{name}_s", seconds, scope)
        self.observe(f"wallclock_{name}", seconds)

    def wallclock(self, name: str, scope: str = "") -> Stopwatch:
        """Time a real code block: ``with metrics.wallclock("e4_process"): ...``"""
        return Stopwatch(self, name, scope)

    def wallclock_total(self, name: str) -> float:
        """Total real seconds recorded under ``name`` (all scopes)."""
        return self.counter_total(f"wallclock_{name}_s")

    def total_energy_joules(self) -> float:
        """Energy implied by all recorded resource counters."""
        return self.energy_model.energy_joules(
            hashes=self.counter_total("hashes"),
            gas=self.counter_total("gas"),
            bytes_transferred=self.counter_total("bytes_transferred"),
            flops=self.counter_total("flops"),
        )

    def node_energy_joules(self, scope: str) -> float:
        return self.energy_model.energy_joules(
            hashes=self.counter("hashes", scope),
            gas=self.counter("gas", scope),
            bytes_transferred=self.counter("bytes_transferred", scope),
            flops=self.counter("flops", scope),
        )

    # -- histograms ---------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        self._histograms[name].record(value)

    def histogram(self, name: str) -> Histogram:
        return self._histograms[name]

    def summary(self) -> Dict[str, float]:
        """Flat dict of aggregate counters plus derived energy."""
        names = {key for key, __ in self._counters}
        out = {name: self.counter_total(name) for name in sorted(names)}
        out["energy_joules"] = self.total_energy_joules()
        return out

    # -- snapshot / merge (cross-process collection) ------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable dump of every counter and histogram.

        Executor workers snapshot their capture registry and ship it back in
        the task result envelope; the coordinator replays it with
        :meth:`merge_snapshot`, so counters recorded inside a
        ``ProcessExecutor`` worker are not lost with the worker process.
        """
        return {
            "counters": [
                [name, scope, value]
                for (name, scope), value in self._counters.items()
            ],
            "histograms": {
                name: list(histogram.values)
                for name, histogram in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Add another registry's snapshot into this one (sums counters,
        extends histograms)."""
        for name, scope, value in snapshot.get("counters", []):
            self.add(name, value, scope)
        for name, values in snapshot.get("histograms", {}).items():
            histogram = self._histograms[name]
            for value in values:
                histogram.record(value)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())


_DEFAULT_ENERGY_MODEL = EnergyModel()

# -- ambient registry ---------------------------------------------------------
#
# Library code that has no registry handed to it (analytics tools running
# inside executor workers, picklable task bodies) records into the *current*
# registry: a context-local override when installed, else a process-wide
# fallback.  ``repro.parallel`` installs a fresh capture registry around each
# task and merges the deltas back into the submitting context's registry, so
# totals agree across serial/thread/process backends.

_GLOBAL_REGISTRY = MetricsRegistry()
_CURRENT_REGISTRY: ContextVar[Optional[MetricsRegistry]] = ContextVar(
    "repro_current_metrics", default=None
)


def current_metrics() -> MetricsRegistry:
    """The registry in effect for this context (never None)."""
    registry = _CURRENT_REGISTRY.get()
    return registry if registry is not None else _GLOBAL_REGISTRY


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route :func:`current_metrics` to ``registry`` within the block."""
    token = _CURRENT_REGISTRY.set(registry)
    try:
        yield registry
    finally:
        _CURRENT_REGISTRY.reset(token)
