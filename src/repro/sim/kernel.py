"""Discrete-event simulation kernel.

Every distributed experiment in this reproduction (consensus scaling,
federated training rounds, query fan-out) runs on this kernel so results are
deterministic for a given seed and independent of host speed.

Events are ``(time, sequence, callback)`` triples in a binary heap; the
sequence number breaks ties so simultaneous events run in scheduling order.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.clock import SimClock
from repro.common.errors import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Kernel.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Mark the event so the kernel skips it."""
        self._event.cancelled = True


class Kernel:
    """Deterministic discrete-event scheduler with its own clock and RNG."""

    def __init__(self, seed: int = 0):
        self.clock = SimClock()
        self.rng = random.Random(seed)
        self._queue: List[_ScheduledEvent] = []
        self._sequence = 0
        self._events_run = 0
        self._running = False

    @property
    def now(self) -> float:
        return self.clock.now()

    @property
    def events_run(self) -> int:
        return self._events_run

    @property
    def pending(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = _ScheduledEvent(
            time=self.now + delay,
            sequence=self._sequence,
            callback=callback,
            label=label,
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(
        self, timestamp: float, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Run ``callback`` at an absolute simulation time."""
        return self.schedule(timestamp - self.now, callback, label)

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self._events_run += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Drain the event queue.

        Stops when the queue empties, the clock would pass ``until``, more
        than ``max_events`` have run in this call, or ``stop_when()`` turns
        true (checked after each event).  Returns the number of events run.
        """
        if self._running:
            raise SimulationError("kernel.run() is not reentrant")
        self._running = True
        ran = 0
        try:
            while self._queue:
                if max_events is not None and ran >= max_events:
                    break
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    self.clock.advance_to(until)
                    break
                if not self.step():
                    break
                ran += 1
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
        return ran

    def next_event_time(self) -> Optional[float]:
        """Absolute time of the next live event (None when idle).

        Lets an external driver (e.g. the p2p wall-clock pump) sleep
        exactly until the kernel has work, instead of polling.
        """
        event = self._peek()
        return event.time if event is not None else None

    def _peek(self) -> Optional[_ScheduledEvent]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None


class Process:
    """Base class for simulated actors owning a kernel reference."""

    def __init__(self, kernel: Kernel, name: str):
        self.kernel = kernel
        self.name = name

    @property
    def now(self) -> float:
        return self.kernel.now

    def after(self, delay: float, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule a callback relative to now, labelled with this actor."""
        return self.kernel.schedule(delay, callback, label or self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


def run_to_completion(kernel: Kernel, max_events: int = 10_000_000) -> int:
    """Drain every event; guard against runaway loops with ``max_events``."""
    ran = kernel.run(max_events=max_events)
    if kernel.pending:
        raise SimulationError(
            f"simulation did not converge within {max_events} events"
        )
    return ran
