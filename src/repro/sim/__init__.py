"""Discrete-event simulation substrate: kernel, network, metrics."""

from repro.sim.kernel import EventHandle, Kernel, Process, run_to_completion
from repro.sim.metrics import EnergyModel, Histogram, MetricsRegistry, Stopwatch
from repro.sim.network import LinkSpec, Message, Network

__all__ = [
    "EnergyModel",
    "EventHandle",
    "Histogram",
    "Kernel",
    "LinkSpec",
    "Message",
    "MetricsRegistry",
    "Network",
    "Process",
    "Stopwatch",
    "run_to_completion",
]
