"""Simulated message network with latency, bandwidth, loss, and partitions.

Models the wide-area links between medical blockchain nodes (Figure 2) and
charges every byte to the metrics registry so experiments can compare
"move data to compute" against "move compute to data" (E5) and account for
consensus broadcast traffic (E1/E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import SimulationError
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry

MessageHandler = Callable[[str, Any], None]


@dataclass(frozen=True)
class LinkSpec:
    """Link characteristics between two endpoints (or the default)."""

    latency_s: float = 0.02  # one-way propagation delay
    bandwidth_bps: float = 1e9  # bits per second
    loss_rate: float = 0.0  # independent drop probability
    jitter_s: float = 0.0  # uniform +/- jitter added to latency

    def transfer_time(self, size_bytes: int) -> float:
        """Propagation + serialization time for a payload (no jitter)."""
        return self.latency_s + (size_bytes * 8) / self.bandwidth_bps


@dataclass
class Message:
    """Envelope delivered to an endpoint handler."""

    sender: str
    recipient: str
    kind: str
    payload: Any
    size_bytes: int
    sent_at: float
    delivered_at: float = 0.0


class Network:
    """Point-to-point and broadcast message delivery over a kernel.

    Endpoints register a handler; :meth:`send` schedules delivery after the
    link's latency/serialization delay; partitions and loss silently drop
    messages (as a real UDP-ish gossip layer would).
    """

    def __init__(
        self,
        kernel: Kernel,
        metrics: Optional[MetricsRegistry] = None,
        default_link: Optional[LinkSpec] = None,
    ):
        self.kernel = kernel
        self.metrics = metrics or MetricsRegistry()
        self.default_link = default_link or LinkSpec()
        self._handlers: Dict[str, MessageHandler] = {}
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self._partitions: List[Set[str]] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- topology ------------------------------------------------------------
    def register(self, name: str, handler: MessageHandler) -> None:
        """Attach an endpoint.  Names must be unique."""
        if name in self._handlers:
            raise SimulationError(f"endpoint {name!r} already registered")
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    @property
    def endpoints(self) -> List[str]:
        return sorted(self._handlers)

    def set_link(self, a: str, b: str, spec: LinkSpec) -> None:
        """Override link characteristics between two endpoints (symmetric)."""
        self._links[(a, b)] = spec
        self._links[(b, a)] = spec

    def link(self, a: str, b: str) -> LinkSpec:
        return self._links.get((a, b), self.default_link)

    # -- partitions -----------------------------------------------------------
    def partition(self, *groups: Iterable[str]) -> None:
        """Split endpoints into isolated groups; cross-group traffic drops."""
        self._partitions = [set(group) for group in groups]

    def heal(self) -> None:
        """Remove all partitions."""
        self._partitions = []

    def _group_of(self, name: str) -> Optional[int]:
        for index, group in enumerate(self._partitions):
            if name in group:
                return index
        return None

    def _partitioned(self, a: str, b: str) -> bool:
        """Symmetric partition check.

        Two endpoints communicate iff they are in the same group, or both
        are outside every group.  (An earlier version answered only from
        the sender's side, so an ungrouped sender could reach a group
        member while the reply was dropped — a one-way partition no real
        network split produces.)
        """
        if not self._partitions:
            return False
        group_a = self._group_of(a)
        group_b = self._group_of(b)
        if group_a is None and group_b is None:
            return False
        return group_a != group_b

    # -- delivery ---------------------------------------------------------
    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size_bytes: int = 256,
    ) -> bool:
        """Send one message.  Returns False when it was dropped upfront."""
        if recipient not in self._handlers:
            raise SimulationError(f"unknown endpoint {recipient!r}")
        self.messages_sent += 1
        spec = self.link(sender, recipient)
        self.metrics.add_bytes(size_bytes, scope=sender)
        if self._partitioned(sender, recipient):
            self.messages_dropped += 1
            return False
        if spec.loss_rate > 0 and self.kernel.rng.random() < spec.loss_rate:
            self.messages_dropped += 1
            return False
        delay = spec.transfer_time(size_bytes)
        if spec.jitter_s > 0:
            delay += self.kernel.rng.uniform(0, spec.jitter_s)
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.kernel.now,
        )
        self.kernel.schedule(
            delay, lambda: self._deliver(message), label=f"msg:{kind}"
        )
        return True

    def broadcast(
        self,
        sender: str,
        kind: str,
        payload: Any,
        size_bytes: int = 256,
        include_self: bool = False,
    ) -> int:
        """Send to every registered endpoint; returns attempted count."""
        count = 0
        for name in self.endpoints:
            if name == sender and not include_self:
                continue
            self.send(sender, name, kind, payload, size_bytes)
            count += 1
        return count

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.recipient)
        if handler is None:
            self.messages_dropped += 1
            return
        message.delivered_at = self.kernel.now
        self.messages_delivered += 1
        self.metrics.observe("network_delay_s", message.delivered_at - message.sent_at)
        handler(message.sender, message)
