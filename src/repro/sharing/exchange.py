"""Health Information Exchange (HIE) over the medical blockchain.

Figure 2's exchange path: when analytics genuinely need records to move —
real-world-evidence review, or compute too expensive for a small site — data
is exchanged (a) only under an on-chain access grant, (b) encrypted so only
the requester can read it, (c) with every step in the hash-chained audit
log, and (d) optionally via a trusted third-party node (e.g. the FDA) that
carries the heavy compute.

This replaces the "secure e-mail" status quo the paper criticizes: the
delivered payload is structured canonical data that feeds directly into the
analytics stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import AccessDeniedError, IntegrityError, OracleError
from repro.common.hashing import hash_value_hex
from repro.common.signatures import KeyPair
from repro.consensus.node import BlockchainNode
from repro.offchain.anchoring import verify_dataset
from repro.sharing.audit import AuditLog
from repro.sharing.encryption import Envelope, encrypt_for
from repro.sim.metrics import MetricsRegistry


@dataclass
class ExchangeReceipt:
    """Record of one completed exchange."""

    request_id: str
    dataset_id: str
    requester: str
    site: str
    record_count: int
    payload_bytes: int
    payload_hash: str
    envelope: Envelope


class ExchangeService:
    """Per-site HIE endpoint, bound to the site's chain node and data host.

    The grant check runs against the *on-chain* data contract — the exchange
    cannot be more permissive than the ledger says.
    """

    def __init__(
        self,
        site: str,
        node: BlockchainNode,
        data_contract_id: str,
        host: Any,  # DatasetHost duck-type
        audit: Optional[AuditLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        verify_integrity: bool = True,
    ):
        self.site = site
        self.node = node
        self.data_contract_id = data_contract_id
        self.host = host
        self.audit = audit or AuditLog(name=f"{site}-audit")
        self.metrics = metrics or MetricsRegistry()
        self.verify_integrity = verify_integrity
        self._request_counter = 0

    def request_records(
        self,
        requester: KeyPair,
        dataset_id: str,
        purpose: str,
        fields: Optional[Sequence[str]] = None,
    ) -> ExchangeReceipt:
        """Release a dataset to an authorized requester, encrypted.

        ``fields`` optionally projects each record down to a schema subset
        (the paper's "returned data format will be based on users' requested
        schema").
        """
        self._request_counter += 1
        request_id = f"{self.site}-xchg-{self._request_counter:06d}"
        now_ms = int(self.node.now * 1000)
        self.audit.append(
            actor=requester.address,
            action="request",
            resource=dataset_id,
            detail={"purpose": purpose, "request_id": request_id},
            timestamp_ms=now_ms,
        )
        allowed = self.node.call_view(
            self.data_contract_id,
            "check_access",
            {
                "dataset_id": dataset_id,
                "grantee": requester.address,
                "purpose": purpose,
                "now_ms": now_ms,
            },
        )
        if not allowed:
            self.audit.append(
                actor=self.site,
                action="deny",
                resource=dataset_id,
                detail={"requester": requester.address, "request_id": request_id},
                timestamp_ms=now_ms,
            )
            raise AccessDeniedError(
                f"{requester.address[:12]} has no grant on {dataset_id} for {purpose!r}"
            )
        if not self.host.has_dataset(dataset_id):
            raise OracleError(f"dataset {dataset_id!r} is not hosted at {self.site}")
        records = self.host.get_records(dataset_id)
        if self.verify_integrity:
            entry = self.node.call_view(
                self.data_contract_id, "get_dataset", {"dataset_id": dataset_id}
            )
            if entry is None or not verify_dataset(records, entry["merkle_root"]):
                self.audit.append(
                    actor=self.site,
                    action="integrity-failure",
                    resource=dataset_id,
                    detail={"request_id": request_id},
                    timestamp_ms=now_ms,
                )
                raise IntegrityError(
                    f"dataset {dataset_id} failed its anchor check before exchange"
                )
        if fields:
            records = [
                {key: record[key] for key in fields if key in record}
                for record in records
            ]
        payload = {"dataset_id": dataset_id, "records": records}
        envelope = encrypt_for(requester.public, payload)
        payload_bytes = envelope.size_bytes
        self.metrics.add_bytes(payload_bytes, scope=self.site)
        self.audit.append(
            actor=self.site,
            action="release",
            resource=dataset_id,
            detail={
                "requester": requester.address,
                "request_id": request_id,
                "records": len(records),
                "payload_hash": hash_value_hex({"n": len(records)}),
            },
            timestamp_ms=now_ms,
        )
        return ExchangeReceipt(
            request_id=request_id,
            dataset_id=dataset_id,
            requester=requester.address,
            site=self.site,
            record_count=len(records),
            payload_bytes=payload_bytes,
            payload_hash=hash_value_hex({"n": len(records)}),
            envelope=envelope,
        )


class TrustedThirdParty:
    """A government-grade node (the FDA of Figure 2).

    Aggregates exchanges from many sites for analyses that genuinely need
    pooled data, keeping the full audit trail; also the place where "too
    expensive for every site" compute would run.
    """

    def __init__(self, name: str, keypair: KeyPair, metrics: Optional[MetricsRegistry] = None):
        self.name = name
        self.keypair = keypair
        self.metrics = metrics or MetricsRegistry()
        self.audit = AuditLog(name=f"{name}-audit")
        self.received: List[ExchangeReceipt] = []

    def collect(
        self,
        exchanges: Sequence[ExchangeService],
        dataset_ids: Dict[str, str],
        purpose: str,
    ) -> List[ExchangeReceipt]:
        """Pull one dataset per site (``{site: dataset_id}``) under grants."""
        receipts = []
        for exchange in exchanges:
            dataset_id = dataset_ids.get(exchange.site)
            if dataset_id is None:
                continue
            receipt = exchange.request_records(self.keypair, dataset_id, purpose)
            self.metrics.add_bytes(receipt.payload_bytes, scope=self.name)
            self.audit.append(
                actor=self.name,
                action="collect",
                resource=dataset_id,
                detail={"site": exchange.site, "records": receipt.record_count},
            )
            self.received.append(receipt)
            receipts.append(receipt)
        return receipts

    def decrypt_all(self) -> List[Dict[str, Any]]:
        """Open every collected envelope; returns the pooled records."""
        from repro.sharing.encryption import decrypt

        pooled: List[Dict[str, Any]] = []
        for receipt in self.received:
            payload = decrypt(self.keypair.private, receipt.envelope)
            pooled.extend(payload["records"])
        return pooled
