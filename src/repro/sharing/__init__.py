"""Distributed data sharing: encryption, audit trail, HIE exchange."""

from repro.sharing.audit import AuditEntry, AuditLog
from repro.sharing.encryption import Envelope, decrypt, encrypt_for
from repro.sharing.exchange import (
    ExchangeReceipt,
    ExchangeService,
    TrustedThirdParty,
)

__all__ = [
    "AuditEntry",
    "AuditLog",
    "Envelope",
    "ExchangeReceipt",
    "ExchangeService",
    "TrustedThirdParty",
    "decrypt",
    "encrypt_for",
]
