"""Envelope encryption for exchanged medical data.

"If the users' submitted requests are retrieving data, the system will
return the encrypted data which only the requesting user can decrypt"
(section IV).  Construction: ephemeral-static ECDH over secp256k1 derives a
shared secret; a SHA-256 counter keystream encrypts the canonical-JSON
payload; an HMAC tag authenticates it.  From-scratch and unaudited — the
protocol *structure* (encrypt-to-requester, integrity tag) is what the
reproduction needs, per DESIGN.md.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.common.errors import CryptoError
from repro.common.serialize import canonical_bytes, from_json
from repro.common.signatures import KeyPair, PrivateKey, PublicKey, shared_secret


def _keystream(key: bytes, length: int) -> bytes:
    """SHA-256 in counter mode."""
    blocks = []
    produced = 0
    counter = 0
    while produced < length:
        block = hashlib.sha256(key + counter.to_bytes(8, "big")).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    """Constant-width XOR via big-int arithmetic (fast for MB payloads)."""
    if not data:
        return b""
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(len(data), "big")


@dataclass(frozen=True)
class Envelope:
    """Encrypted payload addressed to one public key."""

    ephemeral_public: bytes  # compressed point
    ciphertext: bytes
    tag: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.ephemeral_public) + len(self.ciphertext) + len(self.tag)


def encrypt_for(
    recipient: PublicKey, payload: Any, ephemeral_seed: bytes = b""
) -> Envelope:
    """Encrypt any canonical-serializable payload to ``recipient``.

    ``ephemeral_seed`` keeps tests deterministic; production use would pass
    fresh randomness.
    """
    plaintext = canonical_bytes(payload)
    seed = ephemeral_seed or hashlib.sha256(plaintext + recipient.data).digest()
    ephemeral = KeyPair.from_seed(b"ephemeral|" + seed)
    secret = shared_secret(ephemeral.private, recipient)
    enc_key = hashlib.sha256(b"enc" + secret).digest()
    mac_key = hashlib.sha256(b"mac" + secret).digest()
    stream = _keystream(enc_key, len(plaintext))
    ciphertext = _xor(plaintext, stream)
    tag = hmac.new(mac_key, ciphertext, hashlib.sha256).digest()
    return Envelope(
        ephemeral_public=ephemeral.public.data, ciphertext=ciphertext, tag=tag
    )


def decrypt(private: PrivateKey, envelope: Envelope) -> Any:
    """Decrypt an envelope; raises :class:`CryptoError` on tampering or
    wrong recipient."""
    ephemeral_public = PublicKey(envelope.ephemeral_public)
    secret = shared_secret(private, ephemeral_public)
    enc_key = hashlib.sha256(b"enc" + secret).digest()
    mac_key = hashlib.sha256(b"mac" + secret).digest()
    expected = hmac.new(mac_key, envelope.ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, envelope.tag):
        raise CryptoError("envelope authentication failed (wrong key or tampered)")
    stream = _keystream(enc_key, len(envelope.ciphertext))
    plaintext = _xor(envelope.ciphertext, stream)
    try:
        return from_json(plaintext.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise CryptoError("decrypted payload is not valid UTF-8") from exc
