"""Hash-chained, append-only audit log.

The paper's indictment of current HIE systems is that they are "opaque and
un-auditable" (section III.B) — the US government could not even assign
blame for data-blocking violations.  Every exchange action here lands in a
hash chain: entry N commits to entry N-1, so any retroactive edit breaks
verification from that point on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.common.errors import IntegrityError
from repro.common.hashing import ZERO_HASH, hash_value


@dataclass
class AuditEntry:
    """One audited action."""

    sequence: int
    actor: str
    action: str
    resource: str
    detail: Dict[str, Any]
    timestamp_ms: int
    prev_hash: bytes
    entry_hash: bytes = b""

    def compute_hash(self) -> bytes:
        return hash_value(
            {
                "sequence": self.sequence,
                "actor": self.actor,
                "action": self.action,
                "resource": self.resource,
                "detail": self.detail,
                "timestamp_ms": self.timestamp_ms,
                "prev_hash": self.prev_hash,
            },
            allow_float=False,
        )


class AuditLog:
    """Append-only chain of :class:`AuditEntry` records."""

    def __init__(self, name: str = "hie-audit"):
        self.name = name
        self._entries: List[AuditEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def head_hash(self) -> bytes:
        return self._entries[-1].entry_hash if self._entries else ZERO_HASH

    def append(
        self,
        actor: str,
        action: str,
        resource: str,
        detail: Optional[Dict[str, Any]] = None,
        timestamp_ms: int = 0,
    ) -> AuditEntry:
        entry = AuditEntry(
            sequence=len(self._entries),
            actor=actor,
            action=action,
            resource=resource,
            detail=dict(detail or {}),
            timestamp_ms=timestamp_ms,
            prev_hash=self.head_hash,
        )
        entry.entry_hash = entry.compute_hash()
        self._entries.append(entry)
        return entry

    def entries(self) -> List[AuditEntry]:
        return list(self._entries)

    def entries_for(self, resource: str) -> List[AuditEntry]:
        return [entry for entry in self._entries if entry.resource == resource]

    def entries_by(self, actor: str) -> List[AuditEntry]:
        return [entry for entry in self._entries if entry.actor == actor]

    def verify(self) -> bool:
        """Recheck the whole chain; False on any edit, insertion, deletion."""
        prev = ZERO_HASH
        for index, entry in enumerate(self._entries):
            if entry.sequence != index or entry.prev_hash != prev:
                return False
            if entry.compute_hash() != entry.entry_hash:
                return False
            prev = entry.entry_hash
        return True

    def require_valid(self) -> None:
        if not self.verify():
            raise IntegrityError(f"audit log {self.name!r} failed verification")
