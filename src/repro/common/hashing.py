"""SHA-256 hashing helpers used throughout the chain and integrity layers."""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, List

from repro.common.serialize import canonical_bytes

HASH_SIZE = 32
ZERO_HASH = b"\x00" * HASH_SIZE


def sha256(data: bytes) -> bytes:
    """Raw SHA-256 digest."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Hex-encoded SHA-256 digest."""
    return hashlib.sha256(data).hexdigest()


def hash_value(value: Any, allow_float: bool = True) -> bytes:
    """Hash any canonically-serializable value."""
    return sha256(canonical_bytes(value, allow_float))


def hash_value_hex(value: Any, allow_float: bool = True) -> str:
    """Hex form of :func:`hash_value`."""
    return hash_value(value, allow_float).hex()


def hash_leaves_batch(items: Iterable[bytes]) -> List[bytes]:
    """Digest many byte items in one pass (Merkle leaf construction).

    The hot callers — blob manifests over tens of thousands of chunks,
    :class:`~repro.offchain.anchoring.DatasetAnchor` over whole datasets —
    build their entire leaf layer here, so the per-item cost is one bound
    constructor call with no wrapper indirection.
    """
    digest = hashlib.sha256
    return [digest(item).digest() for item in items]


def hash_pair(left: bytes, right: bytes) -> bytes:
    """Hash two child digests into a parent digest (Merkle interior node)."""
    return sha256(left + right)


def short_hash(data: bytes, length: int = 8) -> str:
    """Human-friendly hash prefix for logging and ids."""
    return sha256_hex(data)[:length]
