"""Simulated and wall clocks.

All distributed components take a :class:`Clock` so the whole system can run
on simulated time inside the discrete-event kernel (deterministic, fast) or
on wall time in the examples.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.common.errors import SimulationError


class Clock(ABC):
    """Minimal clock interface used across the library."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds."""


class WallClock(Clock):
    """Real time (``time.monotonic``-anchored to an epoch of zero)."""

    def __init__(self) -> None:
        self._start = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._start


class SimClock(Clock):
    """Manually-advanced simulated clock driven by the event kernel."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Advance to an absolute time; time never flows backwards."""
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)

    def advance_by(self, delta: float) -> None:
        """Advance by a non-negative delta."""
        if delta < 0:
            raise SimulationError(f"negative clock delta: {delta}")
        self._now += float(delta)
