"""Canonical, deterministic serialization.

Blockchain consensus requires every node to compute the *same* bytes for the
same logical value, so hashing must run over a canonical encoding.  We use
JSON with sorted keys, no whitespace, and explicit handling of bytes (hex)
and dataclasses.  Floats are rejected inside consensus-critical payloads
(transactions, blocks) because float formatting is platform-dependent; use
:func:`encode_decimal` to carry fixed-point values instead.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.common.errors import SerializationError

_FIXED_POINT_SCALE = 10**9


def encode_decimal(value: float, scale: int = _FIXED_POINT_SCALE) -> int:
    """Encode a float as a fixed-point integer safe for consensus payloads."""
    return int(round(value * scale))


def decode_decimal(value: int, scale: int = _FIXED_POINT_SCALE) -> float:
    """Invert :func:`encode_decimal`."""
    return value / scale


def to_jsonable(value: Any, allow_float: bool = True) -> Any:
    """Recursively convert ``value`` into plain JSON-compatible types.

    Supports dataclasses, dicts, lists/tuples, bytes (hex-encoded with a
    ``"0x"`` prefix), and scalars.  Set ``allow_float=False`` for
    consensus-critical payloads.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not allow_float:
            raise SerializationError(
                "floats are not allowed in consensus-critical payloads; "
                "use encode_decimal()"
            )
        return value
    if isinstance(value, (bytes, bytearray)):
        return "0x" + bytes(value).hex()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name), allow_float)
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(f"dict keys must be str, got {type(key).__name__}")
            out[key] = to_jsonable(item, allow_float)
        return out
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item, allow_float) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [to_jsonable(item, allow_float) for item in value]
        try:
            return sorted(items)
        except TypeError as exc:
            raise SerializationError("sets must contain sortable items") from exc
    raise SerializationError(f"cannot serialize {type(value).__name__}")


def canonical_json(value: Any, allow_float: bool = True) -> str:
    """Render ``value`` as canonical JSON text (sorted keys, no whitespace)."""
    jsonable = to_jsonable(value, allow_float)
    return json.dumps(jsonable, sort_keys=True, separators=(",", ":"))


def canonical_bytes(value: Any, allow_float: bool = True) -> bytes:
    """Canonical JSON encoded as UTF-8 bytes, ready for hashing."""
    return canonical_json(value, allow_float).encode("utf-8")


def from_json(text: str) -> Any:
    """Parse JSON text produced by :func:`canonical_json`."""
    try:
        return json.loads(text)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc


def decode_hex_fields(value: Any) -> Any:
    """Recursively decode ``"0x..."`` strings back into bytes."""
    if isinstance(value, str) and value.startswith("0x"):
        try:
            return bytes.fromhex(value[2:])
        except ValueError:
            return value
    if isinstance(value, dict):
        return {key: decode_hex_fields(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_hex_fields(item) for item in value]
    return value
