"""Exception hierarchy shared across the medchain reproduction.

Every subsystem raises a subclass of :class:`MedchainError` so callers can
catch library failures without accidentally swallowing programming errors.
"""

from __future__ import annotations


class MedchainError(Exception):
    """Base class for every error raised by this library."""


class SerializationError(MedchainError):
    """A value could not be canonically serialized or deserialized."""


class CryptoError(MedchainError):
    """Signature creation or verification failed."""


class ValidationError(MedchainError):
    """A block, transaction, or message failed structural validation."""


class ConsensusError(MedchainError):
    """Consensus protocol violation (bad proof, unknown validator, ...)."""


class ChainError(MedchainError):
    """Chain-store level failure (unknown block, bad parent linkage, ...)."""


class ContractError(MedchainError):
    """Smart-contract deployment or execution failed."""


class OutOfGasError(ContractError):
    """Contract execution exceeded its gas limit."""


class ContractVerificationError(ContractError):
    """Static verification rejected a contract before deployment.

    Carries the list of :class:`repro.analysis.findings.Finding` objects
    that caused the rejection, so deploy tooling can render them.
    """

    def __init__(self, message: str, findings=None):
        super().__init__(message)
        self.findings = list(findings or [])


class AccessDeniedError(MedchainError):
    """An on-chain access policy rejected a data or analytics request."""


class OracleError(MedchainError):
    """The data oracle / monitor node could not satisfy a bridge request."""


class DataFormatError(MedchainError):
    """A legacy EMR record could not be mapped to the canonical schema."""


class IntegrityError(MedchainError):
    """Hash-anchored data failed its integrity check (tampering detected)."""


class DataAvailabilityError(MedchainError):
    """Erasure coding, dispersal, or availability audit failure (repro.da)."""


class QueryError(MedchainError):
    """A research query could not be parsed, decomposed, or composed."""


class LearningError(MedchainError):
    """Federated / transfer learning configuration or aggregation failure."""


class TrialError(MedchainError):
    """Clinical-trial registry or monitoring failure."""


class SimulationError(MedchainError):
    """Discrete-event simulation kernel misuse."""
