"""Deterministic identifier generation.

The simulation must be reproducible, so ids are derived from a namespace and
a monotonically increasing counter (or explicit content) rather than from
``uuid4``.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator

from repro.common.hashing import hash_value_hex

_counters: Dict[str, Iterator[int]] = {}


def next_id(namespace: str) -> str:
    """Sequential id like ``"tx-000001"`` within a namespace.

    Counters are process-global; tests that need isolation should use
    :func:`reset_ids`.
    """
    counter = _counters.setdefault(namespace, itertools.count(1))
    return f"{namespace}-{next(counter):06d}"


def reset_ids() -> None:
    """Reset all namespaces (test isolation)."""
    _counters.clear()


def content_id(namespace: str, value: Any, length: int = 16) -> str:
    """Content-addressed id: stable hash of a canonical value."""
    return f"{namespace}-{hash_value_hex(value)[:length]}"
