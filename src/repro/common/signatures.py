"""Schnorr signatures over secp256k1, implemented from scratch.

The paper's architecture needs ownership and authenticity (every transaction,
data-set registration, and access grant is signed).  We implement a compact
Schnorr scheme over the secp256k1 curve in pure Python: enough to make the
protocol structure real (keygen / sign / verify / address derivation) without
any external crypto dependency.  Nonces are derived deterministically from
the secret key and message (RFC-6979 style), so signing is reproducible.

This is a reproduction artifact, not audited cryptography.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import CryptoError

# secp256k1 domain parameters.
_P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
_N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
_GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
_GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8

Point = Optional[Tuple[int, int]]  # None is the point at infinity.


def _point_add(a: Point, b: Point) -> Point:
    if a is None:
        return b
    if b is None:
        return a
    ax, ay = a
    bx, by = b
    if ax == bx and (ay + by) % _P == 0:
        return None
    if a == b:
        lam = (3 * ax * ax) * pow(2 * ay, _P - 2, _P) % _P
    else:
        lam = (by - ay) * pow(bx - ax, _P - 2, _P) % _P
    x = (lam * lam - ax - bx) % _P
    y = (lam * (ax - x) - ay) % _P
    return (x, y)


# Scalar multiplication uses Jacobian coordinates: one modular inversion per
# multiplication instead of one per point addition (~100x faster in pure
# Python, which dominates simulation wall-clock).
_JPoint = Tuple[int, int, int]  # (X, Y, Z); Z == 0 is the point at infinity.


def _jac_double(p: _JPoint) -> _JPoint:
    x, y, z = p
    if z == 0 or y == 0:
        return (0, 1, 0)
    ysq = y * y % _P
    s = 4 * x * ysq % _P
    m = 3 * x * x % _P  # curve parameter a == 0 for secp256k1
    nx = (m * m - 2 * s) % _P
    ny = (m * (s - nx) - 8 * ysq * ysq) % _P
    nz = 2 * y * z % _P
    return (nx, ny, nz)


def _jac_add(p: _JPoint, q: _JPoint) -> _JPoint:
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1sq = z1 * z1 % _P
    z2sq = z2 * z2 % _P
    u1 = x1 * z2sq % _P
    u2 = x2 * z1sq % _P
    s1 = y1 * z2sq * z2 % _P
    s2 = y2 * z1sq * z1 % _P
    if u1 == u2:
        if s1 != s2:
            return (0, 1, 0)
        return _jac_double(p)
    h = (u2 - u1) % _P
    r = (s2 - s1) % _P
    hsq = h * h % _P
    hcb = hsq * h % _P
    u1hsq = u1 * hsq % _P
    nx = (r * r - hcb - 2 * u1hsq) % _P
    ny = (r * (u1hsq - nx) - s1 * hcb) % _P
    nz = h * z1 * z2 % _P
    return (nx, ny, nz)


def _jac_to_affine(p: _JPoint) -> Point:
    if p[2] == 0:
        return None
    z_inv = pow(p[2], _P - 2, _P)
    z_inv_sq = z_inv * z_inv % _P
    return (p[0] * z_inv_sq % _P, p[1] * z_inv_sq * z_inv % _P)


def _point_mul(k: int, point: Point) -> Point:
    if point is None or k % _N == 0:
        return None
    result: _JPoint = (0, 1, 0)
    addend: _JPoint = (point[0], point[1], 1)
    while k:
        if k & 1:
            result = _jac_add(result, addend)
        addend = _jac_double(addend)
        k >>= 1
    return _jac_to_affine(result)


def _encode_point(point: Point) -> bytes:
    if point is None:
        raise CryptoError("cannot encode the point at infinity")
    x, y = point
    return b"\x02" + x.to_bytes(32, "big") if y % 2 == 0 else b"\x03" + x.to_bytes(32, "big")


def _lift_x(data: bytes) -> Point:
    if len(data) != 33 or data[0] not in (2, 3):
        raise CryptoError("invalid compressed point encoding")
    x = int.from_bytes(data[1:], "big")
    if x >= _P:
        raise CryptoError("point x out of range")
    y_sq = (pow(x, 3, _P) + 7) % _P
    y = pow(y_sq, (_P + 1) // 4, _P)
    if y * y % _P != y_sq:
        raise CryptoError("x is not on the curve")
    if (y % 2 == 0) != (data[0] == 2):
        y = _P - y
    return (x, y)


def _tagged_hash(tag: bytes, data: bytes) -> int:
    digest = hashlib.sha256(tag + data).digest()
    return int.from_bytes(digest, "big") % _N


@dataclass(frozen=True)
class PublicKey:
    """Compressed secp256k1 public key."""

    data: bytes

    def __post_init__(self) -> None:
        _lift_x(self.data)  # validate eagerly

    @property
    def point(self) -> Point:
        return _lift_x(self.data)

    def address(self) -> str:
        """Short hex address derived from the key (ledger account id)."""
        return hashlib.sha256(self.data).hexdigest()[:40]

    def verify(self, message: bytes, signature: "Signature") -> bool:
        """Schnorr verification: R = s*G - e*P and e == H(R || P || m)."""
        if not 0 < signature.s < _N:
            return False
        try:
            r_point = _lift_x(signature.r)
        except CryptoError:
            return False
        e = _tagged_hash(b"medchain/schnorr", signature.r + self.data + message)
        s_g = _point_mul(signature.s, (_GX, _GY))
        neg_e_p = _point_mul(_N - e, self.point)
        candidate = _point_add(s_g, neg_e_p)
        return candidate == r_point


@dataclass(frozen=True)
class Signature:
    """Schnorr signature: compressed nonce point ``r`` and scalar ``s``."""

    r: bytes
    s: int

    def to_bytes(self) -> bytes:
        return self.r + self.s.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        if len(data) != 65:
            raise CryptoError("signature must be 65 bytes")
        return cls(r=data[:33], s=int.from_bytes(data[33:], "big"))


@dataclass(frozen=True)
class PrivateKey:
    """secp256k1 private scalar with deterministic Schnorr signing."""

    secret: int

    def __post_init__(self) -> None:
        if not 0 < self.secret < _N:
            raise CryptoError("private key out of range")

    @classmethod
    def from_seed(cls, seed: bytes) -> "PrivateKey":
        """Derive a valid private key from arbitrary seed bytes."""
        counter = 0
        while True:
            digest = hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
            candidate = int.from_bytes(digest, "big")
            if 0 < candidate < _N:
                return cls(candidate)
            counter += 1

    def public_key(self) -> PublicKey:
        point = _point_mul(self.secret, (_GX, _GY))
        return PublicKey(_encode_point(point))

    def _nonce(self, message: bytes) -> int:
        """Deterministic nonce (RFC-6979 flavoured HMAC construction)."""
        key = self.secret.to_bytes(32, "big")
        counter = 0
        while True:
            mac = hmac.new(
                key, message + counter.to_bytes(4, "big"), hashlib.sha256
            ).digest()
            k = int.from_bytes(mac, "big") % _N
            if k != 0:
                return k
            counter += 1

    def sign(self, message: bytes) -> Signature:
        """Produce a Schnorr signature over ``message``."""
        k = self._nonce(message)
        r_point = _point_mul(k, (_GX, _GY))
        r_bytes = _encode_point(r_point)
        pub = self.public_key()
        e = _tagged_hash(b"medchain/schnorr", r_bytes + pub.data + message)
        s = (k + e * self.secret) % _N
        return Signature(r=r_bytes, s=s)


def shared_secret(private: "PrivateKey", public: "PublicKey") -> bytes:
    """ECDH shared secret: hash of the x-coordinate of ``secret * P``.

    Both sides derive the same 32 bytes: ``shared_secret(a, B) ==
    shared_secret(b, A)``.  Used by the HIE layer's envelope encryption.
    """
    point = _point_mul(private.secret, public.point)
    if point is None:
        raise CryptoError("degenerate shared secret")
    return hashlib.sha256(b"medchain/ecdh" + point[0].to_bytes(32, "big")).digest()


@dataclass(frozen=True)
class KeyPair:
    """Convenience bundle of a private key, its public key, and address."""

    private: PrivateKey
    public: PublicKey

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeyPair":
        private = PrivateKey.from_seed(seed)
        return cls(private=private, public=private.public_key())

    @classmethod
    def generate(cls, label: str) -> "KeyPair":
        """Deterministic keypair derived from a human-readable label."""
        return cls.from_seed(label.encode("utf-8"))

    @property
    def address(self) -> str:
        return self.public.address()

    def sign(self, message: bytes) -> Signature:
        return self.private.sign(message)
