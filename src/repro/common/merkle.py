"""Merkle tree over transaction (or record) hashes.

Used for block transaction roots and for anchoring off-chain data sets on
chain (Irving & Holden style integrity proofs, paper section III.A/B).
Odd layers duplicate the last node, matching Bitcoin's construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import ValidationError
from repro.common.hashing import ZERO_HASH, hash_pair, sha256


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf.

    ``path`` lists sibling digests from leaf level to the root; ``index`` is
    the leaf's position, whose bits select left/right at each level.
    """

    leaf: bytes
    index: int
    path: List[bytes]

    def root(self) -> bytes:
        """Recompute the root implied by this proof."""
        node = self.leaf
        position = self.index
        for sibling in self.path:
            if position % 2 == 0:
                node = hash_pair(node, sibling)
            else:
                node = hash_pair(sibling, node)
            position //= 2
        return node

    def verify(self, expected_root: bytes) -> bool:
        """True when the proof reproduces ``expected_root``."""
        return self.root() == expected_root


class MerkleTree:
    """Binary Merkle tree built from leaf digests."""

    def __init__(self, leaves: Sequence[bytes]):
        for leaf in leaves:
            if not isinstance(leaf, bytes) or len(leaf) != 32:
                raise ValidationError("merkle leaves must be 32-byte digests")
        self._leaves: List[bytes] = list(leaves)
        self._levels: List[List[bytes]] = self._build(self._leaves)

    @staticmethod
    def _build(leaves: List[bytes]) -> List[List[bytes]]:
        if not leaves:
            return [[ZERO_HASH]]
        levels = [list(leaves)]
        current = list(leaves)
        while len(current) > 1:
            if len(current) % 2 == 1:
                current = current + [current[-1]]
                levels[-1] = current
            parent = [
                hash_pair(current[i], current[i + 1]) for i in range(0, len(current), 2)
            ]
            levels.append(parent)
            current = parent
        return levels

    @property
    def root(self) -> bytes:
        """Root digest; ZERO_HASH for an empty tree."""
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._leaves)

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaves):
            raise ValidationError(f"leaf index {index} out of range")
        path: List[bytes] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position + 1 if position % 2 == 0 else position - 1
            path.append(level[sibling_index])
            position //= 2
        return MerkleProof(leaf=self._leaves[index], index=index, path=path)

    @classmethod
    def from_items(cls, items: Sequence[bytes]) -> "MerkleTree":
        """Build a tree by hashing raw byte items into leaves first."""
        return cls([sha256(item) for item in items])


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Convenience: root of a tree over pre-hashed leaves."""
    return MerkleTree(leaves).root
