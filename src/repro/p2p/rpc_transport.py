"""RpcTransport — the p2p Transport over PR 4's framed-TCP JSON-RPC stack.

The protocol engine stays single-threaded: it runs on a discrete-event
kernel driven against the wall clock by a :class:`~repro.p2p.host.KernelPump`.
``request`` submits the async pool call to the shared asyncio loop thread
and marshals the completion back onto the kernel thread via
``pump.inject``, so engine callbacks never race.  Timers are real: the
pump advances the kernel clock with wall time, so the same
``schedule``-based ping/backoff/timeout logic that runs in simulation
runs here unchanged.

Retries are owned by the engine (redial backoff, fetch-from-next-source),
so the pools are built with a single-attempt policy — stacking the RPC
layer's own retries underneath would double-apply announcements.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.p2p.transport import DispatchFn, ErrorCallback, P2PError, PeerUnreachable, ResultCallback
from repro.rpc.client import ConnectionPool, RetryPolicy
from repro.rpc.errors import RpcError


def split_addr(addr: str) -> tuple:
    """``host:port`` → (host, port); the p2p address format over TCP."""
    host, _, port = addr.rpartition(":")
    return host or "127.0.0.1", int(port)


class RpcTransport:
    """Engine-facing transport speaking framed TCP to peer RPC servers."""

    def __init__(
        self,
        pump,
        loop,
        local_addr: str,
        *,
        connect_timeout_s: float = 3.0,
        max_connections: int = 2,
    ):
        self.pump = pump
        self.loop = loop  # repro.rpc.runtime.EventLoopThread
        self.local_addr = local_addr
        self.connect_timeout_s = connect_timeout_s
        self.max_connections = max_connections
        self.dispatch: Optional[DispatchFn] = None
        self._pools: Dict[str, ConnectionPool] = {}
        self._closed = False

    # -- Transport surface ---------------------------------------------------
    @property
    def now(self) -> float:
        return self.pump.kernel.now

    @property
    def rng(self):
        return self.pump.kernel.rng

    def schedule(self, delay_s: float, callback: Callable[[], None], label: str = ""):
        return self.pump.kernel.schedule(delay_s, callback, label or "p2p")

    def request(
        self,
        peer: str,
        method: str,
        params: Dict[str, Any],
        on_result: ResultCallback,
        on_error: Optional[ErrorCallback] = None,
        timeout_s: float = 5.0,
    ) -> None:
        if self._closed:
            self._deliver_error(on_error, PeerUnreachable("transport closed"))
            return
        pool = self._pool(peer)

        async def roundtrip() -> Any:
            return await pool.call(method, params, timeout_s=timeout_s)

        future = self.loop.submit(roundtrip())
        future.add_done_callback(
            lambda f: self.pump.inject(lambda: self._complete(f, on_result, on_error))
        )

    def close(self) -> None:
        self._closed = True
        pools, self._pools = list(self._pools.values()), {}

        async def shutdown() -> None:
            for pool in pools:
                await pool.close()

        try:
            self.loop.run(shutdown(), timeout_s=self.connect_timeout_s + 2.0)
        except Exception:
            pass  # sockets die with the loop thread anyway

    # -- plumbing ------------------------------------------------------------
    def _pool(self, peer: str) -> ConnectionPool:
        pool = self._pools.get(peer)
        if pool is None:
            host, port = split_addr(peer)
            pool = ConnectionPool(
                host,
                port,
                max_connections=self.max_connections,
                connect_timeout_s=self.connect_timeout_s,
                retry=RetryPolicy(attempts=1),
            )
            self._pools[peer] = pool
        return pool

    def _complete(
        self,
        future,
        on_result: ResultCallback,
        on_error: Optional[ErrorCallback],
    ) -> None:
        error = future.exception()
        if error is None:
            on_result(future.result())
            return
        if on_error is None:
            return
        if isinstance(error, RpcError) and not _is_transient(error):
            on_error(P2PError(str(error)))
        else:
            on_error(PeerUnreachable(str(error)))

    def _deliver_error(self, on_error: Optional[ErrorCallback], error: Exception) -> None:
        if on_error is not None:
            self.pump.inject(lambda: on_error(error))


def _is_transient(error: RpcError) -> bool:
    """Failures where the peer may simply be down/busy, not wrong."""
    from repro.rpc.errors import OverloadedError, RpcTimeoutError, ShuttingDownError

    return isinstance(error, (OverloadedError, RpcTimeoutError, ShuttingDownError))
