"""Announce-by-hash gossip with fetch-on-miss.

A node never floods full bodies.  It announces the *id* of a new
transaction or block to ``fanout`` sampled peers; a peer that lacks the
body fetches it exactly once via ``p2p.get_data`` (an in-flight guard
dedups concurrent announcements, alternate announcers are kept as retry
sources).  Received bodies are handed to the node, which relays by
re-announcing — so propagation is O(fanout · nodes) id-sized messages
plus exactly one body transfer per node, and the
``p2p_duplicate_bodies`` counter (bodies received for an id we already
had) is the experiment's zero-flood gate.

While headers-first sync is active, announce-triggered fetches are
deferred: sync will deliver those blocks in order anyway, and fetching
them a second time would be exactly the duplicate delivery the protocol
exists to avoid.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.p2p.config import P2PConfig
from repro.p2p.transport import Transport
from repro.p2p.wire import block_from_wire, block_to_wire, tx_from_wire, tx_to_wire
from repro.sim.metrics import MetricsRegistry

KIND_TX = "tx"
KIND_BLOCK = "block"


class SeenCache:
    """Bounded LRU set of announced ids."""

    def __init__(self, capacity: int):
        self.capacity = max(1, int(capacity))
        self._items: "OrderedDict[str, None]" = OrderedDict()

    def add(self, item_id: str) -> bool:
        """Record ``item_id``; True when it was new."""
        if item_id in self._items:
            self._items.move_to_end(item_id)
            return False
        self._items[item_id] = None
        while len(self._items) > self.capacity:
            self._items.popitem(last=False)
        return True

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._items

    def __len__(self) -> int:
        return len(self._items)


class Gossip:
    """The propagation half of the p2p engine for one node."""

    def __init__(
        self,
        transport: Transport,
        peers,
        config: P2PConfig,
        *,
        has_item: Callable[[str, str], bool],
        get_item: Callable[[str, str], Optional[Any]],
        deliver_tx: Callable[[Any], None],
        deliver_block: Callable[[Any], None],
        sync_active: Callable[[], bool] = lambda: False,
        metrics: Optional[MetricsRegistry] = None,
        scope: str = "",
    ):
        self.transport = transport
        self.peers = peers
        self.config = config
        self.has_item = has_item      # (kind, id) -> node already has body
        self.get_item = get_item      # (kind, id) -> body object or None
        self.deliver_tx = deliver_tx
        self.deliver_block = deliver_block
        self.sync_active = sync_active
        self.metrics = metrics or MetricsRegistry()
        self.scope = scope or transport.local_addr
        self.seen = SeenCache(config.seen_cache_size)
        # id -> remaining announcer addresses to try if a fetch fails.
        self._sources: Dict[str, List[str]] = {}
        self._in_flight: Dict[str, str] = {}  # id -> kind
        self._deferred: "OrderedDict[Tuple[str, str], None]" = OrderedDict()

    # -- outbound ------------------------------------------------------------
    def announce(self, kind: str, item_id: str, exclude: Tuple[str, ...] = ()) -> int:
        """Advertise ``item_id`` to up to ``fanout`` peers; returns sends."""
        self.seen.add(item_id)
        targets = self.peers.sample(self.config.fanout, exclude=exclude)
        for addr in targets:
            self.metrics.add("p2p_announce_sent", 1, scope=self.scope)
            self.transport.request(
                addr,
                "p2p.announce",
                {"from": self.transport.local_addr, "kind": kind, "ids": [item_id]},
                on_result=lambda _reply: None,
                on_error=lambda _exc: None,  # best-effort; pings police liveness
                timeout_s=self.config.request_timeout_s,
            )
        return len(targets)

    # -- inbound -------------------------------------------------------------
    def handle_announce(self, params: Dict[str, Any]) -> Dict[str, Any]:
        sender = params.get("from") or ""
        kind = params.get("kind")
        ids = params.get("ids") or []
        if kind not in (KIND_TX, KIND_BLOCK) or not isinstance(ids, list):
            raise ValueError("malformed announce")
        if isinstance(sender, str) and sender:
            self.peers.note_alive(sender)
        wanted: List[str] = []
        for item_id in ids:
            if not isinstance(item_id, str):
                continue
            self.metrics.add("p2p_announce_recv", 1, scope=self.scope)
            fresh = self.seen.add(item_id)
            if self.has_item(kind, item_id):
                if not fresh:
                    self.metrics.add("p2p_announce_duplicate", 1, scope=self.scope)
                continue
            if sender:
                self._sources.setdefault(item_id, []).append(sender)
            if item_id in self._in_flight:
                self.metrics.add("p2p_announce_duplicate", 1, scope=self.scope)
                continue
            wanted.append(item_id)
        for item_id in wanted:
            if kind == KIND_BLOCK and self.sync_active():
                # Sync is already downloading the chain; fetching announced
                # blocks in parallel would double-deliver bodies.
                self._deferred[(kind, item_id)] = None
                self.metrics.add("p2p_fetch_deferred", 1, scope=self.scope)
                continue
            self._fetch(kind, item_id)
        return {"ok": True}

    def handle_get_data(self, params: Dict[str, Any]) -> Dict[str, Any]:
        kind = params.get("kind")
        ids = params.get("ids") or []
        if kind not in (KIND_TX, KIND_BLOCK) or not isinstance(ids, list):
            raise ValueError("malformed get_data")
        bodies = []
        for item_id in ids:
            if not isinstance(item_id, str):
                continue
            item = self.get_item(kind, item_id)
            if item is None:
                continue
            self.metrics.add("p2p_bodies_served", 1, scope=self.scope)
            bodies.append(tx_to_wire(item) if kind == KIND_TX else block_to_wire(item))
        return {"kind": kind, "bodies": bodies}

    # -- fetch-on-miss -------------------------------------------------------
    def resume_after_sync(self) -> None:
        """Re-evaluate fetches deferred while sync was running."""
        deferred, self._deferred = list(self._deferred), OrderedDict()
        for kind, item_id in deferred:
            if not self.has_item(kind, item_id) and item_id not in self._in_flight:
                self._fetch(kind, item_id)

    def _fetch(self, kind: str, item_id: str) -> None:
        sources = self._sources.get(item_id) or []
        if not sources:
            self._sources.pop(item_id, None)
            return
        source = sources.pop(0)
        self._in_flight[item_id] = kind
        self.metrics.add("p2p_fetches", 1, scope=self.scope)
        self.transport.request(
            source,
            "p2p.get_data",
            {"from": self.transport.local_addr, "kind": kind, "ids": [item_id]},
            on_result=lambda reply: self._on_bodies(kind, item_id, reply),
            on_error=lambda _exc: self._on_fetch_failed(kind, item_id),
            timeout_s=self.config.request_timeout_s,
        )

    def _on_fetch_failed(self, kind: str, item_id: str) -> None:
        self._in_flight.pop(item_id, None)
        self.metrics.add("p2p_fetch_failures", 1, scope=self.scope)
        self._fetch(kind, item_id)  # retry from the next announcer, if any

    def _on_bodies(self, kind: str, item_id: str, reply: Any) -> None:
        self._in_flight.pop(item_id, None)
        bodies = reply.get("bodies") if isinstance(reply, dict) else None
        if not bodies:
            self._on_fetch_failed(kind, item_id)
            return
        self._sources.pop(item_id, None)
        for wire in bodies:
            self._deliver(kind, wire)

    def _deliver(self, kind: str, wire: Any) -> None:
        try:
            if kind == KIND_TX:
                tx = tx_from_wire(wire)
                if self.has_item(kind, tx.tx_id):
                    self.metrics.add("p2p_duplicate_bodies", 1, scope=self.scope)
                    return
                self.deliver_tx(tx)
            else:
                block = block_from_wire(wire)
                if self.has_item(kind, block.block_id):
                    self.metrics.add("p2p_duplicate_bodies", 1, scope=self.scope)
                    return
                self.deliver_block(block)
        except ValidationError:
            self.metrics.add("p2p_invalid_bodies", 1, scope=self.scope)
