"""Transport abstraction shared by the sim kernel and the RPC stack.

The p2p protocol engine (peer manager, gossip, chain sync) is written
against a tiny callback transport — ``request`` plus timers — so the same
logic runs deterministically on the discrete-event kernel
(:class:`SimTransport`, here) and over real framed TCP
(:class:`repro.p2p.rpc_transport.RpcTransport`).  Everything is
single-threaded from the engine's point of view: completions and timer
callbacks fire on the same execution context that issued them.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Protocol, Tuple

from repro.common.errors import SimulationError
from repro.p2p.wire import payload_size
from repro.sim.network import Message, Network

ResultCallback = Callable[[Any], None]
ErrorCallback = Callable[[Exception], None]
DispatchFn = Callable[[str, str, Dict[str, Any]], Any]


class P2PError(Exception):
    """A peer answered with a protocol-level error."""


class PeerUnreachable(P2PError):
    """Request timed out or the peer cannot be reached at all."""


class Transport(Protocol):
    """What the protocol engine needs from a wire."""

    local_addr: str
    #: Inbound request handler: ``dispatch(sender_addr, method, params)``.
    dispatch: Optional[DispatchFn]

    @property
    def now(self) -> float: ...

    @property
    def rng(self) -> Any: ...

    def schedule(self, delay_s: float, callback: Callable[[], None], label: str = ""): ...

    def request(
        self,
        peer: str,
        method: str,
        params: Dict[str, Any],
        on_result: ResultCallback,
        on_error: Optional[ErrorCallback] = None,
        timeout_s: float = 5.0,
    ) -> None: ...

    def close(self) -> None: ...


class SimTransport:
    """Request/response p2p messaging over the deterministic sim network.

    Requests and responses travel as ``p2p.req`` / ``p2p.resp`` message
    kinds with correlation ids; a dropped message (loss, partition) simply
    times out, and an unregistered endpoint (crashed node) fails fast.
    Wire payloads are the same plain-JSON dicts the TCP transport carries,
    so serialization is exercised under the sim kernel too.
    """

    KIND_REQUEST = "p2p.req"
    KIND_RESPONSE = "p2p.resp"

    def __init__(self, network: Network, name: str, register: bool = False):
        self.network = network
        self.kernel = network.kernel
        self.local_addr = name
        self.dispatch: Optional[DispatchFn] = None
        self._ids = itertools.count(1)
        self._pending: Dict[int, Tuple[ResultCallback, Optional[ErrorCallback], Any]] = {}
        self._closed = False
        if register:
            network.register(name, self.handle_message)

    @property
    def now(self) -> float:
        return self.kernel.now

    @property
    def rng(self):
        return self.kernel.rng

    def schedule(self, delay_s: float, callback: Callable[[], None], label: str = ""):
        return self.kernel.schedule(
            delay_s, callback, label or f"{self.local_addr}:p2p"
        )

    def request(
        self,
        peer: str,
        method: str,
        params: Dict[str, Any],
        on_result: ResultCallback,
        on_error: Optional[ErrorCallback] = None,
        timeout_s: float = 5.0,
    ) -> None:
        if self._closed:
            self._fail_soon(on_error, PeerUnreachable("transport closed"))
            return
        request_id = next(self._ids)
        handle = self.kernel.schedule(
            timeout_s,
            lambda: self._expire(request_id, peer, method),
            label=f"{self.local_addr}:p2p-timeout",
        )
        self._pending[request_id] = (on_result, on_error, handle)
        envelope = {"id": request_id, "method": method, "params": params}
        try:
            self.network.send(
                self.local_addr,
                peer,
                self.KIND_REQUEST,
                envelope,
                size_bytes=payload_size(params),
            )
        except SimulationError:
            # Unknown endpoint: the peer crashed/unregistered.  Fail fast
            # instead of burning the full timeout.
            del self._pending[request_id]
            handle.cancel()
            self._fail_soon(on_error, PeerUnreachable(f"{peer} is not reachable"))

    def _fail_soon(self, on_error: Optional[ErrorCallback], error: Exception) -> None:
        """Deliver a failure asynchronously so callers never re-enter."""
        if on_error is not None:
            self.kernel.schedule(0.0, lambda: on_error(error))

    def _expire(self, request_id: int, peer: str, method: str) -> None:
        entry = self._pending.pop(request_id, None)
        if entry is None:
            return
        _, on_error, _ = entry
        if on_error is not None:
            on_error(PeerUnreachable(f"no response from {peer} to {method!r}"))

    def handle_message(self, sender: str, message: Message) -> None:
        """Inbound delivery; wired up by the owning node or ``register``."""
        if message.kind == self.KIND_REQUEST:
            self._handle_request(sender, message.payload)
        elif message.kind == self.KIND_RESPONSE:
            self._handle_response(message.payload)

    def _handle_request(self, sender: str, envelope: Any) -> None:
        if not isinstance(envelope, dict) or self.dispatch is None:
            return
        request_id = envelope.get("id")
        body: Dict[str, Any] = {"id": request_id}
        try:
            body["result"] = self.dispatch(
                sender, envelope.get("method", ""), envelope.get("params") or {}
            )
        except Exception as exc:
            body["error"] = str(exc)
        try:
            self.network.send(
                self.local_addr,
                sender,
                self.KIND_RESPONSE,
                body,
                size_bytes=payload_size(body.get("result")),
            )
        except SimulationError:
            pass  # requester vanished; nothing to answer

    def _handle_response(self, envelope: Any) -> None:
        if not isinstance(envelope, dict):
            return
        entry = self._pending.pop(envelope.get("id"), None)
        if entry is None:
            return  # late response after timeout
        on_result, on_error, handle = entry
        handle.cancel()
        if "error" in envelope:
            if on_error is not None:
                on_error(P2PError(str(envelope["error"])))
            return
        on_result(envelope.get("result"))

    def close(self) -> None:
        self._closed = True
        for _, _, handle in self._pending.values():
            handle.cancel()
        self._pending.clear()
