"""repro.p2p — peer discovery, gossip propagation, and chain sync.

The protocol engines (:class:`PeerManager`, :class:`Gossip`,
:class:`ChainSync`) are sans-IO callback state machines over a tiny
:class:`Transport` protocol, so the identical logic runs deterministically
on the simulation kernel (:class:`SimTransport`) and over real framed TCP
(:class:`RpcTransport` + :class:`P2PHost`).  See DESIGN.md §11.

Exports resolve lazily (PEP 562) so importing light pieces (``P2PConfig``
from consensus code) never drags in the asyncio RPC stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "P2PConfig": "repro.p2p.config",
    "Transport": "repro.p2p.transport",
    "SimTransport": "repro.p2p.transport",
    "P2PError": "repro.p2p.transport",
    "PeerUnreachable": "repro.p2p.transport",
    "PeerManager": "repro.p2p.peer",
    "PeerState": "repro.p2p.peer",
    "Gossip": "repro.p2p.gossip",
    "SeenCache": "repro.p2p.gossip",
    "ChainSync": "repro.p2p.sync",
    "build_locator": "repro.p2p.sync",
    "P2PService": "repro.p2p.service",
    "P2P_METHODS": "repro.p2p.service",
    "RpcTransport": "repro.p2p.rpc_transport",
    "KernelPump": "repro.p2p.host",
    "P2PHost": "repro.p2p.host",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.p2p' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


if TYPE_CHECKING:  # pragma: no cover - for type checkers only
    from repro.p2p.config import P2PConfig
    from repro.p2p.gossip import Gossip, SeenCache
    from repro.p2p.host import KernelPump, P2PHost
    from repro.p2p.peer import PeerManager, PeerState
    from repro.p2p.rpc_transport import RpcTransport
    from repro.p2p.service import P2P_METHODS, P2PService
    from repro.p2p.sync import ChainSync, build_locator
    from repro.p2p.transport import P2PError, PeerUnreachable, SimTransport, Transport
