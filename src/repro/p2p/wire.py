"""Wire encoding for p2p payloads: transactions, headers, blocks.

Both transports carry the same plain-JSON dict shapes (bytes hex-encoded
with a ``"0x"`` prefix, the repo's canonical convention), so gossip and
sync logic is transport-uniform and a round-tripped block re-hashes to the
same block id — decode failures and id mismatches raise
:class:`ValidationError` and the sender is simply ignored.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.chain.blocks import Block, BlockHeader
from repro.chain.transactions import Transaction
from repro.common.errors import ValidationError
from repro.common.serialize import canonical_bytes, decode_hex_fields, to_jsonable


def _bytes_field(value: Any, name: str) -> bytes:
    if isinstance(value, str):
        try:
            return bytes.fromhex(value[2:] if value.startswith("0x") else value)
        except ValueError as exc:
            raise ValidationError(f"bad hex in {name}") from exc
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    raise ValidationError(f"{name} must be a hex string")


def tx_to_wire(tx: Transaction) -> Dict[str, Any]:
    return to_jsonable(tx)


def tx_from_wire(wire: Any) -> Transaction:
    if not isinstance(wire, dict):
        raise ValidationError("wire transaction must be an object")
    try:
        return Transaction(
            sender=wire["sender"],
            nonce=int(wire["nonce"]),
            kind=wire["kind"],
            payload=dict(wire["payload"]),
            gas_limit=int(wire["gas_limit"]),
            max_fee_per_gas=int(wire.get("max_fee_per_gas", 0)),
            priority_fee_per_gas=int(wire.get("priority_fee_per_gas", 0)),
            timestamp_ms=int(wire["timestamp_ms"]),
            public_key=_bytes_field(wire["public_key"], "public_key"),
            signature=_bytes_field(wire["signature"], "signature"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed wire transaction: {exc}") from exc


def header_to_wire(header: BlockHeader, block_id: Optional[str] = None) -> Dict[str, Any]:
    wire = to_jsonable(header)
    if block_id is not None:
        wire["block_id"] = block_id
    return wire


def header_from_wire(wire: Any) -> BlockHeader:
    if not isinstance(wire, dict):
        raise ValidationError("wire header must be an object")
    try:
        # Consensus proofs carry raw signatures; every other value in the
        # proof dict is a short string/int/bool, so blanket hex-decoding
        # is safe here (addresses in this repo are bare hex, no prefix).
        consensus = decode_hex_fields(dict(wire.get("consensus") or {}))
        return BlockHeader(
            parent_hash=_bytes_field(wire["parent_hash"], "parent_hash"),
            height=int(wire["height"]),
            tx_root=_bytes_field(wire["tx_root"], "tx_root"),
            state_root=_bytes_field(wire["state_root"], "state_root"),
            timestamp_ms=int(wire["timestamp_ms"]),
            proposer=wire["proposer"],
            consensus=consensus,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed wire header: {exc}") from exc


def block_to_wire(block: Block) -> Dict[str, Any]:
    return {
        "header": header_to_wire(block.header),
        "transactions": [tx_to_wire(tx) for tx in block.transactions],
        "block_id": block.block_id,
    }


def block_from_wire(wire: Any) -> Block:
    if not isinstance(wire, dict):
        raise ValidationError("wire block must be an object")
    try:
        transactions = [tx_from_wire(tx) for tx in wire.get("transactions") or []]
    except TypeError as exc:
        raise ValidationError(f"malformed wire block: {exc}") from exc
    block = Block(header=header_from_wire(wire.get("header")), transactions=transactions)
    claimed = wire.get("block_id")
    if claimed is not None and block.block_id != claimed:
        raise ValidationError(
            f"wire block id mismatch: claimed {str(claimed)[:12]}, "
            f"decoded {block.block_id[:12]}"
        )
    return block


def payload_size(payload: Any) -> int:
    """Wire-size estimate for the sim network's bandwidth accounting."""
    try:
        return len(canonical_bytes(payload)) + 32
    except Exception:
        return 256
