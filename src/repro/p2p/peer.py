"""Peer discovery and liveness tracking.

Discovery is seed-based: the node dials its configured seeds, performs a
``p2p.hello`` handshake (genesis hash + head height, so incompatible
chains are rejected at the door), and learns further peers from hello and
ping replies.  Liveness is a periodic jittered ping that doubles as the
anti-entropy head exchange — every reply advertises the responder's head,
and a peer seen ahead of us triggers headers-first sync.  Dead peers are
evicted after consecutive ping failures and redialed with capped
exponential backoff; seeds are retried forever, learned peers are
forgotten after too many failed dials.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.p2p.config import P2PConfig
from repro.p2p.transport import Transport
from repro.sim.metrics import MetricsRegistry

HeadInfo = Callable[[], Tuple[int, str]]
PeerCallback = Callable[[str], None]
HeadCallback = Callable[[str, int, str], None]


@dataclass
class PeerState:
    """What we know about one remote peer."""

    addr: str
    is_seed: bool = False
    connected: bool = False
    head_height: int = -1
    head_id: str = ""
    last_seen: float = 0.0
    ping_failures: int = 0
    dial_failures: int = 0
    dialing: bool = False
    redial_handle: Any = field(default=None, repr=False)


class PeerManager:
    """Tracks the peer set for one node and keeps it alive."""

    def __init__(
        self,
        transport: Transport,
        config: P2PConfig,
        genesis_id: str,
        head_info: HeadInfo,
        metrics: Optional[MetricsRegistry] = None,
        scope: str = "",
        on_peer_connected: Optional[PeerCallback] = None,
        on_head_advertised: Optional[HeadCallback] = None,
    ):
        self.transport = transport
        self.config = config
        self.genesis_id = genesis_id
        self.head_info = head_info
        self.metrics = metrics or MetricsRegistry()
        self.scope = scope or transport.local_addr
        self.on_peer_connected = on_peer_connected
        self.on_head_advertised = on_head_advertised
        self.peers: Dict[str, PeerState] = {}
        self._ping_handle: Any = None
        self._running = False
        for seed in config.seeds:
            if seed != transport.local_addr:
                self.peers[seed] = PeerState(addr=seed, is_seed=True)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        self._running = True
        for peer in list(self.peers.values()):
            self._dial(peer)
        self._schedule_ping()

    def stop(self) -> None:
        self._running = False
        if self._ping_handle is not None:
            self._ping_handle.cancel()
            self._ping_handle = None
        for peer in self.peers.values():
            if peer.redial_handle is not None:
                peer.redial_handle.cancel()
                peer.redial_handle = None

    # -- views --------------------------------------------------------------
    def connected(self) -> List[str]:
        return [p.addr for p in self.peers.values() if p.connected]

    def sample(self, count: int, exclude: Tuple[str, ...] = ()) -> List[str]:
        """Up to ``count`` connected peers, uniformly without replacement."""
        pool = [addr for addr in self.connected() if addr not in exclude]
        if len(pool) <= count:
            return pool
        return self.transport.rng.sample(pool, count)

    def best_peer(self) -> Optional[PeerState]:
        """The connected peer advertising the highest head."""
        candidates = [p for p in self.peers.values() if p.connected]
        if not candidates:
            return None
        return max(candidates, key=lambda p: (p.head_height, p.addr))

    # -- learning -----------------------------------------------------------
    def learn(self, addr: str) -> Optional[PeerState]:
        """Track a newly-heard-of peer address (bounded by ``max_peers``)."""
        if not addr or addr == self.transport.local_addr:
            return None
        peer = self.peers.get(addr)
        if peer is not None:
            return peer
        if len(self.peers) >= self.config.max_peers:
            return None
        peer = PeerState(addr=addr)
        self.peers[addr] = peer
        self.metrics.add("p2p_peers_learned", 1, scope=self.scope)
        if self._running:
            self._dial(peer)
        return peer

    def note_alive(self, addr: str) -> None:
        """Inbound traffic from ``addr`` proves it is reachable enough."""
        peer = self.learn(addr)
        if peer is None:
            return
        peer.last_seen = self.transport.now
        if not peer.connected and not peer.dialing:
            # They reached us but we never completed a handshake with them;
            # dial back so the link becomes usable for gossip from our side.
            self._dial(peer)

    def _hello_payload(self) -> Dict[str, Any]:
        height, head_id = self.head_info()
        return {
            "from": self.transport.local_addr,
            "genesis": self.genesis_id,
            "head_height": height,
            "head_id": head_id,
            "peers": self.connected(),
        }

    # -- dialing ------------------------------------------------------------
    def _dial(self, peer: PeerState) -> None:
        if peer.dialing or peer.connected or not self._running:
            return
        peer.dialing = True
        if peer.redial_handle is not None:
            peer.redial_handle.cancel()
            peer.redial_handle = None
        self.metrics.add("p2p_dials", 1, scope=self.scope)
        self.transport.request(
            peer.addr,
            "p2p.hello",
            self._hello_payload(),
            on_result=lambda reply: self._on_hello_reply(peer, reply),
            on_error=lambda exc: self._on_dial_failed(peer),
            timeout_s=self.config.request_timeout_s,
        )

    def _on_hello_reply(self, peer: PeerState, reply: Any) -> None:
        peer.dialing = False
        if not isinstance(reply, dict) or reply.get("genesis") != self.genesis_id:
            # Different chain (or garbage): drop for good.
            self.metrics.add("p2p_handshake_rejected", 1, scope=self.scope)
            self.peers.pop(peer.addr, None)
            return
        peer.connected = True
        peer.dial_failures = 0
        peer.ping_failures = 0
        self._absorb_advert(peer, reply)
        self.metrics.add("p2p_handshakes", 1, scope=self.scope)
        if self.on_peer_connected is not None:
            self.on_peer_connected(peer.addr)

    def _on_dial_failed(self, peer: PeerState) -> None:
        peer.dialing = False
        peer.dial_failures += 1
        if not peer.is_seed and peer.dial_failures >= self.config.max_connect_attempts:
            self.peers.pop(peer.addr, None)
            self.metrics.add("p2p_peers_forgotten", 1, scope=self.scope)
            return
        self._schedule_redial(peer)

    def _schedule_redial(self, peer: PeerState) -> None:
        if not self._running or peer.redial_handle is not None:
            return
        backoff = min(
            self.config.reconnect_backoff_s * (2 ** max(0, peer.dial_failures - 1)),
            self.config.reconnect_backoff_max_s,
        )
        backoff *= 0.5 + self.transport.rng.random()  # desynchronise redials

        def redial() -> None:
            peer.redial_handle = None
            self._dial(peer)

        peer.redial_handle = self.transport.schedule(
            backoff, redial, label=f"{self.scope}:redial"
        )

    # -- liveness ------------------------------------------------------------
    def _schedule_ping(self) -> None:
        if not self._running:
            return
        jitter = 0.5 + self.transport.rng.random()
        self._ping_handle = self.transport.schedule(
            self.config.ping_interval_s * jitter,
            self._ping_round,
            label=f"{self.scope}:ping",
        )

    def _ping_round(self) -> None:
        self._ping_handle = None
        for peer in list(self.peers.values()):
            if peer.connected:
                self._ping(peer)
            elif not peer.dialing and peer.redial_handle is None:
                self._dial(peer)
        self._schedule_ping()

    def _ping(self, peer: PeerState) -> None:
        height, head_id = self.head_info()
        self.metrics.add("p2p_pings", 1, scope=self.scope)
        self.transport.request(
            peer.addr,
            "p2p.ping",
            {
                "from": self.transport.local_addr,
                "head_height": height,
                "head_id": head_id,
            },
            on_result=lambda reply: self._on_ping_reply(peer, reply),
            on_error=lambda exc: self._on_ping_failed(peer),
            timeout_s=self.config.request_timeout_s,
        )

    def _on_ping_reply(self, peer: PeerState, reply: Any) -> None:
        if not isinstance(reply, dict):
            return
        peer.ping_failures = 0
        self._absorb_advert(peer, reply)

    def _on_ping_failed(self, peer: PeerState) -> None:
        peer.ping_failures += 1
        if peer.ping_failures >= self.config.max_ping_failures:
            peer.connected = False
            peer.ping_failures = 0
            peer.dial_failures += 1
            self.metrics.add("p2p_peers_evicted", 1, scope=self.scope)
            self._schedule_redial(peer)

    def _absorb_advert(self, peer: PeerState, advert: Dict[str, Any]) -> None:
        """Fold a hello/ping reply into peer state; surface head changes."""
        peer.last_seen = self.transport.now
        for addr in advert.get("peers") or []:
            if isinstance(addr, str):
                self.learn(addr)
        try:
            height = int(advert.get("head_height", -1))
        except (TypeError, ValueError):
            return
        head_id = advert.get("head_id") or ""
        if height > peer.head_height or head_id != peer.head_id:
            peer.head_height = height
            peer.head_id = head_id
            if self.on_head_advertised is not None and head_id:
                self.on_head_advertised(peer.addr, height, head_id)

    # -- serving (the other side of hello/ping) ------------------------------
    def serve_hello(self, params: Dict[str, Any]) -> Dict[str, Any]:
        # Always answer with *our* hello: the dialer compares genesis ids
        # and drops us if they differ — symmetric rejection without an
        # error channel.  An incompatible caller is simply not learned.
        if params.get("genesis") == self.genesis_id:
            sender = params.get("from") or ""
            if isinstance(sender, str) and sender:
                self.note_alive(sender)
                peer = self.peers.get(sender)
                if peer is not None:
                    self._absorb_advert(peer, params)
        return self._hello_payload()

    def serve_ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        sender = params.get("from") or ""
        if isinstance(sender, str) and sender:
            self.note_alive(sender)
            peer = self.peers.get(sender)
            if peer is not None:
                self._absorb_advert(peer, params)
        return self._hello_payload()
