"""P2PHost — one real TCP blockchain node, composed from existing parts.

The trick that keeps the p2p engine identical across simulation and TCP is
the :class:`KernelPump`: a thread that drives a private discrete-event
:class:`~repro.sim.kernel.Kernel` against the wall clock.  The kernel
becomes the node's single-threaded executor — every engine callback,
timer, RPC completion, and inbound request runs as a kernel event on the
pump thread, so the node and the p2p engines need no locks.  RPC I/O
happens on a separate :class:`~repro.rpc.runtime.EventLoopThread`; results
are marshalled back with :meth:`KernelPump.inject`.

A host bundles: Kernel + private Network (the node's registration target;
unused for transport once p2p is attached) + ``BlockchainNode`` +
``KernelPump`` + ``EventLoopThread`` + ``RpcServer`` (p2p method surface
plus a small control API) + ``RpcTransport`` + ``P2PService``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.chain.blocks import Block
from repro.chain.state import StateDB
from repro.common.clock import WallClock
from repro.consensus.base import ConsensusEngine
from repro.consensus.node import BlockchainNode, NodeConfig
from repro.p2p.config import P2PConfig
from repro.p2p.rpc_transport import RpcTransport, split_addr
from repro.p2p.service import P2PService
from repro.p2p.wire import tx_from_wire
from repro.rpc.methods import register_p2p_methods
from repro.rpc.runtime import EventLoopThread
from repro.rpc.server import MethodRegistry, RpcServer
from repro.sim.kernel import Kernel
from repro.sim.network import Network


class KernelPump:
    """Drives a discrete-event kernel forward with wall time on a thread.

    ``inject`` enqueues a callback from any thread to run as a kernel
    event; ``call`` additionally waits for its result — the two bridges
    between the outside world and the kernel's single-threaded domain.
    """

    def __init__(
        self,
        kernel: Kernel,
        time_source: Optional[Callable[[], float]] = None,
        max_idle_wait_s: float = 0.2,
    ):
        self.kernel = kernel
        # Wall-clock reads live in common.clock by repo rule (MED103);
        # benchmarks pass one shared WallClock so hosts agree on "now".
        self._time = time_source or WallClock().now
        self.max_idle_wait_s = max_idle_wait_s
        self._inbox: "deque[Callable[[], None]]" = deque()
        self._wake = threading.Event()
        self._stop_flag = False
        self._thread: Optional[threading.Thread] = None
        self._wall0 = 0.0
        self._kernel0 = 0.0

    def start(self) -> None:
        if self._thread is not None:
            return
        self._wall0 = self._time()
        self._kernel0 = self.kernel.now
        self._thread = threading.Thread(
            target=self._run, name="p2p-kernel-pump", daemon=True
        )
        self._thread.start()

    def stop(self, timeout_s: float = 2.0) -> None:
        self._stop_flag = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout_s)
            self._thread = None

    def inject(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` as a kernel event, from any thread."""
        self._inbox.append(callback)
        self._wake.set()

    def call(self, fn: Callable[[], Any], timeout_s: float = 30.0) -> Any:
        """Run ``fn`` on the kernel thread and return its result."""
        if threading.current_thread() is self._thread:
            return fn()
        done = threading.Event()
        box: Dict[str, Any] = {}

        def run() -> None:
            try:
                box["result"] = fn()
            except BaseException as exc:  # propagated to the caller below
                box["error"] = exc
            finally:
                done.set()

        self.inject(run)
        if not done.wait(timeout_s):
            raise TimeoutError("kernel pump did not run the call in time")
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _run(self) -> None:
        while not self._stop_flag:
            while self._inbox:
                callback = self._inbox.popleft()
                self.kernel.schedule(0.0, callback, label="pump:inject")
            target = self._kernel0 + (self._time() - self._wall0)
            if target > self.kernel.now:
                self.kernel.run(until=target)
                if self.kernel.now < target:
                    # Queue went empty before ``until``; keep the clock
                    # tracking wall time so relative delays stay honest.
                    self.kernel.clock.advance_to(target)
            next_time = self.kernel.next_event_time()
            if next_time is None:
                wait = self.max_idle_wait_s
            else:
                wait = min(self.max_idle_wait_s, max(0.0, next_time - self.kernel.now))
            if wait > 0 and not self._inbox:
                self._wake.wait(wait)
            self._wake.clear()


class P2PHost:
    """One TCP-speaking blockchain node (kernel, node, server, p2p)."""

    def __init__(
        self,
        name: str,
        listen_addr: str,
        genesis: Block,
        genesis_state: StateDB,
        consensus: ConsensusEngine,
        *,
        node_config: Optional[NodeConfig] = None,
        p2p_config: Optional[P2PConfig] = None,
        seed: int = 0,
        time_source: Optional[Callable[[], float]] = None,
        metrics=None,
    ):
        self.name = name
        self.listen_addr = listen_addr
        self.kernel = Kernel(seed=seed)
        self.network = Network(self.kernel)  # private; node registers here
        self.node = BlockchainNode(
            kernel=self.kernel,
            network=self.network,
            name=name,
            genesis=genesis,
            genesis_state=genesis_state,
            consensus=consensus,
            metrics=metrics,
            config=node_config,
        )
        self.pump = KernelPump(self.kernel, time_source=time_source)
        self.loop = EventLoopThread(name=f"{name}-rpc-loop")
        self.transport = RpcTransport(self.pump, self.loop, local_addr=listen_addr)
        self.service = P2PService(self.node, self.transport, p2p_config)
        self.registry = MethodRegistry()
        register_p2p_methods(self.registry, self._dispatch_p2p)
        self._register_control_methods()
        self.server = RpcServer(
            self.registry, name=name, metrics=self.node.metrics
        )
        self.bound_addr: Optional[str] = None
        self._started = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> str:
        """Bind, start pumping, dial seeds; returns the bound ``host:port``."""
        if self._started:
            return self.bound_addr or self.listen_addr
        self._started = True
        self.pump.start()
        host, port = split_addr(self.listen_addr)
        bound_host, bound_port = self.loop.run(
            self.server.start(host, port), timeout_s=10.0
        )
        self.bound_addr = f"{bound_host}:{bound_port}"
        self.pump.call(self.node.start)
        self.pump.call(self.service.start)
        return self.bound_addr

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        try:
            self.pump.call(self.node.stop, timeout_s=5.0)
            self.pump.call(self.service.stop, timeout_s=10.0)
        except Exception:
            pass  # tearing down anyway
        try:
            self.loop.run(self.server.close(), timeout_s=10.0)
        except Exception:
            pass
        self.pump.stop()
        self.loop.close()

    # -- inbound RPC --------------------------------------------------------
    def _dispatch_p2p(self, method: str, params: Dict[str, Any]) -> Any:
        """RPC-server handler -> kernel thread -> p2p service."""
        sender = params.get("from") or ""
        return self.pump.call(
            lambda: self.service.dispatch(sender, method, params), timeout_s=20.0
        )

    def _register_control_methods(self) -> None:
        """Small operator API used by the benchmark and CLI tooling."""

        def submit_tx(**params: Any) -> Dict[str, Any]:
            tx = tx_from_wire(params.get("tx"))
            admission = self.pump.call(lambda: self.node.submit_tx(tx))
            return {
                "accepted": bool(admission),
                "status": admission.code,
                "tx_id": tx.tx_id,
            }

        def status(**_params: Any) -> Dict[str, Any]:
            def read() -> Dict[str, Any]:
                head = self.node.store.head
                return {
                    "name": self.name,
                    "addr": self.bound_addr or self.listen_addr,
                    "height": head.height,
                    "head_id": head.block_id,
                    "state_root": self.node.state.state_root().hex(),
                    "peers": self.service.peers.connected(),
                    "mempool": len(self.node.mempool),
                }

            return self.pump.call(read)

        def counters(**_params: Any) -> Dict[str, float]:
            def read() -> Dict[str, float]:
                names = (
                    "p2p_announce_sent",
                    "p2p_announce_recv",
                    "p2p_announce_duplicate",
                    "p2p_fetches",
                    "p2p_duplicate_bodies",
                    "p2p_bodies_served",
                    "p2p_sync_rounds",
                    "p2p_sync_blocks",
                    "p2p_sync_completed",
                    "blocks_adopted",
                )
                return {
                    name: self.node.metrics.counter(name, scope=self.name)
                    for name in names
                }

            return self.pump.call(read)

        self.registry.register("ctl.submit_tx", submit_tx)
        self.registry.register("ctl.status", status, idempotent=True)
        self.registry.register("ctl.counters", counters, idempotent=True)


def start_hosts(hosts: List[P2PHost]) -> List[str]:
    """Start several hosts (binding all before any dials settle)."""
    return [host.start() for host in hosts]


def stop_hosts(hosts: List[P2PHost]) -> None:
    for host in hosts:
        host.stop()
