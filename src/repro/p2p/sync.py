"""Headers-first chain sync.

A node that learns (via handshake or anti-entropy ping) of a peer whose
head is ahead runs rounds of:

1. ``chain.get_headers`` with an exponentially-spaced *locator* of its
   own canonical block ids (dense near the head, sparse toward genesis)
   — the peer answers with up to ``sync_headers_window`` headers after
   the highest locator entry it recognizes;
2. linkage validation (each header's parent hash must name its
   predecessor; ids are *recomputed* from the decoded headers, never
   trusted from the wire);
3. ``chain.get_blocks`` for the unknown ids, in ``sync_batch_size``
   chunks, delivered to the node oldest-first so each block finds its
   parent state already present.

Rounds repeat until the peer has nothing newer, then sync hands control
back to gossip (which deferred block fetches while sync ran).  Any
request failure aborts the attempt; the next ping that shows a peer
ahead restarts it, possibly against a different peer.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.p2p.config import P2PConfig
from repro.p2p.transport import Transport
from repro.p2p.wire import block_from_wire, header_from_wire
from repro.sim.metrics import MetricsRegistry


def build_locator(chain_ids: List[str], max_entries: int = 24) -> List[str]:
    """Exponentially-spaced locator over a canonical id list (oldest-first).

    The last 8 ids are included densely, then the gap doubles, and the
    genesis id is always last — the standard headers-first shape: a peer
    on a shared prefix finds the fork point within one round regardless
    of how far ahead it is.
    """
    if not chain_ids:
        return []
    locator: List[str] = []
    index = len(chain_ids) - 1
    step = 1
    while index > 0 and len(locator) < max_entries - 1:
        locator.append(chain_ids[index])
        if len(locator) >= 8:
            step *= 2
        index -= step
    locator.append(chain_ids[0])
    return locator


class ChainSync:
    """Headers-first catch-up for one node."""

    def __init__(
        self,
        transport: Transport,
        peers,
        config: P2PConfig,
        *,
        canonical_ids: Callable[[], List[str]],
        has_block: Callable[[str], bool],
        ingest_block: Callable[[Any], None],
        head_info: Callable[[], Tuple[int, str]],
        on_complete: Optional[Callable[[], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        scope: str = "",
    ):
        self.transport = transport
        self.peers = peers
        self.config = config
        self.canonical_ids = canonical_ids
        self.has_block = has_block
        self.ingest_block = ingest_block
        self.head_info = head_info
        self.on_complete = on_complete
        self.metrics = metrics or MetricsRegistry()
        self.scope = scope or transport.local_addr
        self.active = False
        self._peer: Optional[str] = None
        self._target_height = -1
        self._queue: List[str] = []  # unknown ids still to download, oldest-first

    # -- triggers ------------------------------------------------------------
    def maybe_sync(self, peer_addr: str, height: int, head_id: str) -> bool:
        """Start syncing from ``peer_addr`` if it is ahead of us."""
        our_height, _ = self.head_info()
        if height <= our_height or self.has_block(head_id):
            return False
        if self.active:
            # One download pipeline at a time; the periodic ping exchange
            # will re-trigger if this peer is still ahead afterwards.
            return False
        self.active = True
        self._peer = peer_addr
        self._target_height = height
        self.metrics.add("p2p_sync_started", 1, scope=self.scope)
        self._request_headers()
        return True

    # -- header rounds -------------------------------------------------------
    def _request_headers(self) -> None:
        self.metrics.add("p2p_sync_rounds", 1, scope=self.scope)
        self.transport.request(
            self._peer,
            "chain.get_headers",
            {
                "from": self.transport.local_addr,
                "locator": build_locator(self.canonical_ids()),
                "limit": self.config.sync_headers_window,
            },
            on_result=self._on_headers,
            on_error=lambda exc: self._abort(f"get_headers: {exc}"),
            timeout_s=self.config.request_timeout_s,
        )

    def _on_headers(self, reply: Any) -> None:
        if not self.active:
            return
        wires = reply.get("headers") if isinstance(reply, dict) else None
        if not isinstance(wires, list) or not wires:
            self._finish()  # peer has nothing newer for us
            return
        try:
            ids = self._validate_linkage(wires)
        except ValidationError as exc:
            self._abort(f"bad headers: {exc}")
            return
        self._queue = [block_id for block_id in ids if not self.has_block(block_id)]
        if not self._queue:
            # Entire window already known (e.g. gossip raced ahead of us).
            self._continue_or_finish()
            return
        self._request_batch()

    def _validate_linkage(self, wires: List[Any]) -> List[str]:
        """Decode headers, check the parent chain, return recomputed ids."""
        ids: List[str] = []
        previous_id: Optional[str] = None
        for wire in wires:
            header = header_from_wire(wire)
            parent_id = header.parent_hash.hex()
            if previous_id is None:
                # The window must attach to something we already have.
                if not self.has_block(parent_id):
                    raise ValidationError("headers do not attach to our chain")
            elif parent_id != previous_id:
                raise ValidationError("broken header linkage")
            previous_id = header.block_hash().hex()
            ids.append(previous_id)
        return ids

    # -- body batches --------------------------------------------------------
    def _request_batch(self) -> None:
        batch = self._queue[: max(1, self.config.sync_batch_size)]
        self.transport.request(
            self._peer,
            "chain.get_blocks",
            {"from": self.transport.local_addr, "ids": batch},
            on_result=lambda reply: self._on_blocks(batch, reply),
            on_error=lambda exc: self._abort(f"get_blocks: {exc}"),
            timeout_s=self.config.request_timeout_s,
        )

    def _on_blocks(self, batch: List[str], reply: Any) -> None:
        if not self.active:
            return
        wires = reply.get("blocks") if isinstance(reply, dict) else None
        if not isinstance(wires, list) or not wires:
            self._abort("peer returned no blocks for a batch it advertised")
            return
        delivered = 0
        try:
            for wire in wires:
                block = block_from_wire(wire)
                if block.block_id not in batch:
                    raise ValidationError("unrequested block in batch")
                self.metrics.add("p2p_sync_blocks", 1, scope=self.scope)
                self.ingest_block(block)  # oldest-first: parent already in
                delivered += 1
        except ValidationError as exc:
            self._abort(f"bad block body: {exc}")
            return
        self._queue = self._queue[delivered:]
        if self._queue:
            self._request_batch()
        else:
            self._continue_or_finish()

    def _continue_or_finish(self) -> None:
        our_height, _ = self.head_info()
        if our_height < self._target_height:
            self._request_headers()
        else:
            self._finish()

    # -- termination ---------------------------------------------------------
    def _finish(self) -> None:
        self.active = False
        self._peer = None
        self._queue = []
        self.metrics.add("p2p_sync_completed", 1, scope=self.scope)
        if self.on_complete is not None:
            self.on_complete()

    def _abort(self, reason: str) -> None:
        if not self.active:
            return
        self.active = False
        self._peer = None
        self._queue = []
        self.metrics.add("p2p_sync_aborted", 1, scope=self.scope)
        if self.on_complete is not None:
            self.on_complete()

    def stop(self) -> None:
        self.active = False
        self._peer = None
        self._queue = []
