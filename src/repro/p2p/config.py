"""Tunables for the peer-to-peer layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class P2PConfig:
    """Knobs shared by both transports (sim and TCP).

    Gossip is announce-by-hash: a block or transaction is announced to
    ``fanout`` peers as its id only, and the body is fetched once, on
    miss — never flooded.  ``seen_cache_size`` bounds the dedup cache;
    ``sync_batch_size`` bounds one ``chain.get_blocks`` request during
    headers-first sync.  Pings double as the anti-entropy head exchange:
    every reply carries the peer's head and known peer addresses.
    """

    #: Bootstrap peer addresses (endpoint names on the sim network,
    #: ``host:port`` strings over TCP).  Seeds are redialed forever with
    #: capped exponential backoff; learned peers are dropped after
    #: ``max_connect_attempts`` consecutive failures.
    seeds: List[str] = field(default_factory=list)
    #: Peers a gossip announcement is relayed to.
    fanout: int = 4
    #: Bounded LRU of announced ids (blocks and txs each get one).
    seen_cache_size: int = 4096
    #: Blocks fetched per ``chain.get_blocks`` request during sync.
    sync_batch_size: int = 32
    #: Headers requested per ``chain.get_headers`` round.
    sync_headers_window: int = 128
    #: Upper bound on tracked peers (seeds always fit).
    max_peers: int = 16
    #: Liveness ping / anti-entropy head-exchange period (jittered).
    ping_interval_s: float = 5.0
    #: Per-request timeout on hello/ping/fetch/sync calls.
    request_timeout_s: float = 5.0
    #: Consecutive ping failures before a peer is declared dead.
    max_ping_failures: int = 3
    #: Reconnect backoff after a dead peer or failed dial (doubles up to
    #: the cap, with multiplicative jitter).
    reconnect_backoff_s: float = 1.0
    reconnect_backoff_max_s: float = 30.0
    #: Dial attempts before a non-seed peer is forgotten.
    max_connect_attempts: int = 8
