"""CLI: run one blockchain node as a real TCP process.

Every process derives the *same* genesis and validator set from the same
flags — key pairs are deterministic in their label and the genesis block
hashes only the funded state — so independently-launched processes form
one network with no shared files.  Example (three validators):

    python -m repro.p2p.node_server --name v0 --listen 127.0.0.1:9101 \
        --validators v0,v1,v2 --base-port 9101 --fund alice:1000000000
    python -m repro.p2p.node_server --name v1 --listen 127.0.0.1:9102 \
        --validators v0,v1,v2 --base-port 9101 --fund alice:1000000000
    python -m repro.p2p.node_server --name v2 --listen 127.0.0.1:9103 \
        --validators v0,v1,v2 --base-port 9101 --fund alice:1000000000

``--base-port`` maps validator i to port base+i, so each process can
compute every seed address itself; ``--seeds`` overrides explicitly.  A
late joiner (any ``--name`` outside ``--validators``) cold-syncs the
chain and follows along without proposing.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import Dict, List

from repro.chain.blocks import make_genesis
from repro.chain.state import StateDB
from repro.common.signatures import KeyPair
from repro.consensus.node import NodeConfig
from repro.consensus.poa import ProofOfAuthority
from repro.p2p.config import P2PConfig
from repro.p2p.host import P2PHost


def build_world(validators: List[str], fund: Dict[str, int], block_interval_s: float):
    """Deterministic genesis + PoA engine shared by every process."""
    state = StateDB()
    for label in sorted(fund):
        state.credit(KeyPair.generate(label).address, fund[label])
    genesis = make_genesis(state.state_root())
    keypairs = {name: KeyPair.generate(name) for name in validators}
    engine = ProofOfAuthority(validators, keypairs, block_interval_s=block_interval_s)
    return genesis, state, engine


def parse_fund(specs: List[str]) -> Dict[str, int]:
    fund: Dict[str, int] = {}
    for spec in specs:
        label, _, amount = spec.partition(":")
        if not label or not amount:
            raise SystemExit(f"--fund expects label:amount, got {spec!r}")
        fund[label] = int(amount)
    return fund


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--name", required=True, help="node name (validator label)")
    parser.add_argument("--listen", required=True, help="host:port to serve on")
    parser.add_argument(
        "--validators", required=True, help="comma-separated validator names, in order"
    )
    parser.add_argument(
        "--base-port",
        type=int,
        default=0,
        help="validator i listens on base+i; used to derive seed addresses",
    )
    parser.add_argument(
        "--seeds", default="", help="comma-separated host:port seed addresses"
    )
    parser.add_argument(
        "--fund",
        action="append",
        default=[],
        help="label:amount funded at genesis (repeatable; must match peers)",
    )
    parser.add_argument("--block-interval", type=float, default=0.5)
    parser.add_argument("--fanout", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0, help="kernel RNG seed")
    args = parser.parse_args(argv)

    validators = [v for v in args.validators.split(",") if v]
    genesis, state, engine = build_world(
        validators, parse_fund(args.fund), args.block_interval
    )

    host_part = args.listen.rpartition(":")[0] or "127.0.0.1"
    if args.seeds:
        seeds = [s for s in args.seeds.split(",") if s]
    elif args.base_port:
        seeds = [f"{host_part}:{args.base_port + i}" for i in range(len(validators))]
    else:
        raise SystemExit("pass --seeds or --base-port")
    seeds = [s for s in seeds if s != args.listen]

    host = P2PHost(
        name=args.name,
        listen_addr=args.listen,
        genesis=genesis,
        genesis_state=state,
        consensus=engine,
        node_config=NodeConfig(mine_empty=False),
        p2p_config=P2PConfig(seeds=seeds, fanout=args.fanout),
        seed=args.seed,
    )
    bound = host.start()
    role = "validator" if args.name in validators else "observer"
    print(f"[{args.name}] {role} serving on {bound}, seeds={seeds}", flush=True)
    try:
        threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:
        print(f"[{args.name}] shutting down", flush=True)
    finally:
        host.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
