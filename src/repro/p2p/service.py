"""P2PService — wires the protocol engines to one ``BlockchainNode``.

One service per node owns the :class:`PeerManager`, :class:`Gossip`, and
:class:`ChainSync` engines, adapts them to the node's store/mempool, and
exposes the single ``dispatch(sender, method, params)`` entry point both
transports route inbound requests through.  The same service runs
unchanged over :class:`~repro.p2p.transport.SimTransport` and
:class:`~repro.p2p.rpc_transport.RpcTransport`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.chain.blocks import Block
from repro.chain.transactions import Transaction
from repro.obs.tracer import trace_span
from repro.p2p.config import P2PConfig
from repro.p2p.gossip import KIND_BLOCK, KIND_TX, Gossip
from repro.p2p.peer import PeerManager
from repro.p2p.sync import ChainSync
from repro.p2p.transport import Transport
from repro.p2p.wire import block_to_wire, header_to_wire

#: The p2p method surface (also registered on the RPC server in TCP mode).
P2P_METHODS = (
    "p2p.hello",
    "p2p.ping",
    "p2p.announce",
    "p2p.get_data",
    "chain.get_headers",
    "chain.get_blocks",
)


class P2PService:
    """Discovery + gossip + sync for one blockchain node."""

    def __init__(
        self,
        node,
        transport: Transport,
        config: Optional[P2PConfig] = None,
    ):
        self.node = node
        self.transport = transport
        self.config = config or getattr(node.config, "p2p", None) or P2PConfig()
        metrics = node.metrics
        scope = node.name
        self.peers = PeerManager(
            transport,
            self.config,
            genesis_id=node.store.genesis.block_id,
            head_info=self._head_info,
            metrics=metrics,
            scope=scope,
            on_head_advertised=self._on_head_advertised,
        )
        self.sync = ChainSync(
            transport,
            self.peers,
            self.config,
            canonical_ids=lambda: [b.block_id for b in node.store.canonical_chain()],
            has_block=lambda block_id: block_id in node.store,
            ingest_block=self._ingest_synced_block,
            head_info=self._head_info,
            on_complete=self._on_sync_complete,
            metrics=metrics,
            scope=scope,
        )
        self.gossip = Gossip(
            transport,
            self.peers,
            self.config,
            has_item=self._has_item,
            get_item=self._get_item,
            deliver_tx=self._deliver_tx,
            deliver_block=self._deliver_block,
            sync_active=lambda: self.sync.active,
            metrics=metrics,
            scope=scope,
        )
        self.metrics = metrics
        self.scope = scope
        transport.dispatch = self.dispatch
        node.attach_p2p(self)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        self.peers.start()

    def stop(self) -> None:
        self.peers.stop()
        self.sync.stop()
        self.transport.close()

    # -- node adapters -------------------------------------------------------
    def _head_info(self) -> Tuple[int, str]:
        head = self.node.store.head
        return head.height, head.block_id

    def _has_item(self, kind: str, item_id: str) -> bool:
        if kind == KIND_TX:
            # A tx counts as "have" only while pooled or committed; one
            # the node refused (shed, rate-limited) is re-fetched on the
            # next announcement so it can be re-admitted once pressure
            # clears.
            return (
                item_id in self.node.mempool
                or self.node.receipt(item_id) is not None
            )
        return item_id in self.node._seen_blocks or item_id in self.node.store

    def _get_item(self, kind: str, item_id: str):
        if kind == KIND_TX:
            return self.node.mempool.get(item_id)
        if item_id in self.node.store:
            return self.node.store.get(item_id)
        return None

    def _deliver_tx(self, tx: Transaction) -> None:
        with trace_span("p2p.deliver_tx", node=self.scope, tx=tx.tx_id[:12]):
            self.node._handle_gossip_tx(tx)

    def _deliver_block(self, block: Block) -> None:
        with trace_span(
            "p2p.deliver_block", node=self.scope, height=block.height
        ):
            self.node._handle_gossip_block(block)

    def _ingest_synced_block(self, block: Block) -> None:
        # Sync delivers oldest-first, so the parent is already present; the
        # node's normal gossip path handles seen-dedup, verification, and
        # draining of buffered children.
        self.node._handle_gossip_block(block)

    # -- engine hand-offs ----------------------------------------------------
    def _on_head_advertised(self, addr: str, height: int, head_id: str) -> None:
        self.sync.maybe_sync(addr, height, head_id)

    def _on_sync_complete(self) -> None:
        self.gossip.resume_after_sync()
        # If a better peer appeared while we were busy, go again.
        best = self.peers.best_peer()
        if best is not None and best.head_id:
            self.sync.maybe_sync(best.addr, best.head_height, best.head_id)

    # -- node-facing broadcast API ------------------------------------------
    def announce_tx(self, tx: Transaction) -> None:
        self.gossip.announce(KIND_TX, tx.tx_id)

    def announce_block(self, block: Block) -> None:
        self.gossip.announce(KIND_BLOCK, block.block_id)

    def request_backfill(self) -> bool:
        """Ask sync to catch up from the best-known peer (missing parent)."""
        best = self.peers.best_peer()
        if best is None:
            return False
        height, head_id = best.head_height, best.head_id
        if not head_id:
            return False
        return self.sync.maybe_sync(best.addr, height, head_id)

    # -- inbound dispatch ----------------------------------------------------
    def dispatch(self, sender: str, method: str, params: Dict[str, Any]) -> Any:
        with trace_span("p2p.serve", node=self.scope, method=method) as span:
            result = self._dispatch_inner(sender, method, params)
            if isinstance(result, dict) and "headers" in result:
                span.set_attr("headers", len(result["headers"]))
            return result

    def _dispatch_inner(self, sender: str, method: str, params: Dict[str, Any]) -> Any:
        if method == "p2p.hello":
            return self.peers.serve_hello(params)
        if method == "p2p.ping":
            return self.peers.serve_ping(params)
        if method == "p2p.announce":
            return self.gossip.handle_announce(params)
        if method == "p2p.get_data":
            return self.gossip.handle_get_data(params)
        if method == "chain.get_headers":
            return self.serve_headers(params)
        if method == "chain.get_blocks":
            return self.serve_blocks(params)
        raise ValueError(f"unknown p2p method {method!r}")

    # -- sync serving --------------------------------------------------------
    def serve_headers(self, params: Dict[str, Any]) -> Dict[str, Any]:
        locator = params.get("locator") or []
        limit = params.get("limit") or self.config.sync_headers_window
        if not isinstance(locator, list):
            raise ValueError("locator must be a list of block ids")
        blocks = self.node.store.headers_after(
            [b for b in locator if isinstance(b, str)], limit=limit
        )
        return {
            "headers": [header_to_wire(b.header, b.block_id) for b in blocks],
        }

    def serve_blocks(self, params: Dict[str, Any]) -> Dict[str, Any]:
        ids = params.get("ids") or []
        if not isinstance(ids, list):
            raise ValueError("ids must be a list of block ids")
        store = self.node.store
        bodies: List[Dict[str, Any]] = []
        for block_id in ids[: max(1, self.config.sync_batch_size)]:
            if isinstance(block_id, str) and block_id in store:
                bodies.append(block_to_wire(store.get(block_id)))
        return {"blocks": bodies}
