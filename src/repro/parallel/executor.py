"""Executor abstraction: one batch API, three interchangeable backends.

Design constraints (DESIGN §1, ISSUE 1):

- **Ordered reduction.**  ``map_tasks`` always returns one slot per input
  task, in submission order, regardless of completion order — so any
  aggregation done over the result list is deterministic across backends.
- **Fault isolation.**  A task that raises, times out, or takes its worker
  process down with it yields a structured :class:`TaskFailure` in its
  slot instead of poisoning the whole batch.
- **Bounded retry.**  Failed tasks are retried up to
  ``RetryPolicy.max_attempts`` times with exponential backoff; the sleep
  function is injectable so tests stay instant.
- **Process-safety.**  The process backend requires task functions and
  arguments to be picklable (module-level functions; no lambdas/closures).

Timeout semantics: ``timeout_s`` is a per-batch-attempt deadline covering
queue wait plus execution.  Pool backends cannot preempt an already-running
task (CPython limitation); a timed-out task is abandoned and reported as a
failure while its worker thread/process finishes in the background.  The
serial backend checks the deadline between tasks and flags tasks whose own
runtime exceeded it, keeping failure reporting consistent across backends.
"""

from __future__ import annotations

import concurrent.futures as _futures
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import MedchainError
from repro.obs.tracer import (
    Span,
    Tracer,
    current_span_id,
    current_tracer,
    trace_span,
    tracer_override,
    tracing_enabled,
)
from repro.sim.metrics import MetricsRegistry, current_metrics, use_metrics


class ExecutorError(MedchainError):
    """Executor misuse (bad backend name, closed executor, ...)."""


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: a callable plus its arguments.

    ``key`` identifies the task in failure reports; it does not need to be
    unique, but diagnostics are clearer when it is.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of a task that failed after all retries.

    Returned *in the task's result slot*; callers distinguish success from
    failure with ``isinstance(slot, TaskFailure)``.
    """

    key: str
    error_type: str
    message: str
    attempts: int
    backend: str

    @property
    def timed_out(self) -> bool:
        return self.error_type == "TimeoutError"

    @property
    def worker_crashed(self) -> bool:
        return self.error_type == "WorkerCrash"

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskFailure({self.key}: {self.error_type}: {self.message!r} "
            f"after {self.attempts} attempt(s) on {self.backend})"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``delay(n)`` for attempt *n* (1-based) is
    ``min(base_delay_s * factor**(n-1), max_delay_s)``.  ``sleep`` is
    injectable so unit tests can record delays instead of waiting.
    """

    max_attempts: int = 1
    base_delay_s: float = 0.05
    factor: float = 2.0
    max_delay_s: float = 2.0
    retry_on_timeout: bool = True
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecutorError("max_attempts must be >= 1")

    def delay(self, attempt: int) -> float:
        return min(self.base_delay_s * self.factor ** (attempt - 1), self.max_delay_s)


def available_workers() -> int:
    """Cores this process may actually use (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


# Outcome of one attempt at one task: (ok, value) where value is the task's
# return on success or an (error_type, message) pair on failure.
_Outcome = Tuple[bool, Any]


def _invoke(fn: Callable[..., Any], args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Any:
    """Module-level trampoline so pool backends can pickle submissions."""
    return fn(*args, **kwargs)


@dataclass
class _TaskEnvelope:
    """A task's return value plus the telemetry captured while it ran.

    Workers execute in their own thread or process, so counters and spans
    recorded there never touch the coordinator's registry/tracer directly —
    under ``ProcessExecutor`` they used to vanish with the worker.  Every
    task instead runs against a fresh capture registry (and tracer, when
    tracing is on); the deltas ride back inside this envelope and
    :meth:`Executor.map_tasks` merges them into the submitting context.
    """

    value: Any
    metrics: Dict[str, Any]
    spans: List[Span]


def _invoke_captured(
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
    key: str,
    parent_span_id: Optional[str],
    trace_enabled: bool,
) -> _TaskEnvelope:
    """Run one task under a capture registry/tracer; ship the deltas back.

    Runs identically on every backend so cross-backend counter totals agree:
    a task that raises drops its partial telemetry on *all* backends (only
    the final successful attempt's deltas are merged).
    """
    registry = MetricsRegistry()
    if trace_enabled:
        tracer = Tracer()
        with tracer_override(tracer), use_metrics(registry):
            with tracer.span("parallel.task", parent_id=parent_span_id, key=key):
                value = fn(*args, **kwargs)
        spans = tracer.spans
    else:
        with use_metrics(registry):
            value = fn(*args, **kwargs)
        spans = []
    return _TaskEnvelope(value=value, metrics=registry.snapshot(), spans=spans)


class Executor:
    """Base class: retry/ordering logic shared by every backend."""

    name = "base"

    def map_tasks(
        self,
        tasks: Sequence[TaskSpec],
        *,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[Any]:
        """Run ``tasks``; return one result-or-:class:`TaskFailure` per task.

        Results are in submission order.  Failed tasks are retried per the
        policy; only tasks still failing after the final attempt surface as
        :class:`TaskFailure`.
        """
        policy = retry or RetryPolicy()
        sink = current_metrics()
        with trace_span(
            "parallel.map_tasks", backend=self.name, tasks=len(tasks)
        ) as batch_span:
            parent_hint = current_span_id()
            trace_on = tracing_enabled()
            wrapped = [
                TaskSpec(
                    key=task.key,
                    fn=_invoke_captured,
                    args=(
                        task.fn,
                        task.args,
                        task.kwargs,
                        task.key,
                        parent_hint,
                        trace_on,
                    ),
                )
                for task in tasks
            ]
            results: List[Any] = [None] * len(tasks)
            pending = list(range(len(tasks)))
            last_error: Dict[int, Tuple[str, str]] = {}
            attempts_used: Dict[int, int] = {}
            failures = 0
            for attempt in range(1, policy.max_attempts + 1):
                outcomes = self._run_batch(
                    [(i, wrapped[i]) for i in pending], timeout_s
                )
                still_pending: List[int] = []
                for index in pending:
                    ok, value = outcomes[index]
                    attempts_used[index] = attempt
                    if ok:
                        results[index] = self._absorb(value, sink, parent_hint)
                    else:
                        last_error[index] = value
                        error_type = value[0]
                        retryable = (
                            policy.retry_on_timeout or error_type != "TimeoutError"
                        )
                        if retryable:
                            still_pending.append(index)
                        else:
                            failures += 1
                            results[index] = self._failure(
                                tasks[index], value, attempt
                            )
                pending = still_pending
                if not pending:
                    break
                if attempt < policy.max_attempts:
                    policy.sleep(policy.delay(attempt))
            for index in pending:
                failures += 1
                results[index] = self._failure(
                    tasks[index], last_error[index], attempts_used[index]
                )
            batch_span.set_attr("failures", failures)
        return results

    def _absorb(
        self, value: Any, sink: MetricsRegistry, parent_hint: Optional[str]
    ) -> Any:
        """Unwrap a task envelope, merging its telemetry into this context."""
        if not isinstance(value, _TaskEnvelope):
            return value
        sink.merge_snapshot(value.metrics)
        tracer = current_tracer()
        if tracer is not None and value.spans:
            tracer.adopt(value.spans, parent_id=parent_hint)
        return value.value

    def _failure(
        self, task: TaskSpec, error: Tuple[str, str], attempts: int
    ) -> TaskFailure:
        error_type, message = error
        return TaskFailure(
            key=task.key,
            error_type=error_type,
            message=message,
            attempts=attempts,
            backend=self.name,
        )

    def _run_batch(
        self,
        indexed_tasks: Sequence[Tuple[int, TaskSpec]],
        timeout_s: Optional[float],
    ) -> Dict[int, _Outcome]:
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self) -> None:
        """Release pool resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} ({self.name})>"


class SerialExecutor(Executor):
    """Runs tasks one after another in the calling thread.

    The reference backend: zero concurrency, zero pickling requirements,
    exact reproducibility.  Other backends must match its outputs
    bit-for-bit on deterministic tasks.
    """

    name = "serial"

    def _run_batch(
        self,
        indexed_tasks: Sequence[Tuple[int, TaskSpec]],
        timeout_s: Optional[float],
    ) -> Dict[int, _Outcome]:
        outcomes: Dict[int, _Outcome] = {}
        for index, task in indexed_tasks:
            start = time.monotonic()
            try:
                value = _invoke(task.fn, task.args, task.kwargs)
            except Exception as exc:  # noqa: BLE001 - fault boundary
                outcomes[index] = (False, (type(exc).__name__, str(exc)))
                continue
            elapsed = time.monotonic() - start
            if timeout_s is not None and elapsed > timeout_s:
                outcomes[index] = (
                    False,
                    ("TimeoutError", f"task ran {elapsed:.3f}s > {timeout_s}s limit"),
                )
            else:
                outcomes[index] = (True, value)
        return outcomes


class _PoolExecutor(Executor):
    """Shared machinery for the ``concurrent.futures`` backends."""

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers or available_workers()
        self._pool: Optional[_futures.Executor] = None
        self._closed = False

    def _make_pool(self) -> _futures.Executor:
        raise NotImplementedError

    def _ensure_pool(self) -> _futures.Executor:
        if self._closed:
            raise ExecutorError(f"{self.name} executor already shut down")
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _run_batch(
        self,
        indexed_tasks: Sequence[Tuple[int, TaskSpec]],
        timeout_s: Optional[float],
    ) -> Dict[int, _Outcome]:
        """Run one attempt of a batch, containing worker crashes.

        When a worker dies (segfault, ``os._exit``, OOM-kill) every future
        still in flight on that pool raises ``BrokenExecutor`` — which would
        let one poison task fail its innocent batch-mates.  The first task
        (in submission order) to observe the break is blamed as the crasher
        and gets a ``WorkerCrash`` outcome; the pool is rebuilt and the
        not-yet-harvested survivors are resubmitted within this same
        attempt, so a crash costs exactly one task per occurrence.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        outcomes: Dict[int, _Outcome] = {}
        pending: List[Tuple[int, TaskSpec]] = list(indexed_tasks)
        while pending:
            pool = self._ensure_pool()
            submitted: List[Tuple[int, TaskSpec, _futures.Future]] = [
                (index, task, pool.submit(_invoke, task.fn, task.args, task.kwargs))
                for index, task in pending
            ]
            crashed = False
            survivors: List[Tuple[int, TaskSpec]] = []
            for index, task, future in submitted:
                if crashed:
                    # Pool already broken; harvest finished work, resubmit
                    # the rest on a fresh pool.
                    if (
                        future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        outcomes[index] = (True, future.result())
                    else:
                        survivors.append((index, task))
                    continue
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                try:
                    outcomes[index] = (True, future.result(timeout=remaining))
                except _futures.TimeoutError:
                    future.cancel()
                    outcomes[index] = (
                        False,
                        ("TimeoutError", f"task {task.key!r} exceeded {timeout_s}s"),
                    )
                except _futures.BrokenExecutor as exc:
                    self._discard_pool()
                    crashed = True
                    outcomes[index] = (
                        False,
                        (
                            "WorkerCrash",
                            str(exc) or "worker process terminated abruptly",
                        ),
                    )
                except _futures.CancelledError:
                    outcomes[index] = (
                        False,
                        ("WorkerCrash", "task cancelled by pool teardown"),
                    )
                except Exception as exc:  # noqa: BLE001 - fault boundary
                    outcomes[index] = (False, (type(exc).__name__, str(exc)))
            pending = survivors
        return outcomes


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend: best for I/O-bound or NumPy-heavy tools.

    Pure-Python CPU-bound tools gain nothing here (GIL); use
    :class:`ProcessExecutor` for those.
    """

    name = "thread"

    def _make_pool(self) -> _futures.Executor:
        return _futures.ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-task"
        )


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend: real cores for CPU-bound analytics.

    Task functions and arguments must be picklable.  Worker crashes are
    contained: affected tasks fail with ``error_type == "WorkerCrash"`` and
    the pool is rebuilt before any retry.
    """

    name = "process"

    def _make_pool(self) -> _futures.Executor:
        return _futures.ProcessPoolExecutor(max_workers=self.max_workers)


_BACKENDS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(kind: str, max_workers: Optional[int] = None) -> Executor:
    """Build an executor by backend name: ``serial``, ``thread``, ``process``."""
    cls = _BACKENDS.get(kind)
    if cls is None:
        raise ExecutorError(
            f"unknown executor backend {kind!r}; choose from {sorted(_BACKENDS)}"
        )
    if cls is SerialExecutor:
        return SerialExecutor()
    return cls(max_workers=max_workers)


def map_tasks(
    tasks: Sequence[TaskSpec],
    *,
    executor: Optional[Executor] = None,
    timeout_s: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
) -> List[Any]:
    """Convenience wrapper: run a batch on ``executor`` (default serial)."""
    if executor is not None:
        return executor.map_tasks(tasks, timeout_s=timeout_s, retry=retry)
    return SerialExecutor().map_tasks(tasks, timeout_s=timeout_s, retry=retry)
