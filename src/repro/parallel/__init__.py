"""Pluggable parallel execution backends for off-chain analytics.

The paper's transformed architecture treats blockchain nodes as a
distributed *parallel* computing fabric (Fig. 1, Fig. 6): the on-chain
contract coordinates, while every site's off-chain control code computes
over local data concurrently.  This package supplies the execution
substrate for that claim — one task-batch API (:func:`map_tasks` /
:meth:`Executor.map_tasks`) with three interchangeable backends:

- :class:`SerialExecutor` — in-process, deterministic, zero overhead;
- :class:`ThreadExecutor` — ``concurrent.futures.ThreadPoolExecutor``;
- :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``.

All backends return results in task-submission order and produce
bit-identical outputs for deterministic tasks, so experiments can swap
backends freely and verify equivalence (see
``tests/parallel/test_equivalence.py``).
"""

from repro.parallel.executor import (
    Executor,
    ExecutorError,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    TaskFailure,
    TaskSpec,
    ThreadExecutor,
    available_workers,
    make_executor,
    map_tasks,
)

__all__ = [
    "Executor",
    "ExecutorError",
    "ProcessExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "TaskFailure",
    "TaskSpec",
    "ThreadExecutor",
    "available_workers",
    "make_executor",
    "map_tasks",
]
