"""COMPare-style outcome-switching auditor and tamper detection.

Section III.B cites COMPare's finding that only 9 of 67 monitored trials
reported their pre-registered outcomes correctly, and China's report that
~80% of domestic trial data was falsified.  With outcomes and raw-data
hashes anchored on chain, both failure modes become mechanically detectable:

- *outcome switching*: a published report claims outcomes that differ from
  the registered set (added, dropped, or swapped);
- *data falsification*: the data behind a report no longer matches the
  Merkle root anchored at collection time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.offchain.anchoring import verify_dataset


@dataclass
class PublishedReport:
    """What a sponsor ultimately publishes for one trial."""

    trial_id: str
    claimed_outcomes: List[str]
    raw_records: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class AuditFinding:
    """Result of auditing one trial's report against its registration."""

    trial_id: str
    reported_correctly: bool
    switched_in: List[str]    # reported but never registered
    silently_dropped: List[str]  # registered primary outcomes missing from report
    data_intact: bool

    @property
    def clean(self) -> bool:
        return self.reported_correctly and self.data_intact


class TrialAuditor:
    """Audits published reports against on-chain registrations."""

    def audit(
        self,
        registered_outcomes: Sequence[str],
        report: PublishedReport,
        anchored_root_hex: str = "",
    ) -> AuditFinding:
        """Compare a published report against the registered protocol.

        ``anchored_root_hex`` is the Merkle root committed when the raw data
        was collected; empty means no data-integrity check is possible.
        """
        registered = set(registered_outcomes)
        claimed = set(report.claimed_outcomes)
        switched_in = sorted(claimed - registered)
        dropped = sorted(registered - claimed)
        data_intact = True
        if anchored_root_hex:
            data_intact = verify_dataset(report.raw_records, anchored_root_hex)
        return AuditFinding(
            trial_id=report.trial_id,
            reported_correctly=not switched_in and not dropped,
            switched_in=switched_in,
            silently_dropped=dropped,
            data_intact=data_intact,
        )

    def audit_many(
        self,
        registrations: Dict[str, Sequence[str]],
        reports: Sequence[PublishedReport],
        anchors: Dict[str, str],
    ) -> Dict[str, Any]:
        """Audit a whole registry; returns COMPare-style aggregates."""
        findings = []
        for report in reports:
            findings.append(
                self.audit(
                    registrations.get(report.trial_id, []),
                    report,
                    anchors.get(report.trial_id, ""),
                )
            )
        total = len(findings)
        correct = sum(1 for finding in findings if finding.reported_correctly)
        tampered = sum(1 for finding in findings if not finding.data_intact)
        return {
            "total": total,
            "reported_correctly": correct,
            "outcome_switching": total - correct,
            "data_tampering_detected": tampered,
            "findings": findings,
        }
