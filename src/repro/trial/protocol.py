"""Trial protocols and their on-chain commitments.

Since 2007 US regulators require pre-registration of trials; the paper adds
blockchain so the registration itself is tamper-evident (section III.B).
A :class:`TrialProtocol` canonicalizes everything that must be fixed before
data collection — arms, pre-registered outcomes, analysis subgroups — and
hashes it; the hash goes into the clinical-trial contract at registration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.common.errors import TrialError
from repro.common.hashing import hash_value_hex


@dataclass
class TrialProtocol:
    """Everything fixed at registration time."""

    trial_id: str
    title: str
    drug: str
    arms: List[str] = field(default_factory=lambda: ["treatment", "control"])
    primary_outcomes: List[str] = field(default_factory=list)
    secondary_outcomes: List[str] = field(default_factory=list)
    subgroups: List[str] = field(default_factory=list)  # e.g. variant rsids
    target_enrollment: int = 100
    follow_up_days: int = 365

    def validate(self) -> None:
        if not self.trial_id:
            raise TrialError("trial_id is required")
        if len(self.arms) < 2:
            raise TrialError("a trial needs at least two arms")
        if not self.primary_outcomes:
            raise TrialError("at least one primary outcome must be pre-registered")
        overlap = set(self.primary_outcomes) & set(self.secondary_outcomes)
        if overlap:
            raise TrialError(f"outcomes registered twice: {sorted(overlap)}")
        if self.target_enrollment <= 0:
            raise TrialError("target enrollment must be positive")

    @property
    def registered_outcomes(self) -> List[str]:
        return list(self.primary_outcomes) + list(self.secondary_outcomes)

    def protocol_hash(self) -> str:
        """Canonical content hash committed on chain."""
        self.validate()
        return hash_value_hex(
            {
                "trial_id": self.trial_id,
                "title": self.title,
                "drug": self.drug,
                "arms": self.arms,
                "primary_outcomes": self.primary_outcomes,
                "secondary_outcomes": self.secondary_outcomes,
                "subgroups": self.subgroups,
                "target_enrollment": self.target_enrollment,
                "follow_up_days": self.follow_up_days,
            }
        )

    def to_registration_args(self) -> Dict[str, Any]:
        """Arguments for the clinical-trial contract's ``register_trial``."""
        return {
            "trial_id": self.trial_id,
            "protocol_hash": self.protocol_hash(),
            "outcomes": self.registered_outcomes,
            "target_enrollment": self.target_enrollment,
        }
