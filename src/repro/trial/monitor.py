"""Real-world-evidence trial monitor.

The FDA vision the paper targets (section II): access trial data "directly
from various hospitals and service providers as the trial goes on, and keep
on monitoring the efficacy and possible side effects".  The monitor ingests
subject observations in report-day order and, after every report, re-tests:

- overall efficacy (two-proportion z-test, treatment vs control),
- subgroup efficacy (carriers vs non-carriers of the protocol's subgroups),
- safety (adverse-event rate difference).

Signals fire the first day significance is crossed with a minimum sample
size — so E11 can compare *continuous* detection day against the classic
end-of-trial batch analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analytics.stats import TestResult, two_proportion_test
from repro.trial.simulation import SubjectOutcome


@dataclass
class Signal:
    """A monitoring alarm."""

    kind: str          # "efficacy" | "subgroup_efficacy" | "safety"
    day: int
    p_value: float
    detail: str = ""


@dataclass
class ArmCounts:
    n: int = 0
    events: int = 0
    adverse: int = 0

    def add(self, outcome: SubjectOutcome) -> None:
        self.n += 1
        self.events += outcome.event
        self.adverse += outcome.adverse_event


class RWEMonitor:
    """Sequential monitoring over streaming subject reports."""

    def __init__(
        self,
        alpha: float = 0.01,
        min_per_arm: int = 20,
        subgroup_min_per_arm: int = 10,
    ):
        self.alpha = alpha
        self.min_per_arm = min_per_arm
        self.subgroup_min_per_arm = subgroup_min_per_arm
        self.signals: List[Signal] = []
        self._fired: set = set()
        self._overall: Dict[str, ArmCounts] = {}
        self._carriers: Dict[str, ArmCounts] = {}
        self._noncarriers: Dict[str, ArmCounts] = {}
        self.reports_seen = 0

    # -- ingestion ----------------------------------------------------------
    def ingest(self, outcome: SubjectOutcome) -> List[Signal]:
        """Feed one report; returns any *new* signals fired by it."""
        self.reports_seen += 1
        self._overall.setdefault(outcome.arm, ArmCounts()).add(outcome)
        bucket = self._carriers if outcome.is_carrier else self._noncarriers
        bucket.setdefault(outcome.arm, ArmCounts()).add(outcome)
        return self._check(outcome.report_day)

    def run_stream(self, outcomes: Sequence[SubjectOutcome]) -> List[Signal]:
        """Ingest a full trial in report-day order; returns all signals."""
        for outcome in sorted(outcomes, key=lambda o: (o.report_day, o.patient_pseudo_id)):
            self.ingest(outcome)
        return list(self.signals)

    # -- testing ------------------------------------------------------------
    def _check(self, day: int) -> List[Signal]:
        new: List[Signal] = []
        new += self._test_pair(
            "efficacy", day, self._overall, self.min_per_arm, use_events=True
        )
        new += self._test_pair(
            "subgroup_efficacy_carriers",
            day,
            self._carriers,
            self.subgroup_min_per_arm,
            use_events=True,
        )
        new += self._test_pair(
            "subgroup_efficacy_noncarriers",
            day,
            self._noncarriers,
            self.subgroup_min_per_arm,
            use_events=True,
        )
        new += self._test_pair(
            "safety", day, self._overall, self.min_per_arm, use_events=False
        )
        return new

    def _test_pair(
        self,
        kind: str,
        day: int,
        counts: Dict[str, ArmCounts],
        min_n: int,
        use_events: bool,
    ) -> List[Signal]:
        if kind in self._fired:
            return []
        treatment = counts.get("treatment")
        control = counts.get("control")
        if treatment is None or control is None:
            return []
        if treatment.n < min_n or control.n < min_n:
            return []
        a = treatment.events if use_events else treatment.adverse
        b = control.events if use_events else control.adverse
        result = two_proportion_test(a, treatment.n, b, control.n)
        if result.p_value < self.alpha:
            signal = Signal(
                kind=kind,
                day=day,
                p_value=result.p_value,
                detail=(
                    f"treatment {a}/{treatment.n} vs control {b}/{control.n}"
                ),
            )
            self._fired.add(kind)
            self.signals.append(signal)
            return [signal]
        return []

    # -- batch comparison ------------------------------------------------
    @staticmethod
    def batch_analysis(outcomes: Sequence[SubjectOutcome]) -> Dict[str, TestResult]:
        """Classic end-of-trial analysis over the complete data set."""
        def split(group: Sequence[SubjectOutcome], use_events: bool):
            treatment = [o for o in group if o.arm == "treatment"]
            control = [o for o in group if o.arm == "control"]
            attr = "event" if use_events else "adverse_event"
            return (
                sum(getattr(o, attr) for o in treatment),
                len(treatment),
                sum(getattr(o, attr) for o in control),
                len(control),
            )

        results = {}
        a, na, b, nb = split(outcomes, True)
        results["efficacy"] = two_proportion_test(a, na, b, nb)
        carriers = [o for o in outcomes if o.is_carrier]
        if carriers:
            a, na, b, nb = split(carriers, True)
            if na and nb:
                results["subgroup_efficacy_carriers"] = two_proportion_test(a, na, b, nb)
        noncarriers = [o for o in outcomes if not o.is_carrier]
        if noncarriers:
            a, na, b, nb = split(noncarriers, True)
            if na and nb:
                results["subgroup_efficacy_noncarriers"] = two_proportion_test(
                    a, na, b, nb
                )
        a, na, b, nb = split(outcomes, False)
        results["safety"] = two_proportion_test(a, na, b, nb)
        return results

    def detection_day(self, kind: str) -> Optional[int]:
        """Day a signal kind fired, or None."""
        for signal in self.signals:
            if signal.kind == kind:
                return signal.day
        return None
