"""Drive continuous RWE monitoring from on-chain trial events (Figure 4).

The clinical-trial contract emits ``PatientEnrolled``, ``OutcomeReported``,
and ``AdverseEvent`` events; the monitor node (Figure 3) surfaces them off
chain.  :class:`ChainTrialFeed` subscribes to those events and converts the
stream into :class:`SubjectOutcome` updates for an :class:`RWEMonitor` —
so the paper's "keep on monitoring the efficacy and possible side effects"
literally runs off the ledger's event stream.

Subgroup membership (genetic carrier status) is *not* on chain — it is
privacy-sensitive — so the feed takes a ``carrier_lookup`` callback that the
hosting site provides from its local genomics data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.chain.executor import ContractEvent
from repro.offchain.oracle import MonitorNode
from repro.trial.monitor import RWEMonitor, Signal
from repro.trial.simulation import SubjectOutcome

CarrierLookup = Callable[[str], bool]


@dataclass
class _PatientTrack:
    arm: str = ""
    site: str = ""
    enrolled: bool = False
    adverse: int = 0
    adverse_severity: int = 0
    reported: bool = False


class ChainTrialFeed:
    """Adapter: clinical-trial contract events -> RWE monitor updates.

    Time is measured in block heights (the chain's native clock): a signal
    "detected at height H" means every participant could have seen it then.
    """

    def __init__(
        self,
        monitor_node: MonitorNode,
        rwe_monitor: RWEMonitor,
        trial_id: str,
        primary_outcome: str,
        carrier_lookup: CarrierLookup,
    ):
        self.monitor_node = monitor_node
        self.rwe_monitor = rwe_monitor
        self.trial_id = trial_id
        self.primary_outcome = primary_outcome
        self.carrier_lookup = carrier_lookup
        self._patients: Dict[str, _PatientTrack] = {}
        self.signals_seen: List[Signal] = []
        monitor_node.on("PatientEnrolled", self._on_enrolled)
        monitor_node.on("AdverseEvent", self._on_adverse)
        monitor_node.on("OutcomeReported", self._on_outcome)

    # -- event handlers ----------------------------------------------------
    def _for_this_trial(self, event: ContractEvent) -> bool:
        return event.data.get("trial_id") == self.trial_id

    def _track(self, patient: str) -> _PatientTrack:
        return self._patients.setdefault(patient, _PatientTrack())

    def _on_enrolled(self, event: ContractEvent) -> None:
        if not self._for_this_trial(event):
            return
        track = self._track(event.data["patient"])
        track.arm = event.data.get("arm", "")
        track.site = event.data.get("site", "")
        track.enrolled = True

    def _on_adverse(self, event: ContractEvent) -> None:
        if not self._for_this_trial(event):
            return
        track = self._track(event.data["patient"])
        track.adverse = 1
        track.adverse_severity = max(
            track.adverse_severity, int(event.data.get("severity", 1))
        )
        # An adverse event without an outcome report still informs safety:
        # ingest immediately as a non-event observation if not yet reported.
        if track.enrolled and not track.reported:
            self._ingest(event.data["patient"], track, event.block_height, event_flag=0)
            track.reported = True

    def _on_outcome(self, event: ContractEvent) -> None:
        if not self._for_this_trial(event):
            return
        if event.data.get("outcome") != self.primary_outcome:
            return
        patient = event.data["patient"]
        track = self._track(patient)
        if not track.enrolled or track.reported:
            return
        event_flag = 1 if int(event.data.get("value_milli", 0)) > 0 else 0
        self._ingest(patient, track, event.block_height, event_flag)
        track.reported = True

    def _ingest(
        self, patient: str, track: _PatientTrack, height: int, event_flag: int
    ) -> None:
        outcome = SubjectOutcome(
            patient_pseudo_id=patient,
            site=track.site,
            arm=track.arm,
            is_carrier=self.carrier_lookup(patient),
            event=event_flag,
            event_day=max(0, height),
            adverse_event=track.adverse,
            adverse_severity=track.adverse_severity,
            report_day=max(0, height),
        )
        self.signals_seen.extend(self.rwe_monitor.ingest(outcome))

    # -- introspection -----------------------------------------------------
    @property
    def patients_tracked(self) -> int:
        return len(self._patients)

    @property
    def reports_ingested(self) -> int:
        return self.rwe_monitor.reports_seen
