"""Synthetic trial outcome simulation with subgroup-specific drug effects.

The precision-medicine motivation (section II, Schork's Nature figures:
top-grossing drugs help 4–25% of takers) is *effect heterogeneity*: a drug
that works only in a genetic subgroup looks mediocre on average.  The
simulator gives the study drug a strong protective effect **only** in
carriers of the atrial-fibrillation risk variant ``rs2200733``, mild or no
effect otherwise, plus an elevated adverse-event hazard — so the RWE monitor
(E11) has both a subgroup-efficacy signal and a safety signal to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.common.errors import TrialError
from repro.trial.protocol import TrialProtocol


@dataclass
class TrialEffect:
    """Ground-truth effect profile of the simulated drug."""

    base_event_rate: float = 0.35       # control-arm primary-event probability
    treatment_rr_carriers: float = 0.25 # relative risk in rs2200733 carriers
    treatment_rr_noncarriers: float = 0.95
    adverse_rate_control: float = 0.04
    adverse_rate_treatment: float = 0.09
    subgroup_variant: str = "rs2200733"


@dataclass
class SubjectOutcome:
    """Observed follow-up data for one enrolled subject."""

    patient_pseudo_id: str
    site: str
    arm: str
    is_carrier: bool
    event: int                 # primary outcome occurred (1/0)
    event_day: int             # day of event, or follow-up end if censored
    adverse_event: int         # any AE (1/0)
    adverse_severity: int      # 0 (none) or 1..5
    report_day: int            # day the observation reaches the monitor


def assign_arms(
    patients: Sequence[Dict[str, Any]], protocol: TrialProtocol, seed: int = 0
) -> Dict[str, str]:
    """Deterministic 1:1 (or k-way) randomization by enrollment order."""
    rng = np.random.default_rng(seed)
    arms = {}
    order = rng.permutation(len(patients))
    for position, patient_index in enumerate(order):
        patient = patients[patient_index]
        arms[patient["patient_id"]] = protocol.arms[position % len(protocol.arms)]
    return arms


def simulate_follow_up(
    patients: Sequence[Dict[str, Any]],
    arms: Dict[str, str],
    protocol: TrialProtocol,
    effect: Optional[TrialEffect] = None,
    seed: int = 0,
) -> List[SubjectOutcome]:
    """Generate each subject's follow-up under the ground-truth effect."""
    effect = effect or TrialEffect()
    rng = np.random.default_rng(seed)
    outcomes: List[SubjectOutcome] = []
    for patient in patients:
        arm = arms.get(patient["patient_id"])
        if arm is None:
            raise TrialError(f"patient {patient['patient_id']} has no arm assignment")
        carrier = patient["genomics"].get(effect.subgroup_variant, 0) > 0
        event_probability = effect.base_event_rate
        if arm == "treatment":
            rr = (
                effect.treatment_rr_carriers
                if carrier
                else effect.treatment_rr_noncarriers
            )
            event_probability *= rr
        event = int(rng.random() < event_probability)
        event_day = (
            int(rng.integers(1, protocol.follow_up_days))
            if event
            else protocol.follow_up_days
        )
        ae_rate = (
            effect.adverse_rate_treatment
            if arm == "treatment"
            else effect.adverse_rate_control
        )
        adverse = int(rng.random() < ae_rate)
        severity = int(rng.integers(1, 6)) if adverse else 0
        # Observations surface when the patient next touches the system.
        report_day = min(
            protocol.follow_up_days,
            (event_day if event else int(rng.integers(1, protocol.follow_up_days)))
            + int(rng.integers(0, 14)),
        )
        outcomes.append(
            SubjectOutcome(
                patient_pseudo_id=patient["patient_id"],
                site=patient["site"],
                arm=arm,
                is_carrier=carrier,
                event=event,
                event_day=event_day,
                adverse_event=adverse,
                adverse_severity=severity,
                report_day=report_day,
            )
        )
    return outcomes


def true_effect_summary(outcomes: Sequence[SubjectOutcome]) -> Dict[str, float]:
    """Ground-truth event rates by arm and subgroup (benchmark reference)."""
    def rate(group: List[SubjectOutcome]) -> float:
        return sum(o.event for o in group) / len(group) if group else 0.0

    treatment = [o for o in outcomes if o.arm == "treatment"]
    control = [o for o in outcomes if o.arm == "control"]
    return {
        "treatment_rate": rate(treatment),
        "control_rate": rate(control),
        "treatment_rate_carriers": rate([o for o in treatment if o.is_carrier]),
        "control_rate_carriers": rate([o for o in control if o.is_carrier]),
        "treatment_rate_noncarriers": rate([o for o in treatment if not o.is_carrier]),
        "control_rate_noncarriers": rate([o for o in control if not o.is_carrier]),
        "ae_rate_treatment": (
            sum(o.adverse_event for o in treatment) / len(treatment)
            if treatment
            else 0.0
        ),
        "ae_rate_control": (
            sum(o.adverse_event for o in control) / len(control) if control else 0.0
        ),
    }
