"""Clinical trials: protocols, simulation, RWE monitoring, auditing."""

from repro.trial.auditor import AuditFinding, PublishedReport, TrialAuditor
from repro.trial.chainfeed import ChainTrialFeed
from repro.trial.monitor import RWEMonitor, Signal
from repro.trial.protocol import TrialProtocol
from repro.trial.simulation import (
    SubjectOutcome,
    TrialEffect,
    assign_arms,
    simulate_follow_up,
    true_effect_summary,
)

__all__ = [
    "AuditFinding",
    "ChainTrialFeed",
    "PublishedReport",
    "RWEMonitor",
    "Signal",
    "SubjectOutcome",
    "TrialAuditor",
    "TrialEffect",
    "TrialProtocol",
    "assign_arms",
    "simulate_follow_up",
    "true_effect_summary",
]
