"""The medical blockchain platform (Figures 1, 2, 4 assembled).

:class:`MedicalBlockchainNetwork` builds the paper's full architecture in
one object:

- a blockchain node per hospital site (plus optional FDA trusted node) over
  the simulated network, running PoA by default (a hospital consortium) or
  PoW/PoS for the consensus experiments;
- the four platform contracts (data / analytics / clinical-trial /
  patient-consent) deployed once at boot;
- per site: a legacy-format hospital data store, the standard analytics
  tool registry, a monitor node (event bridge), an off-chain control node,
  and an HIE exchange service;
- an off-chain content-addressed *parameter depot* so heavy task inputs
  (e.g. model weights) never enter the ledger — only their hash does,
  keeping the on-chain contracts light-weight as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.chain.blocks import make_genesis
from repro.chain.state import StateDB
from repro.chain.transactions import Transaction, make_call
from repro.common.errors import ChainError, MedchainError
from repro.common.hashing import hash_value_hex
from repro.common.signatures import KeyPair
from repro.consensus.base import ConsensusEngine
from repro.consensus.node import BlockchainNode, NodeConfig
from repro.consensus.poa import ProofOfAuthority
from repro.consensus.pos import ProofOfStake
from repro.consensus.pow import ProofOfWork
from repro.contracts.library import (
    ANALYTICS_SOURCE,
    BLOB_REGISTRY_SOURCE,
    CLINICAL_TRIAL_SOURCE,
    DATA_REGISTRY_SOURCE,
    PATIENT_CONSENT_SOURCE,
)
from repro.contracts.registry import ContractRegistry
from repro.da.store import ChunkStore
from repro.datamgmt.store import HospitalDataStore
from repro.datamgmt.virtual import DatasetRef
from repro.offchain.anchoring import DatasetAnchor
from repro.offchain.control import ControlNode, NonceTracker, PlatformContracts
from repro.offchain.oracle import DataOracle, MonitorNode
from repro.offchain.tasks import TaskRunner
from repro.analytics.tools import standard_registry
from repro.sharing.audit import AuditLog
from repro.sharing.exchange import ExchangeService, TrustedThirdParty
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import LinkSpec, Network

FDA_NODE_NAME = "fda"


@dataclass
class PlatformConfig:
    """Configuration of a platform instance."""

    site_count: int = 4
    consensus: str = "poa"  # "poa" | "pow" | "pos"
    pow_difficulty_bits: int = 10
    pow_hash_rate: float = 1e5
    block_interval_s: float = 1.0
    include_fda: bool = True
    seed: int = 0
    link: LinkSpec = field(default_factory=LinkSpec)
    max_txs_per_block: int = 200
    funding: int = 1_000_000_000
    register_tools: bool = True  # auto-register the standard tool suite at boot
    # Statically verify platform contracts (repro.analysis) before the boot
    # deployments are signed; a failing contract aborts the boot with a
    # ContractVerificationError instead of reaching the chain.
    verify_contracts: bool = True
    # Include the MED2xx PHI taint pass in that boot-time verification: a
    # platform contract that provably leaks patient data into chain state
    # is rejected the same way a nondeterministic one is.
    taint_contracts: bool = True
    # Finality window for per-block state retention (see NodeConfig); long
    # platform runs keep state memory bounded by chain width, not length.
    state_prune_window: int = 64


@dataclass
class Site:
    """Everything belonging to one hospital."""

    name: str
    keypair: KeyPair
    node: BlockchainNode
    store: HospitalDataStore
    monitor: MonitorNode
    control: ControlNode
    exchange: ExchangeService
    chunks: ChunkStore  # erasure-coded share custody (repro.da)


class ParamsDepot:
    """Off-chain content-addressed store for heavy task parameters.

    Tasks reference parameters by hash on chain; the depot resolves the
    hash off chain.  Mirrors the paper's insistence that the smart contract
    stays a light-weight policy control point.
    """

    def __init__(self) -> None:
        self._blobs: Dict[str, Dict[str, Any]] = {}

    def put(self, params: Dict[str, Any]) -> str:
        ref = hash_value_hex(params)[:32]
        self._blobs[ref] = dict(params)
        return ref

    def get(self, ref: str) -> Dict[str, Any]:
        if ref not in self._blobs:
            raise MedchainError(f"unknown params ref {ref[:12]}")
        return dict(self._blobs[ref])

    def __contains__(self, ref: str) -> bool:
        return ref in self._blobs


class MedicalBlockchainNetwork:
    """Boots and operates the whole platform."""

    def __init__(self, config: Optional[PlatformConfig] = None):
        self.config = config or PlatformConfig()
        self.kernel = Kernel(seed=self.config.seed)
        self.metrics = MetricsRegistry()
        self.network = Network(
            self.kernel, self.metrics, default_link=self.config.link
        )
        self.depot = ParamsDepot()
        self.deployer = KeyPair.generate("platform-deployer")
        self._deployer_nonces = NonceTracker()
        self.site_names = [
            f"hospital-{index}" for index in range(self.config.site_count)
        ]
        self.node_names = list(self.site_names) + (
            [FDA_NODE_NAME] if self.config.include_fda else []
        )
        self.keypairs = {name: KeyPair.generate(name) for name in self.node_names}
        self.contracts: Optional[PlatformContracts] = None
        self.contract_registry: Optional[ContractRegistry] = None
        self.sites: Dict[str, Site] = {}
        self.fda: Optional[TrustedThirdParty] = None
        self.nodes: Dict[str, BlockchainNode] = {}
        self._boot()

    # -- boot sequence -----------------------------------------------------
    def _boot(self) -> None:
        genesis_state = StateDB()
        genesis_state.credit(self.deployer.address, self.config.funding)
        for keypair in self.keypairs.values():
            genesis_state.credit(keypair.address, self.config.funding)
        genesis = make_genesis(genesis_state.state_root())
        engine_factory = self._consensus_factory()
        node_config = NodeConfig(
            max_txs_per_block=self.config.max_txs_per_block,
            state_prune_window=self.config.state_prune_window,
        )
        for name in self.node_names:
            self.nodes[name] = BlockchainNode(
                kernel=self.kernel,
                network=self.network,
                name=name,
                genesis=genesis,
                genesis_state=genesis_state,
                consensus=engine_factory(),
                metrics=self.metrics,
                config=node_config,
            )
        for node in self.nodes.values():
            node.start()
        self.contracts = self._deploy_platform_contracts()
        for name in self.site_names:
            self.sites[name] = self._build_site(name)
        if self.config.include_fda:
            self.fda = TrustedThirdParty(
                FDA_NODE_NAME, self.keypairs[FDA_NODE_NAME], self.metrics
            )
        if self.config.register_tools:
            self.register_standard_tools()

    def _consensus_factory(self) -> Callable[[], ConsensusEngine]:
        kind = self.config.consensus
        if kind == "poa":
            engine = ProofOfAuthority(
                validators=self.node_names,
                keypairs=self.keypairs,
                block_interval_s=self.config.block_interval_s,
            )
            return lambda: engine
        if kind == "pow":
            engine = ProofOfWork(
                difficulty_bits=self.config.pow_difficulty_bits,
                default_hash_rate=self.config.pow_hash_rate,
            )
            return lambda: engine
        if kind == "pos":
            stakes = {name: 100 + 10 * index for index, name in enumerate(self.node_names)}
            engine = ProofOfStake(
                stakes=stakes, round_time_s=self.config.block_interval_s
            )
            return lambda: engine
        raise MedchainError(f"unknown consensus kind {kind!r}")

    def _deploy_platform_contracts(self) -> PlatformContracts:
        sources = {
            "data-registry": DATA_REGISTRY_SOURCE,
            "analytics": ANALYTICS_SOURCE,
            "clinical-trial": CLINICAL_TRIAL_SOURCE,
            "patient-consent": PATIENT_CONSENT_SOURCE,
            "blob-registry": BLOB_REGISTRY_SOURCE,
        }
        ids: Dict[str, str] = {}
        entry_node = self.nodes[self.node_names[0]]
        # Platform contracts go through the verifying registry: a
        # nondeterministic or unbounded contract never reaches the chain
        # (and the shipped library dogfoods the static analyzer at boot).
        registry = ContractRegistry(
            node=entry_node,
            deployer=self.deployer,
            timestamp_source=lambda: int(self.kernel.now * 1000),
            verify_by_default=self.config.verify_contracts,
            taint=self.config.taint_contracts,
        )
        for name, source in sources.items():
            tx = registry.deploy(name, source)
            receipt = self.run_until_committed(tx, timeout_s=600)
            if not receipt.success:
                raise ChainError(f"failed to deploy {name}: {receipt.error}")
            ids[name] = receipt.output
        self.contract_registry = registry
        return PlatformContracts(
            data_contract_id=ids["data-registry"],
            analytics_contract_id=ids["analytics"],
            trial_contract_id=ids["clinical-trial"],
            consent_contract_id=ids["patient-consent"],
            blob_contract_id=ids["blob-registry"],
        )

    def _build_site(self, name: str) -> Site:
        node = self.nodes[name]
        keypair = self.keypairs[name]
        store = HospitalDataStore(name)
        oracle = self._build_site_oracle(name, node, store)
        monitor = MonitorNode(f"{name}-monitor", node, oracle)
        runner = TaskRunner(name, standard_registry())
        control = ControlNode(
            site=name,
            keypair=keypair,
            node=node,
            monitor=monitor,
            contracts=self.contracts,
            host=store,
            runner=runner,
            params_resolver=self.depot.get,
        )
        exchange = ExchangeService(
            site=name,
            node=node,
            data_contract_id=self.contracts.data_contract_id,
            host=store,
            audit=AuditLog(name=f"{name}-audit"),
            metrics=self.metrics,
        )
        return Site(
            name=name,
            keypair=keypair,
            node=node,
            store=store,
            monitor=monitor,
            control=control,
            exchange=exchange,
            chunks=ChunkStore(name),
        )

    def _build_site_oracle(
        self, name: str, node: BlockchainNode, store: HospitalDataStore
    ) -> DataOracle:
        """Standard RPC bridge endpoints (Figure 3's 'standard format').

        These are the calls a smart contract (through the monitor) or a
        peer site may make against this site's external world: dataset
        inventory, record counts, and an anchored-integrity check.
        """
        oracle = DataOracle(f"{name}-oracle")
        oracle.register_endpoint(
            "list_datasets", lambda req: {"dataset_ids": store.dataset_ids()}
        )
        oracle.register_endpoint(
            "record_count",
            lambda req: {"count": store.record_count(req["dataset_id"])},
        )

        def verify(req: Dict[str, Any]) -> Dict[str, Any]:
            dataset_id = req["dataset_id"]
            entry = node.call_view(
                self.contracts.data_contract_id,
                "get_dataset",
                {"dataset_id": dataset_id},
            )
            if entry is None:
                return {"dataset_id": dataset_id, "registered": False, "intact": False}
            from repro.offchain.anchoring import verify_dataset

            intact = verify_dataset(store.get_records(dataset_id), entry["merkle_root"])
            return {"dataset_id": dataset_id, "registered": True, "intact": intact}

        oracle.register_endpoint("verify_dataset", verify)
        return oracle

    # -- chain helpers -----------------------------------------------------
    def run(self, duration_s: float) -> None:
        """Advance the simulation by ``duration_s`` seconds."""
        self.kernel.run(until=self.kernel.now + duration_s)

    def run_until_committed(
        self, tx: Transaction, timeout_s: float = 300.0, quorum: Optional[int] = None
    ) -> Any:
        """Run until ``quorum`` nodes (default: all) hold a receipt for ``tx``."""
        wanted = quorum or len(self.nodes)
        deadline = self.kernel.now + timeout_s

        def committed() -> bool:
            return (
                sum(1 for node in self.nodes.values() if node.receipt(tx.tx_id))
                >= wanted
            )

        self.kernel.run(until=deadline, stop_when=committed)
        receipt = self.nodes[self.node_names[0]].receipt(tx.tx_id)
        if receipt is None:
            raise ChainError(f"tx {tx.tx_id[:12]} not committed within {timeout_s}s")
        return receipt

    def submit_as(self, signer_name: str, contract_id: str, method: str, args: Dict[str, Any]) -> Transaction:
        """Sign a contract call with a named node's key and submit it."""
        site = self.sites.get(signer_name)
        if site is not None:
            return site.control.submit_signed_call(contract_id, method, args)
        keypair = self.keypairs[signer_name]
        node = self.nodes[signer_name]
        nonce = self._deployer_nonces.next_nonce(
            keypair.address, node.state.nonce(keypair.address)
        )
        tx = make_call(
            keypair,
            contract_id,
            method,
            args,
            nonce=nonce,
            timestamp_ms=int(self.kernel.now * 1000),
        )
        node.submit_tx(tx)
        return tx

    # -- platform operations ------------------------------------------------
    def register_dataset(
        self,
        site_name: str,
        dataset_id: str,
        canonical_records: List[Dict[str, Any]],
        fmt: str = "canonical",
        wait: bool = True,
    ) -> DatasetAnchor:
        """Host a dataset at a site and anchor it on chain (Figure 3)."""
        site = self.sites[site_name]
        site.store.add_canonical(
            dataset_id, canonical_records, fmt=fmt, owner=site.keypair.address
        )
        anchor = site.store.anchor(dataset_id)
        tx = site.control.submit_signed_call(
            self.contracts.data_contract_id,
            "register_dataset",
            {
                "dataset_id": dataset_id,
                "site": site_name,
                "schema": "patient-canonical-v1",
                "record_count": anchor.record_count,
                "merkle_root": anchor.root_hex,
            },
        )
        if wait:
            receipt = self.run_until_committed(tx)
            if not receipt.success:
                raise ChainError(f"dataset registration failed: {receipt.error}")
        return anchor

    def grant_access(
        self,
        owner_site: str,
        dataset_id: str,
        grantee_address: str,
        purpose: str,
        expires_ms: int = -1,
        wait: bool = True,
    ) -> Transaction:
        """Owner grants fine-grained access on chain."""
        site = self.sites[owner_site]
        tx = site.control.submit_signed_call(
            self.contracts.data_contract_id,
            "grant_access",
            {
                "dataset_id": dataset_id,
                "grantee": grantee_address,
                "purpose": purpose,
                "expires_ms": expires_ms,
            },
        )
        if wait:
            receipt = self.run_until_committed(tx)
            if not receipt.success:
                raise ChainError(f"grant failed: {receipt.error}")
        return tx

    def set_patient_consent(
        self,
        site_name: str,
        patient_pseudo_id: str,
        scope: str,
        allow: bool,
        wait: bool = True,
    ) -> Transaction:
        """Record a patient's consent decision on chain (via their hospital's
        patient portal, i.e. signed by the hosting site)."""
        site = self.sites[site_name]
        tx = site.control.submit_signed_call(
            self.contracts.consent_contract_id,
            "set_consent",
            {
                "patient_pseudo_id": patient_pseudo_id,
                "scope": scope,
                "allow": allow,
            },
        )
        if wait:
            receipt = self.run_until_committed(tx)
            if not receipt.success:
                raise ChainError(f"consent update failed: {receipt.error}")
        return tx

    def catalog(self) -> List[DatasetRef]:
        """Every registered dataset, read from the on-chain registry."""
        node = self.nodes[self.node_names[0]]
        entries = node.call_view(self.contracts.data_contract_id, "list_datasets")
        return [
            DatasetRef(
                site=entry["site"],
                dataset_id=entry["dataset_id"],
                record_count=entry["record_count"],
                schema=entry["schema"],
            )
            for entry in entries or []
            if not entry.get("revoked")
        ]

    def register_standard_tools(self, wait: bool = True) -> None:
        """Register the standard tool suite in the analytics contract."""
        entry_site = self.sites[self.site_names[0]]
        last_tx = None
        for tool_id in entry_site.control.runner.registry.tool_ids():
            spec = entry_site.control.runner.registry.get(tool_id)
            last_tx = entry_site.control.submit_signed_call(
                self.contracts.analytics_contract_id,
                "register_tool",
                {
                    "tool_id": tool_id,
                    "code_hash": spec.code_hash(),
                    "description": spec.description,
                },
            )
        if wait and last_tx is not None:
            self.run_until_committed(last_tx)

    # -- erasure-coded blob custody (repro.da) ------------------------------
    def da_clients(self) -> Dict[str, Any]:
        """In-process DA clients over every site's chunk store."""
        from repro.da.clients import LocalSiteClient

        return {
            name: LocalSiteClient(site.chunks) for name, site in self.sites.items()
        }

    def disperse_blob(
        self,
        owner_site: str,
        blob: bytes,
        *,
        k: int,
        n: Optional[int] = None,
        chunk_size: int = 64 * 1024,
        wait: bool = True,
    ) -> Any:
        """Erasure-code ``blob`` across the sites and anchor it on chain.

        The paper's E5/E7 story extended to payloads: bytes stay off chain
        at the custodial sites, the chain holds only the Merkle root and
        coding geometry (the ``blob-registry`` contract).  Returns the
        :class:`repro.da.dispersal.DispersalReceipt`.
        """
        from repro.da.dispersal import Disperser

        clients = self.da_clients()
        receipt = Disperser(list(clients.values())).disperse(
            blob, k=k, n=n, chunk_size=chunk_size
        )
        manifest = receipt.manifest
        site = self.sites[owner_site]
        tx = site.control.submit_signed_call(
            self.contracts.blob_contract_id,
            "register_blob",
            {
                "blob_id": manifest.blob_id,
                "merkle_root": manifest.root_hex,
                "size": manifest.size,
                "chunk_size": manifest.chunk_size,
                "k": manifest.k,
                "n": manifest.n,
                "stripes": manifest.stripes,
                "placement": list(manifest.placement),
            },
        )
        if wait:
            chain_receipt = self.run_until_committed(tx)
            if not chain_receipt.success:
                raise ChainError(f"blob registration failed: {chain_receipt.error}")
        return receipt

    def retrieve_blob(self, blob_id: str) -> bytes:
        """Reconstruct a registered blob from any k live share columns."""
        from repro.da.dispersal import Retriever
        from repro.da.manifest import BlobManifest

        entry = self.blob_entry(blob_id)
        manifest = BlobManifest.from_wire(
            {**entry, "root": entry["merkle_root"]}
        )
        return Retriever(self.da_clients()).retrieve(manifest)

    def blob_entry(self, blob_id: str) -> Dict[str, Any]:
        """One blob's on-chain commitment entry."""
        node = self.nodes[self.node_names[0]]
        entry = node.call_view(
            self.contracts.blob_contract_id, "get_blob", {"blob_id": blob_id}
        )
        if entry is None:
            raise ChainError(f"blob {blob_id[:12]} is not registered on chain")
        return entry

    def blob_catalog(self) -> List[Dict[str, Any]]:
        """Every registered blob commitment, read from the chain."""
        node = self.nodes[self.node_names[0]]
        entries = node.call_view(self.contracts.blob_contract_id, "list_blobs")
        return [entry for entry in entries or [] if not entry.get("revoked")]

    def audit_blob(
        self,
        auditor_site: str,
        blob_id: str,
        samples: int = 64,
        seed: Optional[int] = None,
        wait: bool = True,
    ) -> Any:
        """Run a sampling audit and post its outcome on chain."""
        from repro.da.manifest import BlobManifest
        from repro.da.sampling import Sampler

        entry = self.blob_entry(blob_id)
        manifest = BlobManifest.from_wire({**entry, "root": entry["merkle_root"]})
        report = Sampler(
            self.da_clients(), seed=self.config.seed if seed is None else seed
        ).audit(manifest, samples=samples)
        site = self.sites[auditor_site]
        tx = site.control.submit_signed_call(
            self.contracts.blob_contract_id,
            "report_audit",
            {
                "blob_id": blob_id,
                "samples": report.samples,
                "verified": report.verified,
                "flagged_sites": report.flagged_sites,
            },
        )
        if wait:
            chain_receipt = self.run_until_committed(tx)
            if not chain_receipt.success:
                raise ChainError(f"audit report failed: {chain_receipt.error}")
        return report

    def repair_blob(
        self, reporter_site: str, blob_id: str, wait: bool = True
    ) -> Any:
        """Reconstruct and re-disperse a blob's missing shares, log on chain."""
        from repro.da.dispersal import Repairer
        from repro.da.manifest import BlobManifest

        entry = self.blob_entry(blob_id)
        manifest = BlobManifest.from_wire({**entry, "root": entry["merkle_root"]})
        report = Repairer(self.da_clients()).repair(manifest)
        if report.missing_before:
            site = self.sites[reporter_site]
            tx = site.control.submit_signed_call(
                self.contracts.blob_contract_id,
                "report_repair",
                {"blob_id": blob_id, "restored": report.restored},
            )
            if wait:
                chain_receipt = self.run_until_committed(tx)
                if not chain_receipt.success:
                    raise ChainError(
                        f"repair report failed: {chain_receipt.error}"
                    )
        return report

    def total_energy_joules(self) -> float:
        return self.metrics.total_energy_joules()
