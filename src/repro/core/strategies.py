"""Data-movement strategies: move compute to data vs move data to compute.

Section IV: "medical big data size is not suitable to move data to
computing".  Both strategies answer the same query; what differs is where
the computation runs and therefore what crosses the wire:

- :func:`compute_to_data` — the paper's proposal: per-site smart-contract
  tasks, only small partial results move (via the query service);
- :func:`data_to_compute` — the status-quo baseline: pull every record to
  the requester through the HIE exchange (grants still enforced, payloads
  still encrypted), then compute centrally.

Experiment E5 sweeps data size and reports the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.common.errors import QueryError
from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork
from repro.core.queryservice import GlobalQueryService
from repro.query.vector import QueryVector
from repro.sharing.encryption import decrypt


@dataclass
class ExecutionReport:
    """What one strategy cost to answer one query."""

    strategy: str
    result: Dict[str, Any]
    bytes_moved: int
    sim_seconds: float
    records_touched: int


def compute_to_data(
    service: GlobalQueryService, vector: QueryVector
) -> ExecutionReport:
    """Answer via decomposed per-site tasks (paper's architecture)."""
    answer = service.execute(vector)
    records = sum(
        ref.record_count for ref in service.platform.catalog()
    )
    return ExecutionReport(
        strategy="compute-to-data",
        result=answer.result,
        bytes_moved=answer.bytes_on_wire,
        sim_seconds=answer.latency_s,
        records_touched=records,
    )


def data_to_compute(
    platform: MedicalBlockchainNetwork,
    requester: KeyPair,
    vector: QueryVector,
    link_bandwidth_bps: Optional[float] = None,
) -> ExecutionReport:
    """Answer by copying every dataset to the requester, then computing.

    Transfer time is modelled from the platform's default link (or an
    override) since HIE pulls are synchronous RPCs, not kernel messages.
    """
    from repro.analytics.tools import STANDARD_TOOLS

    start = platform.kernel.now
    bytes_moved = 0
    pooled = []
    for ref in platform.catalog():
        site = platform.sites[ref.site]
        receipt = site.exchange.request_records(
            requester, ref.dataset_id, vector.purpose
        )
        payload = decrypt(requester.private, receipt.envelope)
        pooled.extend(payload["records"])
        bytes_moved += receipt.payload_bytes
    if not pooled:
        raise QueryError("no records available to copy")
    # Charge the simulated clock for the transfer: run the kernel forward to
    # the transfer-completion time (safe even with events in flight).
    link = platform.network.default_link
    bandwidth = link_bandwidth_bps or link.bandwidth_bps
    transfer_s = link.latency_s + bytes_moved * 8 / bandwidth
    platform.kernel.run(until=platform.kernel.now + transfer_s)
    tool = next(spec for spec in STANDARD_TOOLS if spec.tool_id == vector.tool_id())
    result = tool.fn(pooled, vector.tool_params())
    return ExecutionReport(
        strategy="data-to-compute",
        result=result,
        bytes_moved=bytes_moved,
        sim_seconds=platform.kernel.now - start,
        records_touched=len(pooled),
    )
