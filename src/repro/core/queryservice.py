"""Global query service (Figure 5's top layer).

Accepts a research question (natural language or a ready
:class:`QueryVector`), decomposes it into per-site smart-contract task
requests, waits for the sites' control nodes to execute against their local
data, and composes the partial results into one global answer.  For
``train`` queries it runs a full federated loop: every round broadcasts the
global model parameters (off chain, by content hash) and averages the
returned site updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.analytics.features import FEATURE_DIM
from repro.analytics.models import LogisticModel, MLPModel, SupervisedModel
from repro.common.errors import QueryError
from repro.common.serialize import canonical_bytes
from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork
from repro.obs.tracer import trace_span
from repro.offchain.control import NonceTracker
from repro.offchain.tasks import TaskResult
from repro.query.compose import SiteTask, compose, decompose
from repro.query.parser import parse_query
from repro.query.vector import QueryVector


@dataclass
class GlobalAnswer:
    """Composed result of one distributed query."""

    query_id: str
    vector: QueryVector
    result: Dict[str, Any]
    site_partials: Dict[str, Dict[str, Any]]
    latency_s: float
    bytes_on_wire: int
    failed_sites: Dict[str, str] = field(default_factory=dict)


class GlobalQueryService:
    """Figure 5: query service + data service for one researcher identity."""

    def __init__(
        self,
        platform: MedicalBlockchainNetwork,
        researcher: KeyPair,
        default_timeout_s: float = 600.0,
        gateway: Optional[Any] = None,
    ):
        self.platform = platform
        self.researcher = researcher
        self.default_timeout_s = default_timeout_s
        #: Optional repro.rpc gateway; when set, single-round aggregate
        #: queries dispatch to (possibly remote) site servers over RPC
        #: instead of through the simulated on-chain task round-trip.
        self.gateway = gateway
        self._nonces = NonceTracker()
        self._results: Dict[str, TaskResult] = {}
        self._task_counter = 0
        for site in platform.sites.values():
            site.control.on_result(self._collect_result)

    # -- public API ---------------------------------------------------------
    def ask(self, question: str, purpose: str = "research") -> GlobalAnswer:
        """Natural-language entry point."""
        vector = parse_query(question, purpose=purpose)
        return self.execute(vector)

    def execute(
        self, vector: QueryVector, timeout_s: Optional[float] = None
    ) -> GlobalAnswer:
        """Decompose, dispatch, await, compose."""
        vector.validate()
        if vector.intent == "train":
            return self._execute_train(vector, timeout_s)
        if vector.intent == "fetch":
            return self._execute_fetch(vector)
        if vector.intent == "evaluate":
            raise QueryError(
                "evaluate queries carry model parameters; call "
                "GlobalQueryService.evaluate_model(model, vector) instead"
            )
        if self.gateway is not None:
            return self._execute_via_gateway(vector, timeout_s)
        return self._execute_single_round(vector, vector.tool_params(), timeout_s)

    def _execute_via_gateway(
        self, vector: QueryVector, timeout_s: Optional[float]
    ) -> GlobalAnswer:
        """Serve a single-round aggregate through the RPC gateway.

        Decomposition, fan-out, and composition happen in the gateway; the
        answer shape is identical to the simulated path, so callers cannot
        tell (and tests assert they cannot tell by result content).
        """
        answer = self.gateway.execute(vector, timeout_s)
        return GlobalAnswer(
            query_id=answer.query_id,
            vector=vector,
            result=answer.result,
            site_partials=answer.site_partials,
            latency_s=answer.latency_s,
            bytes_on_wire=answer.bytes_on_wire,
            failed_sites=answer.failed_sites,
        )

    def evaluate_model(
        self,
        model: SupervisedModel,
        vector: QueryVector,
        timeout_s: Optional[float] = None,
    ) -> GlobalAnswer:
        """Federated evaluation: score a model on every site's local data.

        The model's parameters ship to each site (off chain, by content
        hash); each site returns loss/accuracy/AUC over its *own* held-out
        records, and the composed answer is the sample-weighted global
        metric — distributed validation without centralizing a single
        record.
        """
        vector.validate()
        if vector.intent != "evaluate":
            raise QueryError("evaluate_model requires an 'evaluate' query vector")
        params = vector.tool_params()
        params["global_params"] = [p.tolist() for p in model.get_params()]
        return self._execute_single_round(vector, params, timeout_s, round_tag="ev")

    def _execute_fetch(self, vector: QueryVector) -> GlobalAnswer:
        """Retrieve records through the HIE exchange (grants enforced,
        payload encrypted to the requester, schema projected).

        This is the paper's "if the users' submitted requests are retrieving
        data, the system will return the encrypted data which only the
        requesting user can decrypt", with "the returned data format based
        on users' requested schema".
        """
        from repro.sharing.encryption import decrypt

        start = self.platform.kernel.now
        records: List[Any] = []
        partials: Dict[str, Dict[str, Any]] = {}
        failures: Dict[str, str] = {}
        bytes_on_wire = 0
        for ref in self.platform.catalog():
            site = self.platform.sites.get(ref.site)
            if site is None:
                continue
            try:
                receipt = site.exchange.request_records(
                    self.researcher,
                    ref.dataset_id,
                    vector.purpose,
                    fields=vector.requested_schema or None,
                )
            except Exception as exc:  # AccessDenied / Integrity / Oracle
                failures[ref.site] = str(exc)
                continue
            payload = decrypt(self.researcher.private, receipt.envelope)
            records.extend(payload["records"])
            bytes_on_wire += receipt.payload_bytes
            partials[ref.site] = {"records": receipt.record_count}
        if not partials:
            raise QueryError(f"fetch produced no records; failures: {failures}")
        return GlobalAnswer(
            query_id=vector.query_id,
            vector=vector,
            result={"records": records, "count": len(records)},
            site_partials=partials,
            latency_s=self.platform.kernel.now - start,
            bytes_on_wire=bytes_on_wire,
            failed_sites=failures,
        )

    def train_model(
        self, vector: QueryVector, timeout_s: Optional[float] = None
    ) -> SupervisedModel:
        """Convenience: run a ``train`` query and materialize the model."""
        answer = self.execute(vector, timeout_s)
        model: SupervisedModel
        if vector.model == "mlp":
            model = MLPModel(FEATURE_DIM)
        else:
            model = LogisticModel(FEATURE_DIM)
        model.set_params(
            [np.asarray(p, dtype=float) for p in answer.result["params"]]
        )
        return model

    # -- internals ----------------------------------------------------------
    def _collect_result(self, result: TaskResult) -> None:
        self._results[result.task_id] = result

    def _dispatch_tasks(
        self, vector: QueryVector, params: Dict[str, Any], round_tag: str
    ) -> List[SiteTask]:
        catalog = self.platform.catalog()
        if not catalog:
            raise QueryError("no datasets are registered on the platform")
        params_ref = self.platform.depot.put(params)
        with trace_span(
            "query.decompose", intent=vector.intent, datasets=len(catalog)
        ) as span:
            tasks = decompose(vector, catalog)
            span.set_attr("tasks", len(tasks))
        entry_node = self.platform.nodes[self.platform.node_names[0]]
        dispatched = []
        self._request_txs: Dict[str, Any] = getattr(self, "_request_txs", {})
        for task in tasks:
            self._task_counter += 1
            task_id = f"{task.task_id}-{round_tag}-{self._task_counter}"
            nonce = self._nonces.next_nonce(
                self.researcher.address,
                entry_node.state.nonce(self.researcher.address),
            )
            from repro.chain.transactions import make_call

            tx = make_call(
                self.researcher,
                self.platform.contracts.analytics_contract_id,
                "request_task",
                {
                    "task_id": task_id,
                    "tool_id": task.tool_id,
                    "dataset_ids": task.dataset_ids,
                    "params": {"params_ref": params_ref},
                    "purpose": task.purpose,
                },
                nonce=nonce,
                timestamp_ms=int(self.platform.kernel.now * 1000),
            )
            entry_node.submit_tx(tx)
            self._request_txs[task_id] = tx
            # Down-link cost: global params shipped to the executing site.
            self.platform.metrics.add_bytes(
                len(canonical_bytes(params)), scope="query-service"
            )
            dispatched.append(
                SiteTask(
                    task_id=task_id,
                    site=task.site,
                    dataset_ids=task.dataset_ids,
                    tool_id=task.tool_id,
                    params=params,
                    purpose=task.purpose,
                )
            )
        return dispatched

    def _await_tasks(
        self, tasks: List[SiteTask], timeout_s: float
    ) -> Dict[str, str]:
        """Run the simulation until every task completed or failed."""
        controls = {
            site_name: site.control for site_name, site in self.platform.sites.items()
        }
        entry_node = self.platform.nodes[self.platform.node_names[0]]

        def request_failed(task_id: str) -> str:
            tx = getattr(self, "_request_txs", {}).get(task_id)
            if tx is None:
                return ""
            receipt = entry_node.receipt(tx.tx_id)
            if receipt is not None and not receipt.success:
                return f"request_task rejected: {receipt.error}"
            return ""

        def settled() -> bool:
            for task in tasks:
                if task.task_id in self._results:
                    continue
                control = controls.get(task.site)
                if control is not None and task.task_id in control.rejected:
                    continue
                if request_failed(task.task_id):
                    continue
                return False
            return True

        self.platform.kernel.run(
            until=self.platform.kernel.now + timeout_s, stop_when=settled
        )
        failures = {}
        for task in tasks:
            if task.task_id in self._results:
                continue
            control = controls.get(task.site)
            if control is not None and task.task_id in control.rejected:
                failures[task.site] = control.rejected[task.task_id]
            else:
                failures[task.site] = request_failed(task.task_id) or "timeout"
        return failures

    def _execute_single_round(
        self,
        vector: QueryVector,
        params: Dict[str, Any],
        timeout_s: Optional[float],
        round_tag: str = "r0",
    ) -> GlobalAnswer:
        start = self.platform.kernel.now
        with trace_span(
            "query.round",
            intent=vector.intent,
            tag=round_tag,
            sim_start=start,
        ) as round_span:
            with trace_span("query.dispatch") as span:
                tasks = self._dispatch_tasks(vector, params, round_tag)
                span.set_attr("tasks", len(tasks))
            with trace_span("query.await", tasks=len(tasks)) as span:
                failures = self._await_tasks(
                    tasks, timeout_s or self.default_timeout_s
                )
                span.set_attr("failures", len(failures))
                span.set_attr("sim_elapsed_s", self.platform.kernel.now - start)
            partials: Dict[str, Dict[str, Any]] = {}
            bytes_on_wire = 0
            for task in tasks:
                result = self._results.get(task.task_id)
                if result is None:
                    continue
                partials[task.site] = result.result
                up = len(canonical_bytes(result.result))
                bytes_on_wire += up + len(canonical_bytes(params))
                self.platform.metrics.add_bytes(up, scope=task.site)
            if not partials:
                raise QueryError(
                    f"query {vector.query_id} produced no results; "
                    f"failures: {failures}"
                )
            with trace_span("query.compose", sites=len(partials)):
                composed = compose(vector, list(partials.values()))
            round_span.set_attr("bytes", bytes_on_wire)
            round_span.set_attr("sim_latency_s", self.platform.kernel.now - start)
        return GlobalAnswer(
            query_id=vector.query_id,
            vector=vector,
            result=composed,
            site_partials=partials,
            latency_s=self.platform.kernel.now - start,
            bytes_on_wire=bytes_on_wire,
            failed_sites=failures,
        )

    def _execute_train(
        self, vector: QueryVector, timeout_s: Optional[float]
    ) -> GlobalAnswer:
        """Federated loop riding the task machinery round by round."""
        start = self.platform.kernel.now
        global_params: Optional[List[List[float]]] = None
        total_bytes = 0
        partials: Dict[str, Dict[str, Any]] = {}
        failures: Dict[str, str] = {}
        composed: Dict[str, Any] = {}
        for round_index in range(vector.rounds):
            params = vector.tool_params()
            params["seed"] = round_index
            if global_params is not None:
                params["global_params"] = global_params
            answer = self._execute_single_round(
                vector, params, timeout_s, round_tag=f"r{round_index}"
            )
            composed = answer.result
            partials = answer.site_partials
            failures = answer.failed_sites
            total_bytes += answer.bytes_on_wire
            global_params = composed["params"]
        return GlobalAnswer(
            query_id=vector.query_id,
            vector=vector,
            result=composed,
            site_partials=partials,
            latency_s=self.platform.kernel.now - start,
            bytes_on_wire=total_bytes,
            failed_sites=failures,
        )
