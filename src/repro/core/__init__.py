"""Core: the transformed blockchain platform, query service, strategies."""

from repro.core.platform import (
    FDA_NODE_NAME,
    MedicalBlockchainNetwork,
    ParamsDepot,
    PlatformConfig,
    Site,
)
from repro.core.queryservice import GlobalAnswer, GlobalQueryService
from repro.core.strategies import (
    ExecutionReport,
    compute_to_data,
    data_to_compute,
)

__all__ = [
    "ExecutionReport",
    "FDA_NODE_NAME",
    "GlobalAnswer",
    "GlobalQueryService",
    "MedicalBlockchainNetwork",
    "ParamsDepot",
    "PlatformConfig",
    "Site",
    "compute_to_data",
    "data_to_compute",
]
