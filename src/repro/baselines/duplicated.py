"""The duplicated-computing baseline vs the transformed architecture (E3).

Baseline: a compute-heavy analytic (a fixed-point logistic training step)
runs *inside* the smart contract, so every consensus node re-executes it —
N nodes burn N times one node's gas.  Transformed: the on-chain contract is
only the policy/coordination point; one site runs the analytic off chain
and posts the result hash.  Both paths produce the same kind of model
update; the reports make the waste factor directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.chain.blocks import make_genesis
from repro.chain.state import StateDB
from repro.chain.transactions import make_call, make_deploy
from repro.common.errors import ChainError
from repro.common.signatures import KeyPair
from repro.consensus.node import NodeConfig, make_network_nodes
from repro.consensus.poa import ProofOfAuthority
from repro.contracts.library import COMPUTE_CONTRACT_SOURCE
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network


@dataclass
class ComputeReport:
    """Cost of producing one model update under one architecture."""

    architecture: str
    node_count: int
    total_gas: float
    gas_per_node: Dict[str, float]
    offchain_flops: float
    sim_seconds: float
    energy_joules: float


def _fixed_point(values: List[List[float]], scale: int = 1000) -> List[List[int]]:
    """Encode a float matrix as scaled integers for the on-chain VM."""
    return [[int(round(value * scale)) for value in row] for row in values]


def run_onchain_training(
    features: List[List[float]],
    labels: List[int],
    node_count: int = 4,
    steps: int = 3,
    seed: int = 0,
) -> ComputeReport:
    """Execute the training analytic as an on-chain contract on N nodes."""
    kernel = Kernel(seed=seed)
    metrics = MetricsRegistry()
    network = Network(kernel, metrics)
    owner = KeyPair.generate("onchain-owner")
    state = StateDB()
    state.credit(owner.address, 10**9)
    genesis = make_genesis(state.state_root())
    names = [f"miner-{index}" for index in range(node_count)]
    keypairs = {name: KeyPair.generate(name) for name in names}
    engine = ProofOfAuthority(names, keypairs, block_interval_s=1.0)
    nodes = make_network_nodes(
        kernel,
        network,
        names,
        genesis,
        state,
        lambda: engine,
        metrics=metrics,
        # Keep the full-state finality window wider than the run so the
        # baseline's per-block gas accounting never loses a fork state.
        config=NodeConfig(max_txs_per_block=10, state_prune_window=64),
    )
    for node in nodes.values():
        node.start()
    entry = nodes[names[0]]
    deploy = make_deploy(
        owner, "onchain-trainer", COMPUTE_CONTRACT_SOURCE, nonce=0, gas_limit=10**9
    )
    entry.submit_tx(deploy)
    _run_until(kernel, nodes, deploy.tx_id)
    receipt = entry.receipt(deploy.tx_id)
    if not receipt or not receipt.success:
        raise ChainError(f"deploy failed: {receipt.error if receipt else 'timeout'}")
    contract_id = receipt.output
    fixed_features = _fixed_point(features)
    int_labels = [int(label) for label in labels]
    weights = [0] * len(features[0])
    start = kernel.now
    for step in range(steps):
        tx = make_call(
            owner,
            contract_id,
            "train_step",
            {
                "features": fixed_features,
                "labels": int_labels,
                "weights": weights,
                "lr_milli": 100,
            },
            nonce=step + 1,
            gas_limit=10**9,
        )
        entry.submit_tx(tx)
        _run_until(kernel, nodes, tx.tx_id)
        receipt = entry.receipt(tx.tx_id)
        if not receipt or not receipt.success:
            raise ChainError(
                f"train_step failed: {receipt.error if receipt else 'timeout'}"
            )
        weights = receipt.output
    return ComputeReport(
        architecture="on-chain (duplicated)",
        node_count=node_count,
        total_gas=metrics.counter_total("gas"),
        gas_per_node=metrics.scopes("gas"),
        offchain_flops=0.0,
        sim_seconds=kernel.now - start,
        energy_joules=metrics.total_energy_joules(),
    )


def run_transformed_training(
    records: List[Dict[str, Any]],
    node_count: int = 4,
    steps: int = 3,
    seed: int = 0,
    outcome: str = "stroke",
) -> ComputeReport:
    """Execute the same kind of training through the transformed platform.

    One site trains off chain; the chain carries only the task request and
    the result hash (light-weight policy contracts).
    """
    from repro.common.signatures import KeyPair as KP
    from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
    from repro.core.queryservice import GlobalQueryService
    from repro.query.vector import QueryVector

    platform = MedicalBlockchainNetwork(
        PlatformConfig(
            site_count=node_count, consensus="poa", include_fda=False, seed=seed
        )
    )
    site = platform.site_names[0]
    platform.register_dataset(site, "train-data", records)
    researcher = KP.generate("transformed-researcher")
    platform.grant_access(site, "train-data", researcher.address, "research")
    service = GlobalQueryService(platform, researcher)
    baseline_gas = platform.metrics.counter_total("gas")
    baseline_flops = platform.metrics.counter_total("flops")
    start = platform.kernel.now
    vector = QueryVector(
        intent="train", outcome=outcome, model="logistic", rounds=steps
    )
    service.execute(vector)
    return ComputeReport(
        architecture="transformed (off-chain)",
        node_count=node_count,
        total_gas=platform.metrics.counter_total("gas") - baseline_gas,
        gas_per_node=platform.metrics.scopes("gas"),
        offchain_flops=platform.metrics.counter_total("flops") - baseline_flops,
        sim_seconds=platform.kernel.now - start,
        energy_joules=platform.metrics.total_energy_joules(),
    )


def _run_until(kernel: Kernel, nodes: Dict[str, Any], tx_id: str, timeout: float = 600.0) -> None:
    deadline = kernel.now + timeout

    def committed() -> bool:
        return all(node.receipt(tx_id) is not None for node in nodes.values())

    kernel.run(until=deadline, stop_when=committed)
