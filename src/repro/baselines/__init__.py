"""Baselines the paper argues against: duplicated on-chain compute and
centralized copy-all-data analytics (the latter lives in
:mod:`repro.core.strategies` and :mod:`repro.learning.baseline`)."""

from repro.baselines.duplicated import (
    ComputeReport,
    run_onchain_training,
    run_transformed_training,
)

__all__ = ["ComputeReport", "run_onchain_training", "run_transformed_training"]
