"""Finding reporters: human text, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.findings import AnalysisResult, Finding, count_by_severity
from repro.analysis.registry import all_rules

#: Severity -> SARIF result level.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def render_text(result: AnalysisResult) -> str:
    lines: List[str] = [f.render() for f in result.sorted_findings()]
    counts = count_by_severity(result.findings)
    summary = (
        f"{result.files_analyzed} file(s), "
        f"{result.contracts_analyzed} embedded contract(s) analyzed; "
        + (
            ", ".join(
                f"{counts[key]} {key}"
                for key in ("error", "warning", "info")
                if key in counts
            )
            or "no findings"
        )
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


def _sarif_location(
    file: str, line: int, col: int = 0, message: str = ""
) -> Dict[str, Any]:
    location: Dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": file.replace("\\", "/")},
            "region": {"startLine": max(line, 1), "startColumn": col + 1},
        }
    }
    if message:
        location["message"] = {"text": message}
    return location


def _sarif_result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.code,
        "level": _SARIF_LEVELS[finding.severity.name.lower()],
        "message": {"text": finding.message},
        "locations": [
            _sarif_location(finding.file, finding.line, finding.col)
        ],
    }
    if finding.trace:
        # The taint trace becomes a SARIF code flow so code-scanning UIs
        # render the source -> path -> sink hops inline.
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": _sarif_location(
                                    step.get("file", finding.file),
                                    step.get("line", 0),
                                    message=f"[{step['kind']}] "
                                    f"{step['detail']}",
                                )
                            }
                            for step in finding.trace
                        ]
                    }
                ]
            }
        ]
    return result


def sarif_as_dict(result: AnalysisResult) -> Dict[str, Any]:
    """The full SARIF 2.1.0 log for one analysis run."""
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            {
                                "id": rule.code,
                                "name": rule.name,
                                "shortDescription": {"text": rule.summary},
                                "defaultConfiguration": {
                                    "level": _SARIF_LEVELS[
                                        rule.default_severity.name.lower()
                                    ]
                                },
                            }
                            for rule in all_rules()
                        ],
                    }
                },
                "results": [
                    _sarif_result(finding)
                    for finding in result.sorted_findings()
                ],
            }
        ],
    }


def render_sarif(result: AnalysisResult) -> str:
    return json.dumps(sarif_as_dict(result), indent=2, sort_keys=True)


def render_rules() -> str:
    """The rule catalog (``--list-rules``)."""
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.code}  {rule.name:<26} [{rule.family}] "
            f"{rule.default_severity.name.lower():<7} {rule.summary}"
        )
    return "\n".join(lines)


def rules_as_dict() -> List[Dict[str, str]]:
    return [
        {
            "code": rule.code,
            "name": rule.name,
            "family": rule.family,
            "severity": rule.default_severity.name.lower(),
            "summary": rule.summary,
        }
        for rule in all_rules()
    ]
