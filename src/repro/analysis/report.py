"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.findings import AnalysisResult, count_by_severity
from repro.analysis.registry import all_rules


def render_text(result: AnalysisResult) -> str:
    lines: List[str] = [f.render() for f in result.sorted_findings()]
    counts = count_by_severity(result.findings)
    summary = (
        f"{result.files_analyzed} file(s), "
        f"{result.contracts_analyzed} embedded contract(s) analyzed; "
        + (
            ", ".join(
                f"{counts[key]} {key}"
                for key in ("error", "warning", "info")
                if key in counts
            )
            or "no findings"
        )
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


def render_rules() -> str:
    """The rule catalog (``--list-rules``)."""
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.code}  {rule.name:<26} [{rule.family}] "
            f"{rule.default_severity.name.lower():<7} {rule.summary}"
        )
    return "\n".join(lines)


def rules_as_dict() -> List[Dict[str, str]]:
    return [
        {
            "code": rule.code,
            "name": rule.name,
            "family": rule.family,
            "severity": rule.default_severity.name.lower(),
            "summary": rule.summary,
        }
        for rule in all_rules()
    ]
