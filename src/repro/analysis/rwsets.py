"""Static storage read/write-set derivation for MedScript contracts.

The optimistic parallel block scheduler (``repro.chain.scheduler``) needs to
know, *before executing anything*, which storage slots a contract call may
touch.  This module derives that from the deployed source with the same AST
machinery the MED-rule checkers use (one parse, :func:`collect_module` from
the analysis engine — never a second parser), producing per-method
:class:`MethodRWSet` summaries whose slots are :class:`SlotTemplate`\\ s:
sequences of literal fragments and method-parameter placeholders that the
scheduler specializes with a transaction's actual arguments.

Soundness stance: for a method that is *not* flagged ``unknown``, the
resolved templates are an **over-approximation** of every storage slot any
execution of that method can touch — branches contribute the union of their
paths, and anything the deriver cannot prove (computed keys or callees,
rebound parameters, aliased helpers, keyword storage arguments, recursion
past the depth cap, numeric ``+`` on keys) poisons the whole method to
``unknown``, which the scheduler serializes.  The scheduler additionally
validates observed reads at commit time and re-executes on any surprise, so
an unsound template could cost a full-block serial retry, never a wrong
state root; the over-approximation guarantee is what makes that retry a
bug signal rather than a steady-state cost.

Resolution rules (anything outside them poisons the method to ``unknown``):

- string/int/bool constants, and module-level literal constants;
- method parameters that are never rebound (substituted at resolve time;
  literal defaults apply when the caller omits the argument);
- locals assigned exactly once, at the top level of the method body, from a
  resolvable expression;
- ``+`` concatenation, f-strings, and ``str(...)`` over resolvable parts;
- calls to other contract functions are followed with arguments mapped into
  the callee's parameters (bounded depth, cycles are unknown).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.analysis.engine import PURE_BUILTIN_NAMES, collect_module
from repro.contracts.runtime import HOST_FUNCTION_NAMES

#: Host functions that read a storage slot named by their first argument.
READING_HOST_CALLS = frozenset({"storage_get", "storage_has"})
#: Host functions that write the slot named by their first argument.
#: ``storage_delete`` also *reads* (tombstoning checks presence first), so
#: the scheduler treats deletes as read+write.
WRITING_HOST_CALLS = frozenset({"storage_set", "storage_delete"})
#: Host function performing a prefix scan over storage.
PREFIX_HOST_CALL = "storage_keys"

#: Follow contract-internal calls at most this deep before giving up.
#: Overridable per derivation via ``read_write_sets(..., max_depth=)``;
#: chains past the cap poison the method to ``unknown`` (never mis-resolve).
MAX_CALL_DEPTH = 8

_STORAGE_HOST_CALLS = READING_HOST_CALLS | WRITING_HOST_CALLS | {PREFIX_HOST_CALL}
#: Calls that provably cannot touch storage: pure builtins plus the
#: non-storage host functions.  Any other callee (helper aliases, computed
#: callables, unknown names) poisons the method to ``unknown``.
_SAFE_CALLS = (
    frozenset(PURE_BUILTIN_NAMES)
    | frozenset(HOST_FUNCTION_NAMES) - _STORAGE_HOST_CALLS
)

_LIT = "lit"
_PARAM = "param"


@dataclass(frozen=True)
class SlotTemplate:
    """A storage-slot name as literal fragments and parameter placeholders.

    ``parts`` is a tuple of ``("lit", text)`` and ``("param", name)`` pairs;
    joining the fragments (with each parameter replaced by ``str(value)``,
    mirroring the runtime's ``str(key)`` coercion) yields the slot name.
    """

    parts: Tuple[Tuple[str, str], ...]

    @property
    def is_literal(self) -> bool:
        return all(kind == _LIT for kind, _ in self.parts)

    @property
    def params(self) -> FrozenSet[str]:
        return frozenset(text for kind, text in self.parts if kind == _PARAM)

    def resolve(self, args: Mapping[str, Any]) -> Optional[str]:
        """Concrete slot name under ``args``, or ``None`` if a placeholder
        has no binding (or a non-scalar one)."""
        out: List[str] = []
        for kind, text in self.parts:
            if kind == _LIT:
                out.append(text)
                continue
            if text not in args:
                return None
            value = args[text]
            if not isinstance(value, (str, int, bool)):
                return None  # containers make unstable slot names
            out.append(str(value))
        return "".join(out)

    def render(self) -> str:
        """Human-readable form, e.g. ``"balance:{user}"``."""
        return "".join(
            text if kind == _LIT else "{" + text + "}" for kind, text in self.parts
        )


@dataclass(frozen=True)
class MethodRWSet:
    """Per-method storage footprint summary."""

    method: str
    reads: FrozenSet[SlotTemplate] = frozenset()
    writes: FrozenSet[SlotTemplate] = frozenset()
    read_prefixes: FrozenSet[SlotTemplate] = frozenset()
    unknown: bool = False
    #: literal parameter defaults, used by :meth:`resolve` for omitted args
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def resolve(
        self, args: Mapping[str, Any]
    ) -> Optional["ResolvedAccess"]:
        """Specialize every template with a call's actual arguments.

        Returns ``None`` when the method is unknown or any template fails to
        resolve — the caller must fall back to serial execution.
        """
        if self.unknown:
            return None
        bound = dict(self.defaults)
        bound.update(args)
        reads: Set[str] = set()
        writes: Set[str] = set()
        prefixes: Set[str] = set()
        for template, sink in (
            *((t, reads) for t in self.reads),
            *((t, writes) for t in self.writes),
            *((t, prefixes) for t in self.read_prefixes),
        ):
            slot = template.resolve(bound)
            if slot is None:
                return None
            sink.add(slot)
        return ResolvedAccess(
            reads=frozenset(reads),
            writes=frozenset(writes),
            read_prefixes=frozenset(prefixes),
        )


@dataclass(frozen=True)
class ResolvedAccess:
    """Concrete slot names touched by one specialized method call."""

    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    read_prefixes: FrozenSet[str] = frozenset()


class _Unresolvable(Exception):
    """Internal signal: a storage key cannot be expressed as a template."""


def _literal_value(node: ast.expr) -> Optional[Any]:
    try:
        value = ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None
    return value if isinstance(value, (str, int, bool)) else None


def _rebound_names(func: ast.FunctionDef) -> Set[str]:
    """Names (re)bound anywhere inside the function body."""
    bound: Set[str] = set()
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.For, ast.NamedExpr)):
            targets = [node.target]
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
    return bound


class _Deriver:
    """One pass over a parsed contract module."""

    def __init__(
        self,
        functions: Dict[str, ast.FunctionDef],
        constants: Dict[str, ast.expr],
        max_depth: int = MAX_CALL_DEPTH,
    ):
        self.functions = functions
        self.max_depth = max_depth
        self.constants = {
            name: value
            for name, node in constants.items()
            if (value := _literal_value(node)) is not None
        }

    # -- expression resolution -------------------------------------------
    def _resolve(self, node: ast.expr, env: Mapping[str, Any]) -> "_Tmpl":
        """Resolve an expression to a template; raise :class:`_Unresolvable`.

        Tracks whether the expression is *definitely a string* so that ``+``
        is only folded into concatenation when at least one side is: then
        either the runtime value is a string too (concat matches the
        template) or the runtime raises before touching storage.  Without
        the guard, ``storage_get(2 + 3)`` would template as ``"23"`` while
        the runtime computes slot ``"5"`` — an under-approximation the
        scheduler must never see.
        """
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (str, int, bool)
        ):
            return _Tmpl(
                ((_LIT, str(node.value)),), isinstance(node.value, str)
            )
        if isinstance(node, ast.Name):
            if node.id in env:
                value = env[node.id]
                if isinstance(value, _Param):
                    return _Tmpl(((_PARAM, value.name),), False)
                if isinstance(value, _Tmpl):  # pre-resolved local
                    return value
                return _Tmpl(((_LIT, str(value)),), isinstance(value, str))
            raise _Unresolvable(node.id)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left = self._resolve(node.left, env)
            right = self._resolve(node.right, env)
            if not (left.defstr or right.defstr):
                raise _Unresolvable("numeric-addition key")
            return _Tmpl(left.parts + right.parts, True)
        if isinstance(node, ast.JoinedStr):
            parts: Tuple[Tuple[str, str], ...] = ()
            for value in node.values:
                if isinstance(value, ast.Constant):
                    parts += ((_LIT, str(value.value)),)
                elif isinstance(value, ast.FormattedValue):
                    if value.format_spec is not None or value.conversion not in (
                        -1,
                        115,  # !s is a plain str() coercion
                    ):
                        raise _Unresolvable("format spec")
                    parts += self._resolve(value.value, env).parts
                else:  # pragma: no cover - ast guarantees the two above
                    raise _Unresolvable(type(value).__name__)
            return _Tmpl(parts, True)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "str"
            and len(node.args) == 1
            and not node.keywords
        ):
            return _Tmpl(self._resolve(node.args[0], env).parts, True)
        raise _Unresolvable(type(node).__name__)

    # -- function analysis ------------------------------------------------
    def analyze(
        self,
        func: ast.FunctionDef,
        env: Mapping[str, Any],
        stack: Tuple[str, ...],
        acc: "_Acc",
    ) -> None:
        if func.name in stack or len(stack) >= self.max_depth:
            acc.unknown = True
            return
        env = dict(env)
        rebound = _rebound_names(func)
        for name in rebound:
            env.pop(name, None)
        # Single top-level assignments from resolvable expressions extend
        # the environment (straight-line constant propagation).
        assign_counts: Dict[str, int] = {}
        for name in self._assigned_names(func):
            assign_counts[name] = assign_counts.get(name, 0) + 1
        for stmt in func.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and assign_counts.get(stmt.targets[0].id) == 1
            ):
                try:
                    env[stmt.targets[0].id] = self._resolve(stmt.value, env)
                except _Unresolvable:
                    pass
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Name):
                acc.unknown = True  # computed callee: cannot see inside it
                continue
            name = node.func.id
            if name in READING_HOST_CALLS | WRITING_HOST_CALLS:
                if node.keywords or not node.args:
                    acc.unknown = True
                    continue
                try:
                    parts = self._resolve(node.args[0], env).parts
                except _Unresolvable:
                    acc.unknown = True
                    continue
                template = SlotTemplate(parts=parts)
                if name in WRITING_HOST_CALLS:
                    acc.writes.add(template)
                    if name == "storage_delete":
                        acc.reads.add(template)
                else:
                    acc.reads.add(template)
            elif name == PREFIX_HOST_CALL:
                if node.keywords:
                    acc.unknown = True
                    continue
                if not node.args:
                    acc.read_prefixes.add(SlotTemplate(parts=((_LIT, ""),)))
                    continue
                try:
                    parts = self._resolve(node.args[0], env).parts
                except _Unresolvable:
                    acc.unknown = True
                    continue
                acc.read_prefixes.add(SlotTemplate(parts=parts))
            elif name in self.functions:
                self._follow_call(node, env, stack + (func.name,), acc)
            elif name not in _SAFE_CALLS:
                # A name we cannot prove storage-free (an aliased helper, a
                # shadowed builtin): assume the worst.
                acc.unknown = True

    @staticmethod
    def _assigned_names(func: ast.FunctionDef) -> List[str]:
        names: List[str] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.append(sub.id)
            elif isinstance(node, (ast.AugAssign, ast.For, ast.NamedExpr)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        names.append(sub.id)
        return names

    def _follow_call(
        self,
        node: ast.Call,
        env: Mapping[str, Any],
        stack: Tuple[str, ...],
        acc: "_Acc",
    ) -> None:
        callee = self.functions[node.func.id]
        params = [arg.arg for arg in callee.args.args]
        callee_env: Dict[str, Any] = dict(self.constants)
        defaults = callee.args.defaults
        for param, default in zip(params[len(params) - len(defaults):], defaults):
            value = _literal_value(default)
            if value is not None:
                callee_env[param] = _Tmpl(
                    ((_LIT, str(value)),), isinstance(value, str)
                )
        if len(node.args) > len(params):
            acc.unknown = True
            return
        for param, arg in zip(params, node.args):
            try:
                callee_env[param] = self._resolve(arg, env)
            except _Unresolvable:
                callee_env.pop(param, None)  # poisoned: keys using it fail
        for keyword in node.keywords:
            if keyword.arg is None or keyword.arg not in params:
                acc.unknown = True
                return
            try:
                callee_env[keyword.arg] = self._resolve(keyword.value, env)
            except _Unresolvable:
                callee_env.pop(keyword.arg, None)
        self.analyze(callee, callee_env, stack, acc)


@dataclass
class _Acc:
    reads: Set[SlotTemplate] = field(default_factory=set)
    writes: Set[SlotTemplate] = field(default_factory=set)
    read_prefixes: Set[SlotTemplate] = field(default_factory=set)
    unknown: bool = False


class _Param:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


@dataclass(frozen=True)
class _Tmpl:
    """A resolved expression: template parts plus a definitely-str flag."""

    parts: Tuple[Tuple[str, str], ...]
    defstr: bool


def read_write_sets(
    source: str, *, max_depth: int = MAX_CALL_DEPTH
) -> Dict[str, MethodRWSet]:
    """Derive per-method storage read/write sets for a contract module.

    Returns one :class:`MethodRWSet` per public method (underscore-prefixed
    functions are reachable only through public ones and are folded into
    their callers).  A module that does not parse yields an empty dict —
    such source cannot deploy anyway, and callers treat absent methods as
    unknown.  ``max_depth`` bounds how deep contract-internal call chains
    are followed; a chain past the cap marks the method ``unknown`` (the
    scheduler then serializes it) rather than ever mis-resolving.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return {}
    functions, constant_nodes = collect_module(tree)
    deriver = _Deriver(functions, constant_nodes, max_depth=max_depth)
    sets: Dict[str, MethodRWSet] = {}
    for name, func in sorted(functions.items()):
        if name.startswith("_"):
            continue
        params = [arg.arg for arg in func.args.args]
        env: Dict[str, Any] = dict(deriver.constants)
        for param in params:
            env[param] = _Param(param)
        acc = _Acc()
        deriver.analyze(func, env, (), acc)
        defaults: Dict[str, Any] = {}
        for param, default in zip(
            params[len(params) - len(func.args.defaults):], func.args.defaults
        ):
            value = _literal_value(default)
            if value is not None:
                defaults[param] = value
        sets[name] = MethodRWSet(
            method=name,
            reads=frozenset(acc.reads),
            writes=frozenset(acc.writes),
            read_prefixes=frozenset(acc.read_prefixes),
            unknown=acc.unknown,
            defaults=defaults,
        )
    return sets
