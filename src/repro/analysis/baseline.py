"""Baseline suppression for the static-analysis CLI.

A baseline lets a new rule land warn-only: record today's findings once
(``--write-baseline findings.baseline.json``), then pass the file on later
runs (``--baseline findings.baseline.json``) and only *new* findings count
toward the exit status.

Fingerprints are deliberately **line-independent** — ``rule code +
normalized file path + qualified symbol`` — so unrelated edits that shift a
finding up or down the file do not un-suppress it.  The trade-off is that
two identical findings in the same function collapse to one fingerprint;
fixing one while introducing another at the same (code, file, symbol)
coordinate goes unnoticed until the baseline is refreshed.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


def _normalize_path(path: str) -> str:
    return os.path.normpath(path).replace(os.sep, "/").lstrip("./")


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding: rule + file + symbol (not line)."""
    key = f"{finding.code}|{_normalize_path(finding.file)}|{finding.symbol}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def baseline_as_dict(findings: Iterable[Finding]) -> Dict[str, Any]:
    entries: Dict[str, Dict[str, str]] = {}
    for finding in findings:
        entries[fingerprint(finding)] = {
            "code": finding.code,
            "file": _normalize_path(finding.file),
            "symbol": finding.symbol,
        }
    return {"version": BASELINE_VERSION, "fingerprints": entries}


def write_baseline(findings: Iterable[Finding], path: str) -> int:
    """Write a baseline file; returns the number of fingerprints stored."""
    data = baseline_as_dict(findings)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(data["fingerprints"])


def load_baseline(path: str) -> Set[str]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {BASELINE_VERSION})"
        )
    return set(data.get("fingerprints", {}))


def apply_baseline(
    findings: Iterable[Finding], fingerprints: Set[str]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed-count) against a baseline."""
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        if fingerprint(finding) in fingerprints:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
