"""Pluggable checker registry.

Checkers self-register at import time via the :func:`register` decorator and
are grouped into two families:

- ``contract`` — verification of MedScript contract source (run by the
  ``ContractRegistry`` deploy gate and by the CLI over embedded
  ``*_SOURCE`` literals);
- ``repo``     — convention lints over the ``repro`` codebase itself.

Third-party extensions (or tests) can register additional checkers; the
engine iterates whatever the registry holds, sorted by rule code so output
order is stable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Type

from repro.analysis.findings import Finding, RuleInfo

CONTRACT_FAMILY = "contract"
REPO_FAMILY = "repo"
DATAFLOW_FAMILY = "dataflow"


@dataclass
class ContractContext:
    """Everything a contract checker may inspect for one contract module."""

    source: str
    tree: ast.Module
    functions: Dict[str, ast.FunctionDef]
    constants: Dict[str, ast.expr]
    host_functions: FrozenSet[str]
    pure_builtins: FrozenSet[str]
    file: str = "<contract>"
    line_offset: int = 0  # added to every reported line (embedded sources)
    max_gas: Optional[int] = None  # gas ceiling for MED008; None disables

    def map_line(self, line: int) -> int:
        return line + self.line_offset


@dataclass
class ModuleContext:
    """Everything a repo checker may inspect for one python module."""

    source: str
    tree: ast.Module
    file: str  # real path on disk
    package_path: str  # path relative to the package root, "/" separated
    lines: List[str] = field(default_factory=list)

    def in_package(self, *prefixes: str) -> bool:
        """True when the module lives under any ``repro/<prefix>`` subtree."""
        return any(
            self.package_path.startswith(f"repro/{prefix.strip('/')}/")
            or self.package_path == f"repro/{prefix.strip('/')}.py"
            for prefix in prefixes
        )


class ContractChecker:
    """Base class for contract-family checkers."""

    rule: RuleInfo

    def check(self, ctx: ContractContext) -> Iterable[Finding]:
        raise NotImplementedError


class RepoChecker:
    """Base class for repo-family checkers."""

    rule: RuleInfo

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError


_CONTRACT_CHECKERS: Dict[str, Type[ContractChecker]] = {}
_REPO_CHECKERS: Dict[str, Type[RepoChecker]] = {}
# Rules implemented outside the one-class-per-code checker protocol (the
# dataflow taint pass emits five codes from one engine) still appear in the
# catalog via this table.
_EXTRA_RULES: Dict[str, RuleInfo] = {}


def register_rule_info(rule: RuleInfo) -> RuleInfo:
    """Register a rule that is not backed by a checker class (dataflow)."""
    existing = _EXTRA_RULES.get(rule.code)
    if existing is not None and existing != rule:
        raise ValueError(f"duplicate rule code {rule.code}")
    _EXTRA_RULES[rule.code] = rule
    return rule


def register(checker_cls):
    """Class decorator: add a checker to the registry, keyed by rule code."""
    rule = checker_cls.rule
    if rule.family == CONTRACT_FAMILY:
        table = _CONTRACT_CHECKERS
    elif rule.family == REPO_FAMILY:
        table = _REPO_CHECKERS
    else:
        raise ValueError(f"unknown checker family {rule.family!r}")
    if rule.code in table and table[rule.code] is not checker_cls:
        raise ValueError(f"duplicate rule code {rule.code}")
    table[rule.code] = checker_cls
    return checker_cls


def contract_checkers() -> List[ContractChecker]:
    return [_CONTRACT_CHECKERS[code]() for code in sorted(_CONTRACT_CHECKERS)]


def repo_checkers() -> List[RepoChecker]:
    return [_REPO_CHECKERS[code]() for code in sorted(_REPO_CHECKERS)]


def all_rules() -> List[RuleInfo]:
    """The full rule catalog, sorted by code."""
    rules = [cls.rule for cls in _CONTRACT_CHECKERS.values()]
    rules += [cls.rule for cls in _REPO_CHECKERS.values()]
    rules += list(_EXTRA_RULES.values())
    return sorted(rules, key=lambda rule: rule.code)
