"""Flow-sensitive taint walker for the PHI escape analysis.

One walker serves both domains:

- **module mode** — a ``repro`` python module (or example).  Sources and
  sinks come from the catalog's call tables; functions whose name is passed
  to a ``registry.register("method", handler)`` call additionally get their
  return value treated as an RPC-response sink.
- **contract mode** — a MedScript contract module.  PHI enters through
  cataloged parameter names; ``storage_set`` / ``emit`` / ``require``
  messages and public-method return values (receipts) are the sinks.

Statements are interpreted in order (flow-sensitive); branches apply the
union of their effects to one environment (path-insensitive, matching the
branches-union stance of ``rwsets``); loop bodies run twice so first-order
feedback (``acc = acc + row``) converges.  Names bound to one another share
a :class:`~repro.analysis.dataflow.lattice.Cell`, so mutating a container
through any alias taints every name that can reach it (MED204).

Precision stance (the zero-false-positive dogfood gate): a call the
analysis cannot see inside returns UNKNOWN when any argument carries
provenance — never CLEAN (sound), but UNKNOWN is not reported at sinks
(precise).  Only flows proved end-to-end become findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dataflow import catalog
from repro.analysis.dataflow.lattice import (
    CLEAN,
    Cell,
    Level,
    STEP_CALL,
    STEP_CONTAINER,
    STEP_FORMAT,
    STEP_SANITIZER_BYPASS,
    STEP_SINK,
    STEP_SOURCE,
    Taint,
    TaintStep,
    join_all,
)
from repro.analysis.dataflow.summaries import (
    DEFAULT_MAX_CALL_DEPTH,
    FunctionSummary,
    ParamSinkFlow,
    UNKNOWN_SUMMARY,
)

#: Accessor methods that read *out of* a tainted container and therefore
#: carry its taint (``record.get("note")``, ``record.items()``).
_TAINT_ACCESSORS = frozenset(
    {"get", "copy", "items", "values", "keys", "pop", "popitem"}
)


@dataclass(frozen=True)
class Flow:
    """One complete source→sink flow, before rule-code assignment."""

    sink_kind: str
    steps: Tuple[TaintStep, ...]  # source first, sink last
    line: int
    col: int
    symbol: str  # enclosing function


class TaintEngine:
    """Taint analysis over one parsed module (python or MedScript)."""

    def __init__(
        self,
        tree: ast.Module,
        *,
        contract_mode: bool = False,
        max_depth: int = DEFAULT_MAX_CALL_DEPTH,
    ):
        self.tree = tree
        self.contract_mode = contract_mode
        self.max_depth = max_depth
        # Top-level functions are the interprocedural summary universe —
        # bare-name calls resolve here; everything else is opaque.
        self.functions: Dict[str, ast.FunctionDef] = {
            node.name: node
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
        }
        self._summaries: Dict[str, FunctionSummary] = {}
        self._in_progress: Set[str] = set()
        self.rpc_handlers: Dict[str, str] = (
            {} if contract_mode else self._collect_rpc_handlers(tree)
        )
        self.flows: List[Flow] = []

    # -- public entrypoints ------------------------------------------------
    def run(self) -> List[Flow]:
        """Analyze every function definition in the module; return flows."""
        for func in self._all_functions():
            walker = _FlowWalker(self, func, summary_mode=False)
            walker.analyze()
        return self._dedup(self.flows)

    def summary_for(self, name: str) -> FunctionSummary:
        """Memoized summary of a top-level function (cycles -> unknown)."""
        if name in self._summaries:
            return self._summaries[name]
        func = self.functions.get(name)
        if func is None or name in self._in_progress:
            return UNKNOWN_SUMMARY
        if len(self._in_progress) >= self.max_depth:
            return UNKNOWN_SUMMARY
        self._in_progress.add(name)
        try:
            walker = _FlowWalker(self, func, summary_mode=True)
            summary = walker.summarize()
        finally:
            self._in_progress.discard(name)
        self._summaries[name] = summary
        return summary

    # -- helpers -----------------------------------------------------------
    def _all_functions(self) -> List[ast.FunctionDef]:
        return [
            node
            for node in ast.walk(self.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    @staticmethod
    def _collect_rpc_handlers(tree: ast.Module) -> Dict[str, str]:
        """Function names registered as RPC methods -> wire method name."""
        handlers: Dict[str, str] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            if name != "register" or len(node.args) < 2:
                continue
            method, target = node.args[0], node.args[1]
            if (
                isinstance(method, ast.Constant)
                and isinstance(method.value, str)
                and isinstance(target, ast.Name)
            ):
                handlers[target.id] = method.value
        return handlers

    @staticmethod
    def _dedup(flows: List[Flow]) -> List[Flow]:
        seen: Set[Tuple[int, int, str, Tuple[Tuple[str, int], ...]]] = set()
        out: List[Flow] = []
        for flow in flows:
            key = (
                flow.line,
                flow.col,
                flow.sink_kind,
                tuple((s.kind, s.line) for s in flow.steps),
            )
            if key in seen:
                continue
            seen.add(key)
            out.append(flow)
        return out


class _FlowWalker:
    """Flow-sensitive interpretation of one function body."""

    def __init__(self, engine: TaintEngine, func: ast.FunctionDef, *, summary_mode: bool):
        self.engine = engine
        self.func = func
        self.summary_mode = summary_mode
        self.env: Dict[str, Cell] = {}
        self.return_taint: Taint = CLEAN
        self.param_sink_flows: List[ParamSinkFlow] = []
        all_args = list(func.args.posonlyargs) + list(func.args.args) + list(
            func.args.kwonlyargs
        )
        for arg in all_args:
            self.env[arg.arg] = Cell(self._param_taint(arg))
        if func.args.vararg is not None:
            self.env[func.args.vararg.arg] = Cell(self._param_taint(func.args.vararg))
        if func.args.kwarg is not None:
            self.env[func.args.kwarg.arg] = Cell(self._param_taint(func.args.kwarg))

    def _param_taint(self, arg: ast.arg) -> Taint:
        if self.engine.contract_mode and catalog.is_phi_param(arg.arg):
            step = TaintStep(
                kind=STEP_SOURCE,
                detail=f"parameter {arg.arg!r} carries raw patient data "
                "(PHI parameter catalog)",
                line=self.func.lineno,
            )
            return Taint(level=Level.TAINTED, steps=(step,))
        if self.summary_mode:
            return Taint(params=frozenset({arg.arg}))
        return CLEAN

    # -- entrypoints -------------------------------------------------------
    def analyze(self) -> None:
        self._block(self.func.body)
        # Contract public methods: the return value lands in the receipt,
        # which every node stores — a chain-boundary sink.
        # (handled per return statement; nothing further here)

    def summarize(self) -> FunctionSummary:
        self._block(self.func.body)
        return FunctionSummary(
            name=self.func.name,
            returns=self.return_taint,
            param_sink_flows=tuple(self.param_sink_flows),
        )

    # -- statement interpretation -----------------------------------------
    def _block(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                old = self._taint_of_name(stmt.target.id)
                self.env[stmt.target.id] = Cell(old.join(value))
            else:
                self._mutate_target(stmt.target, value, "augmented assignment")
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self._eval(stmt.iter)
            self._bind_target(stmt.target, iter_taint)
            # Two passes so first-order loop feedback converges.
            self._block(stmt.body)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, taint)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = Cell(CLEAN)
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Nested defs/classes are analyzed as their own functions by the
        # engine; imports, pass, assert, global/nonlocal have no data flow
        # the lattice tracks (assert conditions are boolean).
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)

    def _assign(self, targets: List[ast.expr], value: ast.expr) -> None:
        # Plain name-to-name assignment aliases the cell (container
        # aliasing); so does binding a name to a subscript/attribute of an
        # aliased name — ``rows = batch["rows"]`` must share batch's cell.
        for target in targets:
            if isinstance(target, ast.Name):
                cell = self._alias_cell(value)
                if cell is not None:
                    self.env[target.id] = cell
                else:
                    self.env[target.id] = Cell(self._eval(value))
            elif isinstance(target, (ast.Tuple, ast.List)):
                taint = self._eval(value)
                for elt in target.elts:
                    self._bind_target(elt, taint)
            else:
                self._mutate_target(target, self._eval(value), "item assignment")

    def _alias_cell(self, value: ast.expr) -> Optional[Cell]:
        """Cell shared with ``value`` when it is a name or a projection of
        one (``x``, ``x["k"]``, ``x.attr``); None when not aliasable."""
        node = value
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if isinstance(node, ast.Subscript) and self._is_safe_projection(
                node
            ):
                return None  # projected out of the PHI payload
            node = node.value
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        return None

    @staticmethod
    def _is_safe_projection(node: ast.Subscript) -> bool:
        """``rec["patient_id"]``-style constant-key projection to a
        pseudonymous identifier / digest / count (see catalog)."""
        return (
            isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and catalog.is_safe_projection(node.slice.value)
        )

    def _bind_target(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = Cell(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taint)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taint)
        else:
            self._mutate_target(target, taint, "item assignment")

    def _mutate_target(self, target: ast.expr, value: Taint, how: str) -> None:
        """A write through a subscript/attribute taints the base's cell."""
        cell = self._alias_cell(target)
        if cell is None:
            return
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        name = base.id if isinstance(base, ast.Name) else "<expr>"
        cell.absorb(
            value,
            TaintStep(
                kind=STEP_CONTAINER,
                detail=f"stored into container {name!r} via {how}",
                line=getattr(target, "lineno", 0),
            ),
        )

    def _return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            return
        taint = self._eval(stmt.value)
        if self.summary_mode:
            self.return_taint = self.return_taint.join(taint)
            return
        # Reporting mode: returns are sinks for RPC handlers (module mode)
        # and for public contract methods (receipts are replicated).
        if self.engine.contract_mode:
            if not self.func.name.startswith("_"):
                self._report(
                    taint,
                    sink_kind="contract return value (receipt, replicated "
                    "chain state)",
                    detail=f"return value of contract method "
                    f"{self.func.name}()",
                    node=stmt,
                )
        else:
            method = self.engine.rpc_handlers.get(self.func.name)
            if method is not None:
                self._report(
                    taint,
                    sink_kind="rpc response payload",
                    detail=f"response payload of RPC method {method!r}",
                    node=stmt,
                )

    # -- expression evaluation --------------------------------------------
    def _taint_of_name(self, name: str) -> Taint:
        cell = self.env.get(name)
        return cell.taint if cell is not None else CLEAN

    def _eval(self, node: ast.expr) -> Taint:
        if isinstance(node, ast.Constant):
            return CLEAN
        if isinstance(node, ast.Name):
            return self._taint_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            if self._is_safe_projection(node):
                return self._eval(node.slice)
            return self._eval(node.value).join(self._eval(node.slice))
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left).join(self._eval(node.right))
        if isinstance(node, ast.BoolOp):
            return join_all([self._eval(v) for v in node.values])
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            # Comparisons yield booleans — an aggregate, not the data.
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return CLEAN
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body).join(self._eval(node.orelse))
        if isinstance(node, ast.JoinedStr):
            parts = []
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    parts.append(self._eval(value.value))
            joined = join_all(parts)
            return joined.with_step(
                TaintStep(
                    kind=STEP_FORMAT,
                    detail="interpolated into an f-string",
                    line=node.lineno,
                )
            )
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return join_all([self._eval(elt) for elt in node.elts])
        if isinstance(node, ast.Dict):
            parts = [self._eval(v) for v in node.values]
            parts.extend(self._eval(k) for k in node.keys if k is not None)
            return join_all(parts)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comprehension(node.generators, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._comprehension(node.generators, [node.key, node.value])
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            return self._eval(node.value) if node.value is not None else CLEAN
        if isinstance(node, ast.NamedExpr):
            taint = self._eval(node.value)
            self._bind_target(node.target, taint)
            return taint
        if isinstance(node, ast.Lambda):
            return CLEAN
        return CLEAN

    def _comprehension(
        self, generators: List[ast.comprehension], exprs: List[ast.expr]
    ) -> Taint:
        saved: Dict[str, Optional[Cell]] = {}
        bound: List[str] = []
        for gen in generators:
            iter_taint = self._eval(gen.iter)
            for sub in ast.walk(gen.target):
                if isinstance(sub, ast.Name):
                    if sub.id not in saved:
                        saved[sub.id] = self.env.get(sub.id)
                        bound.append(sub.id)
                    self.env[sub.id] = Cell(iter_taint)
            for cond in gen.ifs:
                self._eval(cond)
        result = join_all([self._eval(expr) for expr in exprs])
        for name in bound:
            prior = saved[name]
            if prior is None:
                self.env.pop(name, None)
            else:
                self.env[name] = prior
        return result

    # -- calls -------------------------------------------------------------
    def _call(self, node: ast.Call) -> Taint:
        name = self._callee_name(node)
        arg_taints = [self._eval(arg) for arg in node.args]
        kw_taints = {
            kw.arg: self._eval(kw.value) for kw in node.keywords
        }  # kw.arg None (**kwargs) keys fine in a dict
        all_args = arg_taints + list(kw_taints.values())
        receiver = (
            self._eval(node.func.value)
            if isinstance(node.func, ast.Attribute)
            else CLEAN
        )

        if name is None:
            return self._opaque(all_args + [receiver])

        # 1. Sanitizers: digests, anchors, aggregation, encryption.
        if name in catalog.SANITIZER_CALL_NAMES or self._dotted_sanitizer(node):
            return CLEAN
        # 2. Declared sanitizers: trusted unless provably leaky (MED205).
        if catalog.is_declared_sanitizer(name):
            return self._declared_sanitizer(node, name, arg_taints, kw_taints)
        # 3. Sources.
        if name in catalog.SOURCE_CALL_NAMES:
            step = TaintStep(
                kind=STEP_SOURCE,
                detail=catalog.source_description(name),
                line=node.lineno,
            )
            return Taint(level=Level.TAINTED, steps=(step,))
        # 4. Sinks.
        sink = (
            catalog.contract_sink_kind(name)
            if self.engine.contract_mode
            else catalog.sink_kind(name)
        )
        if sink is not None:
            for taint in all_args:
                self._report(
                    taint,
                    sink_kind=sink,
                    detail=f"argument of {name}() [{sink}]",
                    node=node,
                )
            return CLEAN
        # 5. Local top-level functions: apply the interprocedural summary.
        if isinstance(node.func, ast.Name) and name in self.engine.functions:
            return self._apply_summary(node, name, arg_taints, kw_taints)
        # 6. Aggregating builtins reduce to boundary-safe scalars.
        if name in catalog.AGGREGATING_BUILTINS:
            return CLEAN
        # 7. String coercion: propagates, and is MED202's mechanism.
        if name in catalog.FORMAT_CALLS:
            return join_all(all_args).with_step(
                TaintStep(
                    kind=STEP_FORMAT,
                    detail=f"stringified via {name}()",
                    line=node.lineno,
                )
            )
        # 8. Shape-preserving helpers propagate unchanged.
        if name in catalog.PROPAGATING_CALLS:
            return join_all(all_args + [receiver])
        # 9. Container mutators fold argument taint into the receiver cell.
        if (
            isinstance(node.func, ast.Attribute)
            and name in catalog.MUTATOR_METHODS
        ):
            cell = self._alias_cell(node.func.value)
            if cell is not None:
                base = node.func.value
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                label = base.id if isinstance(base, ast.Name) else "<expr>"
                cell.absorb(
                    join_all(all_args),
                    TaintStep(
                        kind=STEP_CONTAINER,
                        detail=f"aliased into container {label!r} via "
                        f".{name}()",
                        line=node.lineno,
                    ),
                )
            return CLEAN
        # 10. Accessors on a tainted receiver read the data back out.
        if (
            isinstance(node.func, ast.Attribute)
            and name in _TAINT_ACCESSORS
            and receiver.level is not Level.CLEAN
        ):
            return receiver
        # 11. Opaque call: UNKNOWN when provenance flows in, else CLEAN.
        return self._opaque(all_args + [receiver])

    @staticmethod
    def _callee_name(node: ast.Call) -> Optional[str]:
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None

    def _dotted_sanitizer(self, node: ast.Call) -> bool:
        """``DatasetAnchor.build(...)``-style two-level dotted sanitizers."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)):
            return False
        dotted = f"{func.value.id}.{func.attr}"
        return dotted in catalog.SANITIZER_DOTTED_SUFFIXES

    def _opaque(self, taints: List[Taint]) -> Taint:
        joined = join_all(taints)
        if joined.level is Level.CLEAN and not joined.params:
            return CLEAN
        # Provenance enters a call we cannot see inside: poison to UNKNOWN
        # (never CLEAN), drop parameter deps (nothing is *proved* through).
        return Taint(level=Level.UNKNOWN, steps=joined.steps)

    def _declared_sanitizer(
        self,
        node: ast.Call,
        name: str,
        arg_taints: List[Taint],
        kw_taints: Dict[Optional[str], Taint],
    ) -> Taint:
        summary = (
            self.engine.summary_for(name)
            if name in self.engine.functions
            else None
        )
        if summary is None or summary.unknown or not summary.leaks_params_to_return:
            return CLEAN  # trusted (opaque or provably clean)
        bound = self._bind_args(name, node, arg_taints, kw_taints)
        passed = join_all(
            [bound.get(param, CLEAN) for param in summary.returns.params]
        )
        if summary.returns.tainted:
            passed = passed.join(
                Taint(level=Level.TAINTED, steps=summary.returns.steps)
            )
        if passed.level is Level.CLEAN and not passed.params:
            return CLEAN
        return passed.with_step(
            TaintStep(
                kind=STEP_SANITIZER_BYPASS,
                detail=f"declared sanitizer {name}() provably passes PHI "
                "through (re-identification risk)",
                line=node.lineno,
            )
        )

    def _bind_args(
        self,
        name: str,
        node: ast.Call,
        arg_taints: List[Taint],
        kw_taints: Dict[Optional[str], Taint],
    ) -> Dict[str, Taint]:
        func = self.engine.functions[name]
        params = [arg.arg for arg in func.args.args]
        bound: Dict[str, Taint] = {}
        for param, taint in zip(params, arg_taints):
            bound[param] = taint
        for kw, taint in kw_taints.items():
            if kw is not None:
                bound[kw] = taint
        return bound

    def _apply_summary(
        self,
        node: ast.Call,
        name: str,
        arg_taints: List[Taint],
        kw_taints: Dict[Optional[str], Taint],
    ) -> Taint:
        summary = self.engine.summary_for(name)
        if summary.unknown:
            return self._opaque(arg_taints + list(kw_taints.values()))
        bound = self._bind_args(name, node, arg_taints, kw_taints)
        call_step = TaintStep(
            kind=STEP_CALL,
            detail=f"through helper {name}()",
            line=node.lineno,
        )
        # Arguments that reach a sink inside the callee (MED203 when the
        # argument is tainted here).
        for flow in summary.param_sink_flows:
            arg = bound.get(flow.param, CLEAN)
            if arg.tainted:
                self._emit_flow(
                    sink_kind=flow.sink_kind,
                    steps=arg.steps + (call_step,) + flow.steps,
                    node=node,
                )
            elif self.summary_mode and arg.params:
                for param in arg.params:
                    self.param_sink_flows.append(
                        ParamSinkFlow(
                            param=param,
                            sink_kind=flow.sink_kind,
                            steps=arg.steps + (call_step,) + flow.steps,
                        )
                    )
        # Return taint: the callee's parameter deps substituted with the
        # actual arguments, plus any fresh source taint picked up inside.
        result = CLEAN
        for param in summary.returns.params:
            arg = bound.get(param, CLEAN)
            if arg.level is not Level.CLEAN or arg.params:
                result = result.join(arg.with_step(call_step))
        if summary.returns.level is not Level.CLEAN:
            result = result.join(
                Taint(
                    level=summary.returns.level,
                    steps=summary.returns.steps + (call_step,),
                )
            )
        return result

    # -- reporting ---------------------------------------------------------
    def _report(
        self, taint: Taint, *, sink_kind: str, detail: str, node: ast.AST
    ) -> None:
        sink_step = TaintStep(
            kind=STEP_SINK,
            detail=detail,
            line=getattr(node, "lineno", 0),
        )
        if taint.tainted:
            if self.summary_mode:
                # Complete source→sink flows inside one function are
                # reported when that function is analyzed directly.
                return
            self._emit_flow(
                sink_kind=sink_kind, steps=taint.steps + (sink_step,), node=node
            )
        elif self.summary_mode and taint.params:
            for param in taint.params:
                self.param_sink_flows.append(
                    ParamSinkFlow(
                        param=param,
                        sink_kind=sink_kind,
                        steps=taint.steps + (sink_step,),
                    )
                )

    def _emit_flow(
        self, *, sink_kind: str, steps: Tuple[TaintStep, ...], node: ast.AST
    ) -> None:
        self.engine.flows.append(
            Flow(
                sink_kind=sink_kind,
                steps=steps,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                symbol=self.func.name,
            )
        )
