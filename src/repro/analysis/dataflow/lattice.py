"""Taint lattice for the PHI escape analysis (MED2xx).

Three-point lattice ordered ``CLEAN < UNKNOWN < TAINTED``:

- ``CLEAN``   — provably free of raw patient data (literals, aggregates,
  digests, values from no cataloged source);
- ``UNKNOWN`` — a tainted value passed through a call the analysis cannot
  see inside; PHI *may* survive.  Mirrors the poison-to-unknown fallback of
  ``repro.analysis.rwsets``: we never claim CLEAN for flow we cannot prove,
  but we also never *report* UNKNOWN at a sink (precision over soundness —
  the zero-false-positive dogfood gate depends on it; see DESIGN.md §14);
- ``TAINTED`` — provably derived from a cataloged PHI source, carrying the
  :class:`TaintStep` trace that the finding (and the deploy-gate error)
  renders as ``source → path → sink``.

Values additionally carry a *parameter dependency set*: when a function is
analyzed for its interprocedural summary, its parameters start as
``CLEAN`` values depending on themselves, so the summary can report "the
return value is whatever taint argument ``record`` carries" without
guessing at call sites.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Tuple

# Step kinds, ordered by the priority used to pick the MED2xx rule code for
# a completed source→sink trace (see rules.code_for_trace).
STEP_SOURCE = "source"
STEP_SANITIZER_BYPASS = "sanitizer-bypass"  # MED205
STEP_CALL = "call"  # MED203 (interprocedural hop)
STEP_CONTAINER = "container"  # MED204 (aliasing / membership)
STEP_FORMAT = "format"  # MED202 (f-string / str coercion)
STEP_SINK = "sink"


class Level(enum.IntEnum):
    """Taint level; ``max`` is the lattice join."""

    CLEAN = 0
    UNKNOWN = 1
    TAINTED = 2


@dataclass(frozen=True)
class TaintStep:
    """One hop of a taint trace, anchored to a ``file:line`` span."""

    kind: str
    detail: str
    line: int = 0
    file: str = ""

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "detail": self.detail,
            "line": self.line,
        }
        if self.file:
            out["file"] = self.file
        return out

    def render(self) -> str:
        where = f":{self.line}" if self.line else ""
        return f"[{self.kind}{where}] {self.detail}"


@dataclass(frozen=True)
class Taint:
    """Abstract value: level, provenance trace, parameter dependencies."""

    level: Level = Level.CLEAN
    steps: Tuple[TaintStep, ...] = ()
    params: FrozenSet[str] = frozenset()

    @property
    def tainted(self) -> bool:
        return self.level is Level.TAINTED

    def with_step(self, step: TaintStep) -> "Taint":
        """Append a propagation step (no-op on values with no provenance)."""
        if self.level is Level.CLEAN and not self.params:
            return self
        return Taint(level=self.level, steps=self.steps + (step,), params=self.params)

    def join(self, other: "Taint") -> "Taint":
        """Lattice join: highest level wins; its trace is kept.

        On a level tie the shorter trace wins (the most direct explanation
        of the taint); parameter dependencies always union.
        """
        params = self.params | other.params
        if other.level > self.level:
            return Taint(level=other.level, steps=other.steps, params=params)
        if other.level == self.level and other.steps and (
            not self.steps or len(other.steps) < len(self.steps)
        ):
            return Taint(level=self.level, steps=other.steps, params=params)
        return Taint(level=self.level, steps=self.steps, params=params)


CLEAN = Taint()


def join_all(values: "list[Taint]") -> Taint:
    out = CLEAN
    for value in values:
        out = out.join(value)
    return out


@dataclass
class Cell:
    """A mutable abstract memory cell.

    Names bound to the same (aliasable) container share one cell, so a
    mutation through either name — ``rows.append(record)`` after
    ``rows = batch["rows"]`` — taints every alias (MED204).
    """

    taint: Taint = field(default_factory=lambda: CLEAN)

    def absorb(self, value: Taint, step: TaintStep) -> None:
        """Join a mutation's taint into the cell, recording the hop."""
        self.taint = self.taint.join(value.with_step(step))
