"""Interprocedural PHI taint analysis (the MED2xx "PHI escape" family).

Statically proves the paper's site-boundary contract: raw patient data
never crosses the chain / RPC / gossip / observability boundary — only
decomposed queries, aggregates, digests, and commitments do.  See
DESIGN.md §14 for the lattice, the source/sink/sanitizer catalog, and the
soundness caveats.
"""

from repro.analysis.dataflow.engine import Flow, TaintEngine
from repro.analysis.dataflow.lattice import CLEAN, Cell, Level, Taint, TaintStep
from repro.analysis.dataflow.rules import (
    DATAFLOW_RULES,
    check_contract,
    check_module,
    code_for_trace,
)
from repro.analysis.dataflow.summaries import (
    DEFAULT_MAX_CALL_DEPTH,
    FunctionSummary,
    ParamSinkFlow,
)

__all__ = [
    "CLEAN",
    "Cell",
    "DATAFLOW_RULES",
    "DEFAULT_MAX_CALL_DEPTH",
    "Flow",
    "FunctionSummary",
    "Level",
    "ParamSinkFlow",
    "Taint",
    "TaintEngine",
    "TaintStep",
    "check_contract",
    "check_module",
    "code_for_trace",
]
