"""Interprocedural function summaries for the PHI taint pass.

A :class:`FunctionSummary` compresses one module-level function into what a
caller needs to know, so call sites are resolved without re-walking callee
bodies at every call (the summary-based interprocedural strategy — same
shape as the per-method templates in ``repro.analysis.rwsets``):

- ``returns`` — the taint of the return value, expressed over the callee's
  own parameters (``params={'record'}`` means "returns whatever taint the
  ``record`` argument carries") plus any fresh source taint picked up
  inside;
- ``param_sink_flows`` — parameters that reach a site-boundary sink inside
  the callee, with the internal trace steps, so the *caller* can report a
  complete source → helper → sink flow (MED203);
- ``unknown`` — the analysis gave up (recursion, call-depth cap, ambiguous
  callee).  Mirrors the rwsets poison-to-unknown fallback: an unknown
  callee's result is UNKNOWN, never silently CLEAN.

Summaries are computed lazily and memoized per analysis run; recursion is
cut by an in-progress stack that poisons the cycle to ``unknown``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.dataflow.lattice import CLEAN, Taint, TaintStep

#: Follow helper calls at most this deep before poisoning to unknown.
#: Matches the rwsets default so the two derivers degrade identically.
DEFAULT_MAX_CALL_DEPTH = 8


@dataclass(frozen=True)
class ParamSinkFlow:
    """One parameter of a function that flows to a boundary sink inside."""

    param: str
    sink_kind: str  # e.g. "chain state", "obs trace attribute"
    steps: Tuple[TaintStep, ...]  # internal hops, ending with the sink step


@dataclass(frozen=True)
class FunctionSummary:
    """What a call site needs to know about one function."""

    name: str
    returns: Taint = CLEAN
    param_sink_flows: Tuple[ParamSinkFlow, ...] = ()
    unknown: bool = False

    @property
    def leaks_params_to_return(self) -> bool:
        """True when any parameter's taint survives into the return value —
        the test that turns a *declared* sanitizer into a false one
        (MED205)."""
        return bool(self.returns.params) or self.returns.tainted


UNKNOWN_SUMMARY = FunctionSummary(name="<unknown>", unknown=True)
