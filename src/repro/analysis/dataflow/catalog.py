"""Source / sink / sanitizer catalog for the PHI escape analysis.

The site-boundary contract of the paper: raw patient data stays inside each
hospital site; only decomposed queries, aggregates, digests, and
commitments cross the chain / RPC / gossip boundary.  This module is the
single place that says what counts as each side of that contract:

- **sources** produce raw PHI: record accessors on the hospital stores
  (``get_records`` / ``get_raw``), synthetic cohort generation, record-level
  legacy parsing, and decoded DA blob payloads (``retrieve_blob`` — the
  erasure-coded *shares* are custody objects and are served by design; the
  reassembled plaintext is the PHI-bearing value);
- **sinks** cross the site boundary: chain state writes (``set_slot``,
  contract-call construction — which covers ``BlobRegistry.register``
  arguments, since those ride a contract call), p2p gossip announcements,
  obs trace attributes and JSON-lines exporters, and — at the contract
  level — ``storage_set`` / ``emit`` / ``require`` messages / method
  returns (receipts are replicated chain data);
- **sanitizers** reduce PHI to boundary-safe values: digests and Merkle
  anchors (``repro.common.hashing``, ``DatasetAnchor.build``), masked
  federated aggregation (``learning.aggregation``), query composition
  aggregates, counting builtins, and envelope encryption for consented
  exchange.

Matching is name-based with two precision tiers: a dotted-path match via
the module's import map when the call target resolves, and an exact
attribute / bare-name match otherwise.  The names below are chosen so the
current tree dogfoods to **zero findings** (pinned by test); anything
generic enough to collide (``.set(``, ``.append(`` on non-aliased
receivers, ``Transport.request``) is deliberately excluded and documented
in DESIGN.md §14 as a soundness caveat.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

#: Calls (by attribute or bare name) whose result is raw patient data.
SOURCE_CALL_NAMES: FrozenSet[str] = frozenset(
    {
        "get_records",  # HospitalDataStore / DatasetHost record access
        "get_raw",  # legacy-format rows, same payload
        "generate_patient",  # CohortGenerator synthetic records
        "generate_cohort",
        "generate_multi_site",
        "shared_patients",  # cross-site linked patient groups
        "parse_record",  # legacy row -> canonical patient record
        "retrieve_blob",  # decoded (plaintext) DA payload
    }
)

#: Human description per source call, used in trace steps.
SOURCE_DESCRIPTIONS: Dict[str, str] = {
    "get_records": "patient records from a site data store",
    "get_raw": "raw legacy patient rows from a site data store",
    "generate_patient": "synthetic patient record (cohort generator)",
    "generate_cohort": "synthetic patient cohort (cohort generator)",
    "generate_multi_site": "multi-site patient cohorts (cohort generator)",
    "shared_patients": "cross-site linked patient records",
    "parse_record": "canonical patient record parsed from a legacy row",
    "retrieve_blob": "decoded off-chain blob payload (DA layer)",
}

#: Contract / site-boundary sink calls: name -> boundary kind.
SINK_CALL_KINDS: Dict[str, str] = {
    # chain state (replicated to every node)
    "set_slot": "chain state",
    "submit_signed_call": "chain contract-call payload",
    "submit_as": "chain contract-call payload",
    "make_call": "chain contract-call payload",
    "make_deploy": "chain deploy payload",
    "make_transfer": "chain transfer payload",
    # p2p gossip
    "announce": "p2p gossip payload",
    # observability exporters (traces leave the site as artifacts)
    "set_attr": "obs trace attribute",
    "set_attrs": "obs trace attribute",
    "trace_span": "obs trace attribute",
    "write_trace_jsonl": "obs JSON-lines trace export",
    "write_prometheus": "obs metrics export",
}

#: Contract-level host sinks (MedScript): name -> boundary kind.
CONTRACT_SINK_KINDS: Dict[str, str] = {
    "storage_set": "contract storage (replicated chain state)",
    "emit": "contract event log (replicated chain state)",
    "require": "revert message (replicated in receipts)",
}

#: Calls whose result is provably boundary-safe (digests, aggregates,
#: commitments, ciphertext).  Matched exactly by attr / bare name.
SANITIZER_CALL_NAMES: FrozenSet[str] = frozenset(
    {
        # repro.common.hashing
        "sha256",
        "sha256_hex",
        "hash_value",
        "hash_value_hex",
        "hash_leaves_batch",
        "hash_pair",
        "short_hash",
        # Merkle anchoring / integrity commitments
        "record_leaf",
        "record_leaves",
        "verify_dataset",
        "verify_record_proof",
        "verify_record_with_proof",
        "anchor",
        "merkle_root",
        # secure aggregation (learning) and query composition
        "mask_update",
        "aggregate_masked",
        "masked_round",
        "compose",
        "decompose",
        # consented-exchange envelope encryption
        "encrypt_for",
        # counting helpers
        "record_count",
    }
)

#: Dotted-path suffixes accepted as sanitizers when the import map resolves
#: the target (e.g. ``repro.offchain.anchoring.DatasetAnchor.build``).
SANITIZER_DOTTED_SUFFIXES: FrozenSet[str] = frozenset(
    {
        "DatasetAnchor.build",
    }
)

#: Builtins that reduce a container of records to a boundary-safe scalar.
AGGREGATING_BUILTINS: FrozenSet[str] = frozenset(
    {"len", "sum", "min", "max", "any", "all", "bool", "round", "abs"}
)

#: Builtins / helpers that re-shape a value without removing PHI.
PROPAGATING_CALLS: FrozenSet[str] = frozenset(
    {
        "list",
        "tuple",
        "set",
        "dict",
        "sorted",
        "reversed",
        "enumerate",
        "zip",
        "map",
        "filter",
        "next",
        "iter",
        "copy",
        "deepcopy",
        "to_jsonable",
        "canonical_bytes",
        "dumps",  # json.dumps: serialization is not sanitization
        "loads",
    }
)

#: String-coercion calls: propagate taint AND record a format step (a
#: stringified record is still a record — MED202's mechanism).
FORMAT_CALLS: FrozenSet[str] = frozenset({"str", "repr", "format"})

#: Mutating container methods that fold argument taint into the receiver's
#: alias cell (MED204's mechanism).
MUTATOR_METHODS: FrozenSet[str] = frozenset(
    {"append", "extend", "insert", "add", "update", "setdefault"}
)

#: Prefixes marking a *declared* sanitizer.  A call to one is trusted
#: (CLEAN) unless the callee is visible in the same module and its summary
#: proves PHI passes through — then the call is a sanitizer *bypass* and
#: the flow reports MED205 (false-sanitizer re-identification).
DECLARED_SANITIZER_PREFIXES = (
    "anonymize",
    "deidentify",
    "de_identify",
    "redact",
    "scrub",
    "pseudonymize",
    "sanitize",
)

#: Exact parameter names that carry PHI into a contract method.  Kept
#: deliberately tight: pseudonymous identifiers (``patient_id``,
#: ``patient_pseudo_id``), digests (``*_hash`` / ``*_root``), and counts
#: (``record_count``) are the on-chain currency of the paper's design and
#: must NOT match.
PHI_PARAM_NAMES: FrozenSet[str] = frozenset(
    {
        "record",
        "records",
        "patient_record",
        "patient_records",
        "raw_record",
        "raw_records",
        "patient_data",
        "medical_record",
        "medical_records",
        "ehr",
        "ehr_record",
        "phi",
        "mrn",
        "ssn",
        "dob",
        "date_of_birth",
        "diagnosis",
        "diagnoses",
        "genome",
        "genomic_data",
        "lab_results",
        "symptoms",
    }
)

#: Prefix escape hatch for explicit tagging in new contracts.
PHI_PARAM_PREFIX = "phi_"

#: Constant subscript keys whose projection out of a patient record is
#: boundary-safe: pseudonymous identifiers, digests/commitments, counts —
#: the paper's legal on-chain currency.  ``record["patient_id"]`` is a
#: sanitized projection; ``record["dob"]`` (or any other key) keeps the
#: record's taint.  Caveat (DESIGN.md §14): this trusts key *names*; code
#: that stashes raw PHI under a ``*_id`` key defeats it.
SAFE_PROJECTION_KEYS: FrozenSet[str] = frozenset({"count"})
SAFE_PROJECTION_SUFFIXES = ("_id", "_hash", "_root", "_count", "_digest")


def is_phi_param(name: str) -> bool:
    """True when a contract parameter name is cataloged as PHI-bearing."""
    return name in PHI_PARAM_NAMES or name.startswith(PHI_PARAM_PREFIX)


def is_safe_projection(key: str) -> bool:
    """True when projecting a record to this key is boundary-safe."""
    return key in SAFE_PROJECTION_KEYS or key.endswith(
        SAFE_PROJECTION_SUFFIXES
    )


def is_declared_sanitizer(name: str) -> bool:
    base = name.lstrip("_")
    return base.startswith(DECLARED_SANITIZER_PREFIXES)


def source_description(name: str) -> str:
    return SOURCE_DESCRIPTIONS.get(name, f"PHI source {name}()")


def sink_kind(name: str) -> Optional[str]:
    return SINK_CALL_KINDS.get(name)


def contract_sink_kind(name: str) -> Optional[str]:
    return CONTRACT_SINK_KINDS.get(name)
