"""MED2xx "PHI escape" rule family.

Every rule reports the same underlying defect — raw patient data provably
reaches a site-boundary sink — but the code names the *mechanism* of the
escape, chosen from the kinds of the propagation steps in the completed
trace (most specific wins):

- **MED205** the flow passed through a *declared* sanitizer whose summary
  proves PHI survives (false-sanitizer re-identification);
- **MED203** the flow crossed a helper-call boundary (interprocedural);
- **MED204** the flow travelled through container aliasing / mutation;
- **MED202** the flow was stringified (f-string / ``str()``) on the way;
- **MED201** none of the above: a direct store of the record.

All five are ERROR severity: the site-boundary contract is the paper's
central privacy property, so any proven escape blocks deploy and CI.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.analysis.dataflow.engine import Flow, TaintEngine
from repro.analysis.dataflow.lattice import (
    STEP_CALL,
    STEP_CONTAINER,
    STEP_FORMAT,
    STEP_SANITIZER_BYPASS,
    STEP_SOURCE,
    TaintStep,
)
from repro.analysis.findings import Finding, RuleInfo, Severity
from repro.analysis.registry import (
    DATAFLOW_FAMILY,
    ContractContext,
    ModuleContext,
    register_rule_info,
)

MED201 = register_rule_info(
    RuleInfo(
        code="MED201",
        name="phi-direct-store",
        family=DATAFLOW_FAMILY,
        default_severity=Severity.ERROR,
        summary="Raw patient data is written directly to a site-boundary "
        "sink (chain state, RPC response, gossip, trace export).",
    )
)
MED202 = register_rule_info(
    RuleInfo(
        code="MED202",
        name="phi-format-leak",
        family=DATAFLOW_FAMILY,
        default_severity=Severity.ERROR,
        summary="Patient data is interpolated into a string (f-string / "
        "str()) that crosses the site boundary.",
    )
)
MED203 = register_rule_info(
    RuleInfo(
        code="MED203",
        name="phi-helper-leak",
        family=DATAFLOW_FAMILY,
        default_severity=Severity.ERROR,
        summary="Patient data escapes the site boundary through an "
        "interprocedural helper call.",
    )
)
MED204 = register_rule_info(
    RuleInfo(
        code="MED204",
        name="phi-container-leak",
        family=DATAFLOW_FAMILY,
        default_severity=Severity.ERROR,
        summary="Patient data escapes via container aliasing: a mutation "
        "through one name leaks through another bound to the same object.",
    )
)
MED205 = register_rule_info(
    RuleInfo(
        code="MED205",
        name="phi-false-sanitizer",
        family=DATAFLOW_FAMILY,
        default_severity=Severity.ERROR,
        summary="A declared sanitizer (anonymize_*/redact_*/...) provably "
        "passes patient data through to a boundary sink "
        "(re-identification risk).",
    )
)

DATAFLOW_RULES: Tuple[RuleInfo, ...] = (MED201, MED202, MED203, MED204, MED205)

#: Mechanism priority: the most specific step kind present names the rule.
_CODE_BY_STEP_KIND = (
    (STEP_SANITIZER_BYPASS, "MED205"),
    (STEP_CALL, "MED203"),
    (STEP_CONTAINER, "MED204"),
    (STEP_FORMAT, "MED202"),
)


def code_for_trace(steps: Tuple[TaintStep, ...]) -> str:
    """Pick the MED2xx code from the mechanism steps of a completed trace."""
    kinds = {step.kind for step in steps}
    for kind, code in _CODE_BY_STEP_KIND:
        if kind in kinds:
            return code
    return "MED201"


def _finding_from_flow(
    flow: Flow,
    *,
    file: str,
    map_line: Optional[Callable[[int], int]] = None,
) -> Finding:
    mapper = map_line or (lambda line: line)
    steps = tuple(
        TaintStep(
            kind=step.kind,
            detail=step.detail,
            line=mapper(step.line) if step.line else 0,
            file=step.file or file,
        )
        for step in flow.steps
    )
    source_detail = next(
        (s.detail for s in steps if s.kind == STEP_SOURCE), "patient data"
    )
    path = " -> ".join(
        f"{s.kind}@{s.line}" if s.line else s.kind for s in steps
    )
    return Finding(
        code=code_for_trace(flow.steps),
        message=(
            f"PHI escapes the site boundary: {source_detail} reaches "
            f"{flow.sink_kind} [{path}]"
        ),
        severity=Severity.ERROR,
        file=file,
        line=mapper(flow.line),
        col=flow.col,
        symbol=flow.symbol,
        trace=tuple(step.to_dict() for step in steps),
    )


def check_module(ctx: ModuleContext) -> List[Finding]:
    """Run the taint pass over one repo python module."""
    engine = TaintEngine(ctx.tree, contract_mode=False)
    flows = engine.run()
    return [_finding_from_flow(flow, file=ctx.file) for flow in flows]


def check_contract(ctx: ContractContext) -> List[Finding]:
    """Run the taint pass over one MedScript contract module."""
    engine = TaintEngine(ctx.tree, contract_mode=True)
    flows = engine.run()
    return [
        _finding_from_flow(flow, file=ctx.file, map_line=ctx.map_line)
        for flow in flows
    ]
