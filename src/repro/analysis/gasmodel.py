"""Static worst-case gas estimation for MedScript contracts.

Walks the contract AST and charges the *same* cost constants the runtime
meter uses (``repro.contracts.gas``), taking the most expensive path through
every branch and the largest statically-derivable bound for every loop.  The
result is a sound upper bound on what :class:`~repro.contracts.vm.GasMeter`
can observe for a call that supplies worst-case arguments:

- ``if``: ``max(body, orelse)``;
- ``for`` over ``range(k)`` / a literal collection: the literal bound;
- any other loop: :data:`~repro.contracts.gas.MAX_ITERATIONS_PER_LOOP`
  (the VM's hard iteration ceiling — the only bound gas is guaranteed to
  reach);
- contract-internal calls: callee's worst case, memoized; recursive cycles
  are unbounded (``math.inf``);
- data-dependent host costs (``sha256_hex``, ``storage_keys``) use the
  documented assumption constants below.

Estimates are used two ways: the MED008 checker compares them against a
configured gas ceiling, and tests cross-check ``estimate >= meter.used`` on
real executions of the shipped contract library.
"""

from __future__ import annotations

import ast
import math
from typing import Dict, List, Optional, Union

from repro.contracts import gas as G

#: Bytes assumed hashed per ``sha256_hex`` call (worst-case payloads are
#: unbounded in principle; this matches the largest payloads the platform
#: contracts hash in practice).
ASSUMED_HASH_BYTES = 4096
#: Keys assumed returned per ``storage_keys`` call.
ASSUMED_STORAGE_KEYS = 1024

#: Extra cost charged by host functions on top of the generic GAS_CALL that
#: the interpreter charges for every callable invocation.
HOST_CALL_COSTS: Dict[str, int] = {
    "storage_get": G.GAS_STORAGE_READ,
    "storage_set": G.GAS_STORAGE_WRITE,
    "storage_has": G.GAS_STORAGE_READ,
    "storage_delete": G.GAS_STORAGE_WRITE,
    "storage_keys": G.GAS_STORAGE_READ * ASSUMED_STORAGE_KEYS,
    "emit": G.GAS_EMIT_EVENT,
    "sha256_hex": G.GAS_HASH_PER_BYTE * ASSUMED_HASH_BYTES,
}

Gas = Union[int, float]  # int, or math.inf for "unbounded"


def format_gas(value: Gas) -> str:
    return "unbounded" if math.isinf(value) else f"{int(value):,}"


def static_loop_bound(node: ast.stmt) -> Gas:
    """Largest statically-knowable iteration count for a loop statement."""
    if isinstance(node, ast.While):
        test = node.test
        if isinstance(test, ast.Constant) and not test.value:
            return 0
        return G.MAX_ITERATIONS_PER_LOOP
    if isinstance(node, ast.For):
        iterable = node.iter
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "range"
            and iterable.args
        ):
            bounds = [_const_int(arg) for arg in iterable.args]
            if all(b is not None for b in bounds):
                if len(bounds) == 1:
                    return max(0, bounds[0])
                step = bounds[2] if len(bounds) > 2 else 1
                if step == 0:
                    return G.MAX_ITERATIONS_PER_LOOP
                span = bounds[1] - bounds[0]
                return max(0, math.ceil(span / step) if step > 0 else math.ceil(-span / -step))
        if isinstance(iterable, (ast.List, ast.Tuple)):
            return len(iterable.elts)
        if isinstance(iterable, ast.Constant) and isinstance(iterable.value, (str, tuple)):
            return len(iterable.value)
        return G.MAX_ITERATIONS_PER_LOOP
    raise TypeError(f"not a loop statement: {type(node).__name__}")


def _const_int(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return -inner if inner is not None else None
    return None


class GasEstimator:
    """Estimates worst-case gas per entrypoint of one contract module."""

    def __init__(self, functions: Dict[str, ast.FunctionDef]):
        self.functions = functions
        self._memo: Dict[str, Gas] = {}
        self._in_progress: set = set()

    def estimate_all(self) -> Dict[str, Gas]:
        """Worst-case gas for every public entrypoint."""
        return {
            name: self.estimate(name)
            for name in sorted(self.functions)
            if not name.startswith("_")
        }

    def estimate(self, name: str) -> Gas:
        """Worst-case gas for one function, including the entry GAS_CALL."""
        if name in self._memo:
            return self._memo[name]
        if name in self._in_progress:
            return math.inf  # recursion: no static bound
        func = self.functions.get(name)
        if func is None:
            return 0
        self._in_progress.add(name)
        try:
            cost: Gas = G.GAS_CALL + self._block(func.body)
        finally:
            self._in_progress.discard(name)
        self._memo[name] = cost
        return cost

    # -- statements -------------------------------------------------------
    def _block(self, body: List[ast.stmt]) -> Gas:
        return sum(self._stmt(stmt) for stmt in body)

    def _stmt(self, stmt: ast.stmt) -> Gas:
        cost: Gas = G.GAS_STATEMENT
        if isinstance(stmt, ast.If):
            return cost + self._expr(stmt.test) + max(
                self._block(stmt.body), self._block(stmt.orelse)
            )
        if isinstance(stmt, (ast.While, ast.For)):
            bound = static_loop_bound(stmt)
            if isinstance(stmt, ast.While):
                # test evaluated once per iteration plus the exiting check
                per_iteration = (
                    self._expr(stmt.test)
                    + G.GAS_LOOP_ITERATION
                    + self._block(stmt.body)
                )
                head = self._expr(stmt.test)
            else:
                per_iteration = G.GAS_LOOP_ITERATION + self._block(stmt.body)
                head = self._expr(stmt.iter)
            return cost + head + bound * per_iteration + self._block(stmt.orelse)
        if isinstance(stmt, ast.Return):
            return cost + (self._expr(stmt.value) if stmt.value else 0)
        if isinstance(stmt, ast.Assign):
            return cost + self._expr(stmt.value) + sum(
                self._target(target) for target in stmt.targets
            )
        if isinstance(stmt, ast.AugAssign):
            # target is both read (_eval_target) and written (_assign)
            return (
                cost
                + self._expr(stmt.value)
                + 2 * self._target(stmt.target)
                + (G.GAS_POW if isinstance(stmt.op, ast.Pow) else 0)
            )
        if isinstance(stmt, ast.Expr):
            return cost + self._expr(stmt.value)
        if isinstance(stmt, ast.Assert):
            return cost + self._expr(stmt.test) + (
                self._expr(stmt.msg) if stmt.msg else 0
            )
        # Pass / Break / Continue and anything the VM will reject anyway.
        return cost

    def _target(self, target: ast.expr) -> Gas:
        """Cost of evaluating an assignment target's sub-expressions."""
        if isinstance(target, ast.Name):
            return 0
        if isinstance(target, ast.Subscript):
            return self._expr(target.value) + self._expr(target.slice)
        if isinstance(target, (ast.Tuple, ast.List)):
            return sum(self._target(element) for element in target.elts)
        return 0

    # -- expressions ------------------------------------------------------
    def _expr(self, node: Optional[ast.expr]) -> Gas:
        if node is None:
            return 0
        cost: Gas = G.GAS_EXPRESSION
        if isinstance(node, ast.BinOp):
            extra = G.GAS_POW if isinstance(node.op, ast.Pow) else 0
            return cost + extra + self._expr(node.left) + self._expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return cost + self._expr(node.operand)
        if isinstance(node, ast.BoolOp):
            return cost + sum(self._expr(value) for value in node.values)
        if isinstance(node, ast.Compare):
            return cost + self._expr(node.left) + sum(
                self._expr(comparator) for comparator in node.comparators
            )
        if isinstance(node, ast.Call):
            return cost + self._call(node)
        if isinstance(node, ast.Subscript):
            return cost + self._expr(node.value) + self._expr(node.slice)
        if isinstance(node, ast.Slice):
            return cost + self._expr(node.lower) + self._expr(node.upper) + self._expr(node.step)
        if isinstance(node, (ast.List, ast.Tuple)):
            return cost + sum(self._expr(element) for element in node.elts)
        if isinstance(node, ast.Dict):
            return cost + sum(
                self._expr(key) for key in node.keys if key is not None
            ) + sum(self._expr(value) for value in node.values)
        if isinstance(node, ast.IfExp):
            return cost + self._expr(node.test) + max(
                self._expr(node.body), self._expr(node.orelse)
            )
        if isinstance(node, ast.JoinedStr):
            return cost + sum(
                self._expr(value.value)
                for value in node.values
                if isinstance(value, ast.FormattedValue)
            )
        return cost  # Constant, Name, and anything else: one eval charge

    def _call(self, node: ast.Call) -> Gas:
        args_cost: Gas = self._expr(node.func) - G.GAS_EXPRESSION  # func eval
        args_cost += G.GAS_EXPRESSION  # _eval(node.func) itself
        args_cost += sum(self._expr(arg) for arg in node.args)
        args_cost += sum(self._expr(kw.value) for kw in node.keywords)
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in self.functions:
                return args_cost + self.estimate(name)
            host_extra = HOST_CALL_COSTS.get(name, 0)
            return args_cost + G.GAS_CALL + host_extra
        return args_cost + G.GAS_CALL


def estimate_contract_gas(
    functions: Dict[str, ast.FunctionDef],
) -> Dict[str, Gas]:
    """Worst-case gas per public entrypoint of a parsed contract module."""
    return GasEstimator(functions).estimate_all()
