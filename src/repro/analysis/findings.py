"""Findings model for the static-analysis framework.

A :class:`Finding` is one diagnostic: a stable rule code (``MED0xx`` for
contract verification, ``MED1xx`` for repo convention lints), a severity, a
``file:line:col`` anchor, and a human-readable message.  Findings are plain
data — reporters (text / JSON) and gates (deploy-time ``verify=True``, the
CI ``--fail-on`` threshold) all consume the same objects.

Severity semantics:

- ``ERROR``   — the construct breaks a consensus-critical property
  (nondeterminism, unbounded execution, unknown host call).  Deploy gates
  and CI fail on these.
- ``WARNING`` — legal but dangerous; merge gates may fail on these with
  ``--fail-on warning``.
- ``INFO``    — advisory (e.g. the static worst-case gas estimate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Ordered severity so gates can compare with ``>=``."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[member.name.lower() for member in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a checker."""

    code: str  # stable rule code, e.g. "MED001"
    message: str
    severity: Severity = Severity.ERROR
    file: str = "<contract>"
    line: int = 0  # 1-based; 0 means "whole file"
    col: int = 0  # 0-based, matching ast's col_offset
    end_line: Optional[int] = None
    symbol: str = ""  # enclosing function, when known
    # Taint trace for MED2xx findings: source -> path -> sink step dicts
    # (kind / detail / line / file), rendered by the deploy-gate error and
    # carried through JSON / SARIF output as a code flow.
    trace: Tuple[Dict[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.name.lower(),
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
        }
        if self.end_line is not None:
            out["end_line"] = self.end_line
        if self.symbol:
            out["symbol"] = self.symbol
        if self.trace:
            out["trace"] = list(self.trace)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(
            code=data["code"],
            message=data["message"],
            severity=Severity.parse(data.get("severity", "error")),
            file=data.get("file", "<contract>"),
            line=data.get("line", 0),
            col=data.get("col", 0),
            end_line=data.get("end_line"),
            symbol=data.get("symbol", ""),
            trace=tuple(data.get("trace", ())),
        )

    def render(self) -> str:
        """One-line ``file:line:col CODE severity message`` rendering."""
        where = f"{self.file}:{self.line}:{self.col}"
        prefix = f"{where} {self.code} [{self.severity.name.lower()}]"
        if self.symbol:
            return f"{prefix} {self.symbol}: {self.message}"
        return f"{prefix} {self.message}"


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry describing one rule (for ``--list-rules`` and docs)."""

    code: str
    name: str
    family: str  # "contract" | "repo"
    default_severity: Severity
    summary: str


def max_severity(findings: List[Finding]) -> Optional[Severity]:
    """Highest severity present, or ``None`` for an empty list."""
    return max((f.severity for f in findings), default=None)


def count_by_severity(findings: List[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        key = finding.severity.name.lower()
        counts[key] = counts.get(key, 0) + 1
    return counts


@dataclass
class AnalysisResult:
    """All findings from one run, plus enough context to report them."""

    findings: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    contracts_analyzed: int = 0

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    def worst(self) -> Optional[Severity]:
        return max_severity(self.findings)

    def has_at_least(self, severity: Severity) -> bool:
        return any(f.severity >= severity for f in self.findings)

    def sorted_findings(self) -> List[Finding]:
        return sorted(
            self.findings, key=lambda f: (f.file, f.line, f.col, f.code)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "findings": [f.to_dict() for f in self.sorted_findings()],
            "files_analyzed": self.files_analyzed,
            "contracts_analyzed": self.contracts_analyzed,
            "counts": count_by_severity(self.findings),
        }
