"""Repo convention lints (MED1xx) over the ``repro`` codebase itself.

These encode conventions that the runtime depends on but nothing enforced
until now:

- MED101 — blocking calls (``time.sleep``, sync subprocess/socket/file I/O)
  inside ``async def``: one blocking call stalls every connection the
  event loop is serving;
- MED102 — direct ``json.dumps`` in consensus/chain/rpc paths: anything
  that feeds hashes or wire frames must go through
  ``repro.common.serialize.canonical_bytes`` so byte output is canonical
  across nodes;
- MED103 — wall-clock reads (``time.time`` / ``datetime.now``) outside
  ``repro/common/clock.py`` and the obs layer: simulation determinism
  requires all time to flow from the kernel clock (monotonic interval
  timing like ``perf_counter`` is fine and not flagged).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional

from repro.analysis.findings import Finding, RuleInfo, Severity
from repro.analysis.registry import (
    REPO_FAMILY,
    ModuleContext,
    RepoChecker,
    register,
)

#: Dotted call paths that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.delete",
        "requests.request",
        "socket.create_connection",
        "socket.getaddrinfo",
    }
)

#: Wall-clock reads; interval clocks (monotonic/perf_counter) are allowed.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Package subtrees where canonical serialization is mandatory.
CANONICAL_ONLY_PACKAGES = ("chain", "consensus", "rpc")

#: Modules allowed to read the wall clock.
WALL_CLOCK_ALLOWED = ("common/clock.py", "obs/")


class _ImportMap:
    """Resolves names in one module back to dotted import paths."""

    def __init__(self, tree: ast.Module):
        self.aliases: Dict[str, str] = {}  # local name -> dotted path
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve_call(self, func: ast.expr) -> Optional[str]:
        """Dotted path of a call target, e.g. ``time.sleep``; None if unknown."""
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


def _finding(
    rule: RuleInfo, ctx: ModuleContext, node: ast.AST, message: str, symbol: str = ""
) -> Finding:
    return Finding(
        code=rule.code,
        message=message,
        severity=rule.default_severity,
        file=ctx.file,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        symbol=symbol,
    )


@register
class BlockingCallInAsyncChecker(RepoChecker):
    rule = RuleInfo(
        code="MED101",
        name="blocking-call-in-async",
        family=REPO_FAMILY,
        default_severity=Severity.ERROR,
        summary="blocking call (time.sleep, sync subprocess/socket I/O) "
        "inside async def stalls the event loop",
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        imports = _ImportMap(ctx.tree)
        for outer in ast.walk(ctx.tree):
            if not isinstance(outer, ast.AsyncFunctionDef):
                continue
            for node in ast.walk(outer):
                if not isinstance(node, ast.Call):
                    continue
                resolved = imports.resolve_call(node.func)
                if resolved in BLOCKING_CALLS:
                    yield _finding(
                        self.rule,
                        ctx,
                        node,
                        f"blocking call {resolved}() inside async def "
                        f"{outer.name!r}; use the asyncio equivalent or "
                        "run_in_executor",
                        symbol=outer.name,
                    )


@register
class NonCanonicalJsonChecker(RepoChecker):
    rule = RuleInfo(
        code="MED102",
        name="non-canonical-json",
        family=REPO_FAMILY,
        default_severity=Severity.ERROR,
        summary="json.dumps in chain/consensus/rpc paths; hashes and wire "
        "frames must use canonical_bytes",
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package(*CANONICAL_ONLY_PACKAGES):
            return
        imports = _ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node.func)
            if resolved in ("json.dumps", "json.dump"):
                yield _finding(
                    self.rule,
                    ctx,
                    node,
                    f"{resolved}() in a consensus-critical path: key order "
                    "and separators are not canonical across versions; use "
                    "repro.common.serialize.canonical_bytes",
                )


@register
class WallClockChecker(RepoChecker):
    rule = RuleInfo(
        code="MED103",
        name="wall-clock-read",
        family=REPO_FAMILY,
        default_severity=Severity.ERROR,
        summary="time.time()/datetime.now() outside repro/common/clock.py "
        "and the obs layer breaks simulation determinism",
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.package_path.startswith("repro/"):
            return
        relative = ctx.package_path[len("repro/"):]
        if any(relative.startswith(allowed) for allowed in WALL_CLOCK_ALLOWED):
            return
        imports = _ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node.func)
            if resolved in WALL_CLOCK_CALLS:
                yield _finding(
                    self.rule,
                    ctx,
                    node,
                    f"wall-clock read {resolved}(): route time through the "
                    "kernel clock (repro.common.clock) so simulated runs "
                    "stay deterministic",
                )
