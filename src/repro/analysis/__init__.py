"""repro.analysis — static contract verifier and repo convention linter.

The deterministic-execution story of the paper (every node runs the
identical contract code) is enforced in two places: at runtime by the VM's
gas meter and syntax whitelist, and — as of this package — *statically,
before deployment and before merge*:

- the **contract family** (MED0xx) verifies MedScript source prior to
  on-chain registration (nondeterminism, unbounded loops, unknown host
  calls, worst-case gas);
- the **repo family** (MED1xx) lints the ``repro`` codebase for
  conventions the runtime silently depends on (no blocking calls in async
  paths, canonical serialization in consensus code, kernel-clock time);
- the **dataflow family** (MED2xx) is an interprocedural PHI taint pass
  proving that raw patient data never crosses the site boundary (chain
  state, RPC responses, gossip, observability exports) — always on for
  contract sources, opt-in (``--taint``) for repo modules.

Use :func:`verify_contract` as the deploy gate,
:func:`analyze_contract_source` / :func:`analyze_paths` for reports, and
``python -m repro.analysis`` from CI.
"""

from repro.analysis import contract_rules, repo_rules  # register checkers
from repro.analysis import dataflow  # register the MED2xx rule family
from repro.analysis.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.dataflow import TaintEngine, check_contract, check_module
from repro.analysis.engine import (
    analyze_contract_source,
    analyze_file,
    analyze_paths,
    collect_module,
    extract_embedded_contracts,
    parse_suppressions,
)
from repro.analysis.rwsets import (
    MethodRWSet,
    ResolvedAccess,
    SlotTemplate,
    read_write_sets,
)
from repro.analysis.findings import AnalysisResult, Finding, RuleInfo, Severity
from repro.analysis.gasmodel import GasEstimator, estimate_contract_gas
from repro.analysis.registry import (
    ContractChecker,
    ContractContext,
    ModuleContext,
    RepoChecker,
    all_rules,
    contract_checkers,
    register,
    repo_checkers,
)
from repro.analysis.verify import verify_contract
from repro.common.errors import ContractVerificationError

__all__ = [
    "AnalysisResult",
    "ContractChecker",
    "ContractContext",
    "ContractVerificationError",
    "Finding",
    "GasEstimator",
    "MethodRWSet",
    "ModuleContext",
    "RepoChecker",
    "ResolvedAccess",
    "RuleInfo",
    "Severity",
    "SlotTemplate",
    "all_rules",
    "TaintEngine",
    "analyze_contract_source",
    "analyze_file",
    "analyze_paths",
    "apply_baseline",
    "check_contract",
    "check_module",
    "collect_module",
    "contract_checkers",
    "contract_rules",
    "dataflow",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "estimate_contract_gas",
    "extract_embedded_contracts",
    "parse_suppressions",
    "read_write_sets",
    "register",
    "repo_checkers",
    "repo_rules",
    "verify_contract",
]
