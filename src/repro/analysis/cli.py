"""``python -m repro.analysis`` — static analysis CLI.

Examples::

    # repo conventions + embedded contract audit over the source tree
    python -m repro.analysis src/repro examples --format json

    # verify a standalone MedScript contract file before deployment
    python -m repro.analysis --contract my_contract.py --max-gas 2000000

    # print the rule catalog
    python -m repro.analysis --list-rules

Exit status: 0 when no finding reaches the ``--fail-on`` threshold
(default: error), 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import analyze_contract_source, analyze_paths
from repro.analysis.findings import AnalysisResult, Severity
from repro.analysis.report import (
    render_json,
    render_rules,
    render_sarif,
    render_text,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static contract verifier and repo convention linter "
        "(rule codes MED0xx/MED1xx).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (repo rules + embedded "
        "contract audit)",
    )
    parser.add_argument(
        "--contract",
        action="append",
        default=[],
        metavar="FILE",
        help="treat FILE as standalone MedScript contract source and run "
        "the contract verifier over it (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text); sarif emits a SARIF 2.1.0 log "
        "for code-scanning upload",
    )
    parser.add_argument(
        "--taint",
        action="store_true",
        help="run the MED2xx PHI escape taint pass over repo modules "
        "(contract sources are always taint-checked)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in FILE (see --write-baseline); "
        "only new findings count toward the exit status",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as a baseline file and exit 0",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the report to PATH (useful as a CI artifact)",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="error",
        help="exit non-zero when any finding reaches this severity "
        "(default: error)",
    )
    parser.add_argument(
        "--max-gas",
        type=int,
        default=None,
        metavar="GAS",
        help="enable MED008: flag entrypoints whose static worst-case gas "
        "exceeds GAS",
    )
    parser.add_argument(
        "--no-embedded",
        action="store_true",
        help="skip the embedded *_SOURCE contract audit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0
    if not args.paths and not args.contract:
        parser.print_usage(sys.stderr)
        print(
            "error: provide paths to lint, --contract FILE, or --list-rules",
            file=sys.stderr,
        )
        return 2

    result = AnalysisResult()
    if args.paths:
        result = analyze_paths(
            args.paths,
            max_gas=args.max_gas,
            audit_embedded=not args.no_embedded,
            taint=args.taint,
        )
    for contract_path in args.contract:
        try:
            with open(contract_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {contract_path}: {exc}", file=sys.stderr)
            return 2
        result.extend(
            analyze_contract_source(
                source, file=contract_path, max_gas=args.max_gas
            )
        )
        result.files_analyzed += 1
        result.contracts_analyzed += 1

    if args.write_baseline:
        count = write_baseline(result.findings, args.write_baseline)
        print(
            f"baseline: recorded {count} fingerprint(s) to "
            f"{args.write_baseline}"
        )
        return 0
    suppressed = 0
    if args.baseline:
        try:
            fingerprints = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        result.findings, suppressed = apply_baseline(
            result.findings, fingerprints
        )

    if args.format == "json":
        rendered = render_json(result)
    elif args.format == "sarif":
        rendered = render_sarif(result)
    else:
        rendered = render_text(result)
        if suppressed:
            rendered += f"\n{suppressed} finding(s) suppressed by baseline"
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    threshold = Severity.parse(args.fail_on)
    return 1 if result.has_at_least(threshold) else 0


if __name__ == "__main__":
    sys.exit(main())
