"""Deploy-time contract verification gate.

:func:`verify_contract` is the one-call form used by
:class:`repro.contracts.registry.ContractRegistry` (``deploy(...,
verify=True)``) and by any off-chain admission service: it runs the full
contract-family analysis and raises a typed
:class:`~repro.common.errors.ContractVerificationError` when findings at or
above the failure threshold remain.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.engine import analyze_contract_source
from repro.analysis.findings import Finding, Severity
from repro.common.errors import ContractVerificationError


def verify_contract(
    source: str,
    *,
    name: str = "<contract>",
    max_gas: Optional[int] = None,
    fail_on: Severity = Severity.ERROR,
    taint: bool = True,
) -> List[Finding]:
    """Statically verify contract source; raise on gate-failing findings.

    Returns the full finding list (including sub-threshold warnings, so
    callers can log them) when the contract passes.  Raises
    :class:`ContractVerificationError` carrying the findings when any
    finding reaches ``fail_on``.  ``taint=True`` (the default) includes the
    MED2xx PHI escape pass; rejected findings carry their full
    source → path → sink trace on ``Finding.trace``.
    """
    findings = analyze_contract_source(
        source, file=name, max_gas=max_gas, taint=taint
    )
    failing = [finding for finding in findings if finding.severity >= fail_on]
    if failing:
        summary = "; ".join(
            f"{finding.code}@{finding.line}: {finding.message}"
            for finding in failing[:3]
        )
        more = f" (+{len(failing) - 3} more)" if len(failing) > 3 else ""
        raise ContractVerificationError(
            f"contract {name!r} failed static verification with "
            f"{len(failing)} finding(s): {summary}{more}",
            findings=findings,
        )
    return findings
