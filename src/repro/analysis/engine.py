"""Analysis engine: orchestrates checkers over contracts, files, and trees.

Three entrypoints:

- :func:`analyze_contract_source` — run the contract family over one
  MedScript module (the deploy gate calls this);
- :func:`analyze_file` — run the repo family over one python file, plus the
  contract family over any embedded ``*_SOURCE`` contract literals it
  defines (the library audit);
- :func:`analyze_paths` — walk directories, used by the CLI and CI.

Suppressions: a ``# repro: noqa`` comment suppresses every finding on its
line; ``# repro: noqa[MED001,MED005]`` suppresses just those codes.  The
comment lives on the offending line (inside contract literals too — the
engine maps embedded lines back to host-file coordinates).
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.dataflow.rules import check_contract, check_module
from repro.analysis.findings import AnalysisResult, Finding, Severity
from repro.analysis.registry import (
    ContractContext,
    ModuleContext,
    contract_checkers,
    repo_checkers,
)
from repro.contracts.runtime import HOST_FUNCTION_NAMES
from repro.contracts.vm import _PURE_BUILTINS

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

PURE_BUILTIN_NAMES: FrozenSet[str] = frozenset(_PURE_BUILTINS)

#: suffix marking module-level string constants audited as contract source
EMBEDDED_SOURCE_SUFFIX = "_SOURCE"


def parse_suppressions(
    source: str, line_offset: int = 0
) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed codes (``None`` = all codes)."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for index, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        key = index + line_offset
        if codes is None:
            suppressions[key] = None
        else:
            parsed = {code.strip().upper() for code in codes.split(",") if code.strip()}
            existing = suppressions.get(key)
            if existing is None and key in suppressions:
                continue  # blanket suppression already present
            suppressions[key] = (existing or set()) | parsed
    return suppressions


def apply_suppressions(
    findings: Iterable[Finding],
    suppressions: Dict[int, Optional[Set[str]]],
) -> List[Finding]:
    kept = []
    for finding in findings:
        allowed = suppressions.get(finding.line, ())
        if allowed is None:  # blanket noqa
            continue
        if finding.code in allowed:
            continue
        kept.append(finding)
    return kept


def collect_module(
    tree: ast.Module,
) -> Tuple[Dict[str, ast.FunctionDef], Dict[str, ast.expr]]:
    """Top-level functions and single-name constant assignments of a module.

    The shared front half of every contract-source consumer: the MED-rule
    engine below and the read/write-set deriver (``repro.analysis.rwsets``)
    both build on this instead of growing second parsers.
    """
    functions: Dict[str, ast.FunctionDef] = {}
    constants: Dict[str, ast.expr] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            functions[node.name] = node
        elif isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                constants[node.targets[0].id] = node.value
    return functions, constants


def analyze_contract_source(
    source: str,
    *,
    file: str = "<contract>",
    line_offset: int = 0,
    max_gas: Optional[int] = None,
    suppressions: Optional[Dict[int, Optional[Set[str]]]] = None,
    taint: bool = True,
) -> List[Finding]:
    """Run every contract-family checker over one MedScript module.

    The MED2xx PHI taint pass is on by default for contracts — the deploy
    gate must reject PHI-escaping contracts without opt-in flags.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                code="MED009",
                message=f"contract does not parse: {exc.msg}",
                severity=Severity.ERROR,
                file=file,
                line=(exc.lineno or 1) + line_offset,
                col=exc.offset or 0,
            )
        ]
    functions, constants = collect_module(tree)
    ctx = ContractContext(
        source=source,
        tree=tree,
        functions=functions,
        constants=constants,
        host_functions=HOST_FUNCTION_NAMES,
        pure_builtins=PURE_BUILTIN_NAMES,
        file=file,
        line_offset=line_offset,
        max_gas=max_gas,
    )
    findings: List[Finding] = []
    for checker in contract_checkers():
        findings.extend(checker.check(ctx))
    if taint:
        findings.extend(check_contract(ctx))
    if suppressions is None:
        suppressions = parse_suppressions(source, line_offset)
    return apply_suppressions(findings, suppressions)


def _package_path(path: str) -> str:
    """Path of a module relative to its package root (best effort).

    ``src/repro/chain/state.py`` -> ``repro/chain/state.py``; files outside
    a ``repro`` package keep their normalized relative path, which simply
    never matches the path-scoped rules.
    """
    normalized = os.path.normpath(path).replace(os.sep, "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index >= 0:
        return "repro/" + normalized[index + len(marker):]
    if normalized.startswith("repro/"):
        return normalized
    return normalized.lstrip("./")


def extract_embedded_contracts(
    tree: ast.Module,
) -> List[Tuple[str, int, str]]:
    """Embedded contract literals: ``(name, literal_line, source)`` triples.

    A module-level ``NAME_SOURCE = '''...'''`` string that parses and
    defines at least one function is treated as deployable contract source
    (this is how ``repro/contracts/library.py`` ships the platform
    contracts).
    """
    out: List[Tuple[str, int, str]] = []
    for node in tree.body:
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.endswith(EMBEDDED_SOURCE_SUFFIX)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            continue
        source = node.value.value
        try:
            parsed = ast.parse(source)
        except SyntaxError:
            continue  # not contract source; plain string that happens to match
        if any(isinstance(sub, ast.FunctionDef) for sub in parsed.body):
            out.append((node.targets[0].id, node.value.lineno, source))
    return out


def analyze_file(
    path: str,
    *,
    max_gas: Optional[int] = None,
    audit_embedded: bool = True,
    taint: bool = False,
) -> List[Finding]:
    """Repo lints for one file, plus embedded-contract verification.

    ``taint=True`` additionally runs the MED2xx PHI escape pass over the
    module itself (embedded contract literals are taint-checked regardless,
    as part of the contract audit).
    """
    findings, _ = _analyze_file(
        path, max_gas=max_gas, audit_embedded=audit_embedded, taint=taint
    )
    return findings


def _analyze_file(
    path: str,
    *,
    max_gas: Optional[int] = None,
    audit_embedded: bool = True,
    taint: bool = False,
) -> Tuple[List[Finding], int]:
    """Implementation: returns (findings, embedded_contract_count)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                code="MED100",
                message=f"file does not parse: {exc.msg}",
                severity=Severity.ERROR,
                file=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
            )
        ], 0
    ctx = ModuleContext(
        source=source,
        tree=tree,
        file=path,
        package_path=_package_path(path),
        lines=source.splitlines(),
    )
    findings: List[Finding] = []
    for checker in repo_checkers():
        findings.extend(checker.check(ctx))
    if taint:
        findings.extend(check_module(ctx))
    suppressions = parse_suppressions(source)
    findings = apply_suppressions(findings, suppressions)
    embedded = extract_embedded_contracts(tree) if audit_embedded else []
    for _name, literal_line, contract_source in embedded:
        # Content line 1 sits on the line after the opening quote of a
        # leading-newline triple-quoted literal; plain literals start on
        # the assignment line itself.
        offset = literal_line - 1 + (1 if contract_source.startswith("\n") else 0)
        findings.extend(
            analyze_contract_source(
                contract_source.lstrip("\n"),
                file=path,
                line_offset=offset,
                max_gas=max_gas,
            )
        )
    return findings, len(embedded)


def iter_python_files(paths: Iterable[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d != "__pycache__" and not d.startswith(".")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def analyze_paths(
    paths: Iterable[str],
    *,
    max_gas: Optional[int] = None,
    audit_embedded: bool = True,
    taint: bool = False,
) -> AnalysisResult:
    """Walk files under ``paths`` and run the full repo + library audit."""
    result = AnalysisResult()
    seen: Set[str] = set()
    for path in iter_python_files(paths):
        real = os.path.realpath(path)
        if real in seen:
            continue
        seen.add(real)
        findings, embedded_count = _analyze_file(
            path, max_gas=max_gas, audit_embedded=audit_embedded, taint=taint
        )
        result.extend(findings)
        result.files_analyzed += 1
        result.contracts_analyzed += embedded_count
    return result
