"""Contract-verification checkers (MED0xx).

These run over MedScript contract source *before* deployment — the
off-chain admission gate the MediChain-style architectures put in front of
on-chain registration.  Every rule protects the consensus-critical
property the paper relies on: the identical contract code must execute
identically (and boundedly) on every node.

Rule catalog:

- MED001 — reference to a nondeterministic / forbidden name
- MED002 — float (or complex) literal
- MED003 — true division ``/`` (yields floats under Python semantics)
- MED004 — loop with no gas-reachable bound (``while`` on a constant-true
  test with no ``break``/``return`` in the body: guaranteed gas exhaustion)
- MED005 — aliasable mutable value written to storage twice without
  rebinding (aliasing hazard for any runtime without copy-on-bridge)
- MED006 — call to a function that exists neither in the contract, the
  VM's pure builtins, nor :data:`repro.contracts.runtime.HOST_FUNCTION_NAMES`
- MED007 — unreachable statements after ``return`` / ``break`` / ``continue``
- MED008 — static worst-case gas estimate exceeds the configured ceiling
- MED009 — syntax the VM forbids (imports, attributes, comprehensions, ...)
- MED010 — read of a name that is never bound
"""

from __future__ import annotations

import ast
import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, RuleInfo, Severity
from repro.analysis.gasmodel import GasEstimator, format_gas
from repro.analysis.registry import (
    CONTRACT_FAMILY,
    ContractChecker,
    ContractContext,
    register,
)

#: Names whose appearance in contract code signals nondeterminism (or an
#: attempt to reach outside the sandbox).  The VM would raise ``undefined
#: name`` at runtime; the analyzer rejects them at admission time with a
#: specific diagnosis.
FORBIDDEN_NAMES = frozenset(
    {
        "random",
        "time",
        "datetime",
        "id",
        "hash",
        "float",
        "complex",
        "set",
        "frozenset",
        "input",
        "open",
        "print",
        "eval",
        "exec",
        "compile",
        "globals",
        "locals",
        "vars",
        "getattr",
        "setattr",
        "delattr",
        "object",
        "type",
        "super",
        "uuid",
        "uuid4",
        "urandom",
        "__import__",
    }
)

_TERMINATORS = (ast.Return, ast.Break, ast.Continue)

_DISALLOWED_NODE_LABELS: Dict[type, str] = {
    ast.Import: "import",
    ast.ImportFrom: "import",
    ast.Attribute: "attribute access",
    ast.Lambda: "lambda",
    ast.GeneratorExp: "generator expression",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.With: "with block",
    ast.Try: "try block",
    ast.Raise: "raise",
    ast.Global: "global declaration",
    ast.Nonlocal: "nonlocal declaration",
    ast.ClassDef: "class definition",
    ast.AsyncFunctionDef: "async function",
    ast.Await: "await",
    ast.Yield: "yield",
    ast.YieldFrom: "yield from",
    ast.Starred: "starred expression",
    ast.NamedExpr: "walrus assignment",
    ast.Set: "set literal",
}


def _bound_names(func: ast.FunctionDef) -> Set[str]:
    """Every name the function can bind: params plus assignment targets."""
    bound: Set[str] = {arg.arg for arg in func.args.args}
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.For):
            targets = [node.target]
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
    return bound


def _known_names(ctx: ContractContext, func: ast.FunctionDef) -> Set[str]:
    return (
        _bound_names(func)
        | set(ctx.constants)
        | set(ctx.functions)
        | set(ctx.pure_builtins)
        | set(ctx.host_functions)
    )


def _walk_functions(
    ctx: ContractContext,
) -> Iterable[Tuple[str, ast.FunctionDef]]:
    for name, func in sorted(ctx.functions.items()):
        yield name, func


@register
class ForbiddenNameChecker(ContractChecker):
    rule = RuleInfo(
        code="MED001",
        name="nondeterministic-name",
        family=CONTRACT_FAMILY,
        default_severity=Severity.ERROR,
        summary="reference to a nondeterministic or sandbox-escaping name "
        "(random, time, id, eval, ...)",
    )

    def check(self, ctx: ContractContext) -> Iterable[Finding]:
        for name, func in _walk_functions(ctx):
            local = _bound_names(func)
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in FORBIDDEN_NAMES
                    and node.id not in local
                ):
                    yield Finding(
                        code=self.rule.code,
                        message=f"use of forbidden name {node.id!r} "
                        "(nondeterministic or outside the VM sandbox)",
                        severity=self.rule.default_severity,
                        file=ctx.file,
                        line=ctx.map_line(node.lineno),
                        col=node.col_offset,
                        symbol=name,
                    )


@register
class FloatLiteralChecker(ContractChecker):
    rule = RuleInfo(
        code="MED002",
        name="float-literal",
        family=CONTRACT_FAMILY,
        default_severity=Severity.ERROR,
        summary="float/complex literal (floats are nondeterministic across "
        "nodes; use milli-unit integers)",
    )

    def check(self, ctx: ContractContext) -> Iterable[Finding]:
        for name, func in _walk_functions(ctx):
            for node in ast.walk(func):
                if isinstance(node, ast.Constant) and isinstance(
                    node.value, (float, complex)
                ):
                    yield Finding(
                        code=self.rule.code,
                        message=f"float literal {node.value!r} is forbidden; "
                        "use scaled integers (e.g. value_milli)",
                        severity=self.rule.default_severity,
                        file=ctx.file,
                        line=ctx.map_line(node.lineno),
                        col=node.col_offset,
                        symbol=name,
                    )


@register
class TrueDivisionChecker(ContractChecker):
    rule = RuleInfo(
        code="MED003",
        name="true-division",
        family=CONTRACT_FAMILY,
        default_severity=Severity.ERROR,
        summary="true division `/` yields floats; use `//`",
    )

    def check(self, ctx: ContractContext) -> Iterable[Finding]:
        for name, func in _walk_functions(ctx):
            for node in ast.walk(func):
                op = None
                if isinstance(node, (ast.BinOp, ast.AugAssign)):
                    op = node.op
                if isinstance(op, ast.Div):
                    yield Finding(
                        code=self.rule.code,
                        message="true division `/` is forbidden "
                        "(float result); use floor division `//`",
                        severity=self.rule.default_severity,
                        file=ctx.file,
                        line=ctx.map_line(node.lineno),
                        col=node.col_offset,
                        symbol=name,
                    )


def _has_escape(body: List[ast.stmt]) -> bool:
    """True when any path out of the loop body exists (break/return)."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Break, ast.Return)):
                return True
    return False


def _is_constant_true(test: ast.expr) -> bool:
    if isinstance(test, ast.Constant):
        return bool(test.value)
    return False


@register
class UnboundedLoopChecker(ContractChecker):
    rule = RuleInfo(
        code="MED004",
        name="unbounded-loop",
        family=CONTRACT_FAMILY,
        default_severity=Severity.ERROR,
        summary="while-loop on a constant-true test with no break/return: "
        "terminates only by gas exhaustion",
    )

    def check(self, ctx: ContractContext) -> Iterable[Finding]:
        for name, func in _walk_functions(ctx):
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.While)
                    and _is_constant_true(node.test)
                    and not _has_escape(node.body)
                ):
                    yield Finding(
                        code=self.rule.code,
                        message="loop has no gas-reachable bound: the test "
                        "is constant-true and the body never breaks or "
                        "returns, so every call burns its entire gas limit",
                        severity=self.rule.default_severity,
                        file=ctx.file,
                        line=ctx.map_line(node.lineno),
                        col=node.col_offset,
                        symbol=name,
                    )


@register
class StorageAliasChecker(ContractChecker):
    rule = RuleInfo(
        code="MED005",
        name="storage-alias-write",
        family=CONTRACT_FAMILY,
        default_severity=Severity.WARNING,
        summary="same mutable local written to storage twice without "
        "rebinding (aliasing hazard)",
    )

    def check(self, ctx: ContractContext) -> Iterable[Finding]:
        for name, func in _walk_functions(ctx):
            written: Dict[str, int] = {}  # value name -> first write line
            for node in self._statements_in_order(func):
                rebound = self._rebound_names(node)
                for rebound_name in rebound:
                    written.pop(rebound_name, None)
                for call in self._storage_set_calls(node):
                    if len(call.args) < 2:
                        continue
                    value = call.args[1]
                    if not isinstance(value, ast.Name):
                        continue
                    if value.id in written:
                        yield Finding(
                            code=self.rule.code,
                            message=f"{value.id!r} was already written to "
                            f"storage on line "
                            f"{ctx.map_line(written[value.id])} and has not "
                            "been rebound: two storage slots would alias "
                            "the same mutable value on runtimes without "
                            "copy-on-write bridges",
                            severity=self.rule.default_severity,
                            file=ctx.file,
                            line=ctx.map_line(call.lineno),
                            col=call.col_offset,
                            symbol=name,
                        )
                    else:
                        written[value.id] = call.lineno

    @staticmethod
    def _statements_in_order(func: ast.FunctionDef) -> List[ast.stmt]:
        out: List[ast.stmt] = []

        def visit(body: List[ast.stmt]) -> None:
            for stmt in body:
                out.append(stmt)
                for attr in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, attr, None)
                    if inner:
                        visit(inner)

        visit(func.body)
        return out

    @staticmethod
    def _rebound_names(stmt: ast.stmt) -> Set[str]:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            # MedScript AugAssign re-evaluates `a <op> b` and rebinds: it
            # produces a fresh object, so it clears the alias.
            targets = [stmt.target]
        elif isinstance(stmt, ast.For):
            targets = [stmt.target]
        names: Set[str] = set()
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        return names

    @staticmethod
    def _storage_set_calls(stmt: ast.stmt) -> List[ast.Call]:
        calls = []
        # Only look at this statement's own expression, not nested blocks
        # (nested statements are visited separately, in order).
        nodes: List[ast.AST] = []
        if isinstance(stmt, ast.Expr):
            nodes = [stmt.value]
        elif isinstance(stmt, ast.Assign):
            nodes = [stmt.value]
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            nodes = [stmt.value]
        for root in nodes:
            for node in ast.walk(root):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "storage_set"
                ):
                    calls.append(node)
        return calls


@register
class UnknownHostFunctionChecker(ContractChecker):
    rule = RuleInfo(
        code="MED006",
        name="unknown-host-function",
        family=CONTRACT_FAMILY,
        default_severity=Severity.ERROR,
        summary="call to a function not defined by the contract, the VM "
        "builtins, or the HostBridge",
    )

    def check(self, ctx: ContractContext) -> Iterable[Finding]:
        for name, func in _walk_functions(ctx):
            known = _known_names(ctx, func)
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id not in known
                    and node.func.id not in FORBIDDEN_NAMES  # MED001's job
                ):
                    yield Finding(
                        code=self.rule.code,
                        message=f"call to {node.func.id!r}: no such contract "
                        "function, VM builtin, or HostBridge host function",
                        severity=self.rule.default_severity,
                        file=ctx.file,
                        line=ctx.map_line(node.lineno),
                        col=node.col_offset,
                        symbol=name,
                    )


@register
class UnreachableCodeChecker(ContractChecker):
    rule = RuleInfo(
        code="MED007",
        name="unreachable-code",
        family=CONTRACT_FAMILY,
        default_severity=Severity.WARNING,
        summary="statements after return/break/continue never execute",
    )

    def check(self, ctx: ContractContext) -> Iterable[Finding]:
        for name, func in _walk_functions(ctx):
            yield from self._check_block(ctx, name, func.body)

    def _check_block(
        self, ctx: ContractContext, symbol: str, body: List[ast.stmt]
    ) -> Iterable[Finding]:
        terminated_at: Optional[ast.stmt] = None
        for stmt in body:
            if terminated_at is not None:
                yield Finding(
                    code=self.rule.code,
                    message="unreachable: execution cannot continue past "
                    f"the {type(terminated_at).__name__.lower()} on line "
                    f"{ctx.map_line(terminated_at.lineno)}",
                    severity=self.rule.default_severity,
                    file=ctx.file,
                    line=ctx.map_line(stmt.lineno),
                    col=stmt.col_offset,
                    symbol=symbol,
                )
                break  # one finding per dead block is enough
            if isinstance(stmt, _TERMINATORS):
                terminated_at = stmt
            for attr in ("body", "orelse"):
                inner = getattr(stmt, attr, None)
                if inner:
                    yield from self._check_block(ctx, symbol, inner)


@register
class GasCeilingChecker(ContractChecker):
    rule = RuleInfo(
        code="MED008",
        name="gas-ceiling",
        family=CONTRACT_FAMILY,
        default_severity=Severity.ERROR,
        summary="static worst-case gas estimate exceeds the configured "
        "ceiling (only runs when a ceiling is set)",
    )

    def check(self, ctx: ContractContext) -> Iterable[Finding]:
        if ctx.max_gas is None:
            return
        estimator = GasEstimator(ctx.functions)
        for name, cost in estimator.estimate_all().items():
            if cost > ctx.max_gas:
                func = ctx.functions[name]
                yield Finding(
                    code=self.rule.code,
                    message=f"worst-case gas {format_gas(cost)} exceeds the "
                    f"ceiling {format_gas(ctx.max_gas)}"
                    + (
                        " (unbounded: recursion or VM-limit loops)"
                        if math.isinf(cost)
                        else ""
                    ),
                    severity=self.rule.default_severity,
                    file=ctx.file,
                    line=ctx.map_line(func.lineno),
                    col=func.col_offset,
                    symbol=name,
                )


@register
class DisallowedSyntaxChecker(ContractChecker):
    rule = RuleInfo(
        code="MED009",
        name="disallowed-syntax",
        family=CONTRACT_FAMILY,
        default_severity=Severity.ERROR,
        summary="syntax outside the MedScript subset (imports, attribute "
        "access, comprehensions, try/except, ...)",
    )

    def check(self, ctx: ContractContext) -> Iterable[Finding]:
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.Assign)):
                continue
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
                continue  # module docstring
            yield self._finding(
                ctx, node, "", f"disallowed top-level statement "
                f"({self._label(node)})"
            )
        for name, func in _walk_functions(ctx):
            if func.args.vararg or func.args.kwarg or func.args.kwonlyargs:
                yield self._finding(
                    ctx, func, name,
                    "only plain positional parameters are allowed",
                )
            for node in ast.walk(func):
                if isinstance(node, tuple(_DISALLOWED_NODE_LABELS)):
                    yield self._finding(
                        ctx, node, name,
                        f"disallowed syntax: {self._label(node)}",
                    )
                elif isinstance(node, ast.FunctionDef) and node is not func:
                    yield self._finding(
                        ctx, node, name, "nested functions are not allowed"
                    )

    @staticmethod
    def _label(node: ast.AST) -> str:
        return _DISALLOWED_NODE_LABELS.get(type(node), type(node).__name__)

    def _finding(
        self, ctx: ContractContext, node: ast.AST, symbol: str, message: str
    ) -> Finding:
        return Finding(
            code=self.rule.code,
            message=message,
            severity=self.rule.default_severity,
            file=ctx.file,
            line=ctx.map_line(getattr(node, "lineno", 1)),
            col=getattr(node, "col_offset", 0),
            symbol=symbol,
        )


@register
class UndefinedNameChecker(ContractChecker):
    rule = RuleInfo(
        code="MED010",
        name="undefined-name",
        family=CONTRACT_FAMILY,
        default_severity=Severity.ERROR,
        summary="read of a name that is never bound in the function, "
        "constants, builtins, or host functions",
    )

    def check(self, ctx: ContractContext) -> Iterable[Finding]:
        for name, func in _walk_functions(ctx):
            known = _known_names(ctx, func)
            call_targets = {
                node.func
                for node in ast.walk(func)
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            }
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id not in known
                    and node.id not in FORBIDDEN_NAMES  # MED001's job
                    and node not in call_targets  # MED006's job
                ):
                    yield Finding(
                        code=self.rule.code,
                        message=f"name {node.id!r} is never bound; the VM "
                        "would raise at runtime on every node",
                        severity=self.rule.default_severity,
                        file=ctx.file,
                        line=ctx.map_line(node.lineno),
                        col=node.col_offset,
                        symbol=name,
                    )
