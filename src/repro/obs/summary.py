"""Per-scope breakdown of a JSON-lines trace.

Usage::

    python -m repro.obs.summary trace.jsonl [--json] [--sort wall|count|energy]

Groups spans by name and reports, per scope: call count, total/mean/p95
wall-clock milliseconds, total simulated seconds (when the tracer was bound
to a kernel), summed resource attributes (``gas``, ``hashes``, ``bytes``,
``flops``) and the energy those imply under the default
:class:`~repro.sim.metrics.EnergyModel`.  This is how E4/E8-style claims
become inspectable per stage instead of only as end-of-run totals.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.export import read_trace_jsonl
from repro.obs.tracer import Span
from repro.sim.metrics import EnergyModel

RESOURCE_ATTRS = ("gas", "hashes", "bytes", "flops")

_SORT_KEYS = {
    "wall": "wall_total_s",
    "count": "count",
    "energy": "energy_j",
    "sim": "sim_total_s",
}


def summarize(
    spans: Sequence[Span], energy_model: Optional[EnergyModel] = None
) -> List[Dict[str, Any]]:
    """Aggregate spans by name into one breakdown row per scope."""
    energy_model = energy_model or EnergyModel()
    groups: Dict[str, List[Span]] = {}
    for span in spans:
        groups.setdefault(span.name, []).append(span)
    rows: List[Dict[str, Any]] = []
    for name in sorted(groups):
        members = groups[name]
        walls = sorted(span.wall_s for span in members)
        rank = min(len(walls) - 1, int(round(0.95 * (len(walls) - 1))))
        resources = {
            attr: sum(_number(span.attrs.get(attr)) for span in members)
            for attr in RESOURCE_ATTRS
        }
        rows.append(
            {
                "scope": name,
                "count": len(members),
                "wall_total_s": sum(walls),
                "wall_mean_s": sum(walls) / len(walls),
                "wall_p95_s": walls[rank],
                "sim_total_s": sum(span.sim_s for span in members),
                **resources,
                "energy_j": energy_model.energy_joules(
                    hashes=resources["hashes"],
                    gas=resources["gas"],
                    bytes_transferred=resources["bytes"],
                    flops=resources["flops"],
                ),
            }
        )
    return rows


def _number(value: Any) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0


def render(rows: Sequence[Dict[str, Any]]) -> str:
    """Plain-text aligned breakdown table."""
    headers = [
        "scope", "count", "wall total (ms)", "wall mean (ms)", "wall p95 (ms)",
        "sim total (s)", "gas", "flops", "energy (J)",
    ]
    body = [
        [
            row["scope"],
            str(row["count"]),
            f"{row['wall_total_s'] * 1000:.3f}",
            f"{row['wall_mean_s'] * 1000:.3f}",
            f"{row['wall_p95_s'] * 1000:.3f}",
            f"{row['sim_total_s']:.3f}",
            f"{row['gas']:g}",
            f"{row['flops']:g}",
            f"{row['energy_j']:.3g}",
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in body))
        if body
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(headers[i].ljust(widths[i]) for i in range(len(headers)))]
    lines.append("  ".join("-" * width for width in widths))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(line))))
    return "\n".join(lines)


def main(argv: Any = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.summary",
        description="Per-scope latency/energy breakdown of a span trace.",
    )
    parser.add_argument("trace", help="JSON-lines trace file (one span per line)")
    parser.add_argument("--json", action="store_true",
                        help="emit the breakdown as JSON instead of a table")
    parser.add_argument("--sort", choices=sorted(_SORT_KEYS), default="wall",
                        help="row ordering (default: total wall time)")
    args = parser.parse_args(argv)
    try:
        spans = read_trace_jsonl(args.trace)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    rows = summarize(spans)
    rows.sort(key=lambda row: row[_SORT_KEYS[args.sort]], reverse=True)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(f"{len(spans)} span(s), {len(rows)} scope(s) — {args.trace}")
        print(render(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
