"""Structured tracing with dual clocks: simulated time and wall-clock time.

The paper's argument is about *where* work happens — duplicated contract
execution on every node (§I), compute moved to data instead of data to
compute (§IV).  This tracer makes that placement visible: every span records
which operation ran, under which parent, for how long in real time, and (when
a simulation kernel is bound) at what simulated time.

Design constraints:

- **Near-zero overhead when disabled.**  Tracing is off by default;
  :func:`trace_span` then returns a shared no-op span without allocating a
  real :class:`Span`, so instrumented hot paths cost one global read and one
  dict build per call.
- **Context-propagated nesting.**  The active span is tracked in a
  ``contextvars.ContextVar``, so parent/child links are correct across
  nested ``with`` blocks and across executor worker threads (each thread
  sees its own active-span chain).
- **Cross-process portability.**  :class:`Span` is a plain dataclass of
  primitives, picklable, with ids unique across processes (the pid is part
  of the id), so ``parallel.Executor`` workers can ship their spans back to
  the coordinator and :meth:`Tracer.adopt` can stitch them under the
  submitting span.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

_SPAN_IDS = itertools.count(1)


def _new_span_id() -> str:
    """Process-unique, cross-process-collision-free span id."""
    return f"{os.getpid():x}-{next(_SPAN_IDS):x}"


@dataclass
class Span:
    """One completed (or in-flight) traced operation."""

    name: str
    span_id: str
    parent_id: Optional[str] = None
    start_wall_s: float = 0.0
    end_wall_s: float = 0.0
    start_sim_s: Optional[float] = None
    end_sim_s: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0

    @property
    def wall_s(self) -> float:
        return max(0.0, self.end_wall_s - self.start_wall_s)

    @property
    def sim_s(self) -> float:
        if self.start_sim_s is None or self.end_sim_s is None:
            return 0.0
        return max(0.0, self.end_sim_s - self.start_sim_s)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall_s": self.start_wall_s,
            "end_wall_s": self.end_wall_s,
            "wall_s": self.wall_s,
            "start_sim_s": self.start_sim_s,
            "end_sim_s": self.end_sim_s,
            "attrs": self.attrs,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start_wall_s=data.get("start_wall_s", 0.0),
            end_wall_s=data.get("end_wall_s", 0.0),
            start_sim_s=data.get("start_sim_s"),
            end_sim_s=data.get("end_sim_s"),
            attrs=dict(data.get("attrs") or {}),
            pid=data.get("pid", 0),
        )


# The active span id for the *current* execution context (thread/task).
_ACTIVE_SPAN: ContextVar[Optional[str]] = ContextVar("repro_active_span", default=None)


class _ActiveSpan:
    """Context manager recording one span on enter/exit."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._token = None

    @property
    def span_id(self) -> str:
        return self._span.span_id

    def set_attr(self, key: str, value: Any) -> None:
        self._span.attrs[key] = value

    def set_attrs(self, **attrs: Any) -> None:
        self._span.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        span = self._span
        if span.parent_id is None:
            span.parent_id = _ACTIVE_SPAN.get()
        self._token = _ACTIVE_SPAN.set(span.span_id)
        source = self._tracer.sim_time_source
        if source is not None:
            span.start_sim_s = source()
        span.start_wall_s = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        span = self._span
        span.end_wall_s = perf_counter()
        source = self._tracer.sim_time_source
        if source is not None:
            span.end_sim_s = source()
        if self._token is not None:
            _ACTIVE_SPAN.reset(self._token)
            self._token = None
        self._tracer.spans.append(span)


class _NoopSpan:
    """Shared do-nothing span handle returned while tracing is disabled."""

    __slots__ = ()
    span_id = None

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def set_attrs(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects spans; bind ``sim_time_source`` to also record kernel time."""

    def __init__(self, sim_time_source: Optional[Callable[[], float]] = None):
        self.spans: List[Span] = []
        self.sim_time_source = sim_time_source

    def span(
        self, name: str, parent_id: Optional[str] = None, **attrs: Any
    ) -> _ActiveSpan:
        """Open a span; nests under the context's active span by default."""
        span = Span(
            name=name,
            span_id=_new_span_id(),
            parent_id=parent_id,
            attrs=attrs,
            pid=os.getpid(),
        )
        return _ActiveSpan(self, span)

    def bind_kernel(self, kernel: Any) -> None:
        """Record simulated time from a :class:`repro.sim.kernel.Kernel`."""
        self.sim_time_source = lambda: kernel.now

    def adopt(self, spans: Iterable[Span], parent_id: Optional[str] = None) -> None:
        """Absorb spans shipped from a worker, re-parenting orphan roots.

        Workers (other threads/processes) have no view of the coordinator's
        span stack; their root spans arrive with ``parent_id=None`` and are
        attached under ``parent_id`` so the trace tree stays connected.
        """
        for span in spans:
            if span.parent_id is None:
                span.parent_id = parent_id
            self.spans.append(span)

    def export(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]

    def clear(self) -> None:
        self.spans = []


# -- module-level tracer management ------------------------------------------
#
# Two layers: a process-wide default (set by ``enable``/``disable``) and a
# per-context override (used by executor workers to capture their own spans
# without racing the coordinator's tracer).

_default_tracer: Optional[Tracer] = None
_override_tracer: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_tracer_override", default=None
)


def current_tracer() -> Optional[Tracer]:
    """The tracer in effect for this context, or None when disabled."""
    override = _override_tracer.get()
    if override is not None:
        return override
    return _default_tracer


def enable(sim_time_source: Optional[Callable[[], float]] = None) -> Tracer:
    """Install (and return) a fresh process-wide tracer."""
    global _default_tracer
    _default_tracer = Tracer(sim_time_source)
    return _default_tracer


def disable() -> None:
    """Drop the process-wide tracer; :func:`trace_span` becomes a no-op."""
    global _default_tracer
    _default_tracer = None


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install an existing tracer process-wide (None to disable)."""
    global _default_tracer
    _default_tracer = tracer


@contextmanager
def tracer_override(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Temporarily route this context's spans to ``tracer``."""
    token = _override_tracer.set(tracer)
    try:
        yield tracer
    finally:
        _override_tracer.reset(token)


@contextmanager
def collect_spans(
    sim_time_source: Optional[Callable[[], float]] = None,
) -> Iterator[Tracer]:
    """Capture this context's spans into a fresh, isolated tracer.

    The serving layer uses this per request: the handler's spans land in the
    yielded tracer (never the process default), so they can be shipped back
    to the caller in the RPC response envelope and re-parented there via
    :meth:`Tracer.adopt` — cross-process trace propagation without any
    shared collector.
    """
    collector = Tracer(sim_time_source)
    token = _override_tracer.set(collector)
    # The caller's active-span chain belongs to the *other* side of the
    # boundary; detach it so the collected roots arrive with parent_id=None
    # and adopt() can re-parent them deterministically.
    span_token = _ACTIVE_SPAN.set(None)
    try:
        yield collector
    finally:
        _ACTIVE_SPAN.reset(span_token)
        _override_tracer.reset(token)


def tracing_enabled() -> bool:
    return current_tracer() is not None


def current_span_id() -> Optional[str]:
    """Id of the innermost open span in this context (None outside spans)."""
    return _ACTIVE_SPAN.get()


def trace_span(name: str, **attrs: Any):
    """Open a span on the current tracer, or a shared no-op when disabled.

    This is the one instrumentation entry point; hot paths call it
    unconditionally::

        with trace_span("contract.apply", kind=tx.kind) as span:
            receipt = ...
            span.set_attr("gas", receipt.gas_used)
    """
    tracer = current_tracer()
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)
