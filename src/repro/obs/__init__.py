"""repro.obs — structured tracing and metrics export.

The observability layer for the reproduction: spans with both simulated and
wall-clock time (``tracer``), JSON-lines and Prometheus exporters
(``export``), and a per-scope breakdown CLI (``summary``).

Quick start::

    from repro import obs

    tracer = obs.enable()                 # default is a no-op tracer
    with obs.trace_span("my.phase", shard=3) as span:
        ...
        span.set_attr("gas", 1234)
    obs.write_trace_jsonl(tracer, "trace.jsonl")
    # then: python -m repro.obs.summary trace.jsonl
"""

from repro.obs.export import (
    prometheus_text,
    read_trace_jsonl,
    sanitize_metric_name,
    span_tree,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_span_id,
    current_tracer,
    disable,
    enable,
    set_tracer,
    trace_span,
    tracer_override,
    tracing_enabled,
)

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "current_span_id",
    "current_tracer",
    "disable",
    "enable",
    "prometheus_text",
    "read_trace_jsonl",
    "sanitize_metric_name",
    "set_tracer",
    "span_tree",
    "trace_span",
    "tracer_override",
    "tracing_enabled",
    "write_prometheus",
    "write_trace_jsonl",
]
