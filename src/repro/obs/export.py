"""Exporters: JSON-lines trace files and Prometheus-style metrics text.

Two sinks, two audiences:

- ``write_trace_jsonl`` persists spans one-JSON-object-per-line so traces
  stream, concatenate, and grep cleanly; ``python -m repro.obs.summary``
  reads this format back.
- ``prometheus_text`` renders a :class:`~repro.sim.metrics.MetricsRegistry`
  in the Prometheus text exposition format (counters with a ``scope`` label,
  histograms as summaries with quantiles), so a scrape endpoint or a
  file-based textfile collector can ingest experiment metrics unchanged.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.obs.tracer import Span, Tracer
from repro.sim.metrics import MetricsRegistry

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (0.5, 0.9, 0.99)


def _spans_of(source: Union[Tracer, Iterable[Span]]) -> List[Span]:
    if isinstance(source, Tracer):
        return list(source.spans)
    return list(source)


def write_trace_jsonl(source: Union[Tracer, Iterable[Span]], path: str) -> int:
    """Write spans as JSON lines; returns the number of spans written."""
    spans = _spans_of(source)
    with open(path, "w") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return len(spans)


def read_trace_jsonl(path: str) -> List[Span]:
    """Load spans back from a JSON-lines trace file (blank lines skipped)."""
    spans: List[Span] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Make a counter/histogram name legal for Prometheus exposition."""
    cleaned = _METRIC_NAME_RE.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return prefix + cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every counter and histogram in Prometheus text format."""
    lines: List[str] = []
    snapshot = registry.snapshot()
    by_name: Dict[str, List[Any]] = {}
    for name, scope, value in snapshot["counters"]:
        by_name.setdefault(name, []).append((scope, value))
    for name in sorted(by_name):
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        for scope, value in sorted(by_name[name]):
            label = f'{{scope="{_escape_label(scope)}"}}' if scope else ""
            lines.append(f"{metric}{label} {value:g}")
    for name in sorted(snapshot["histograms"]):
        values = snapshot["histograms"][name]
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        ordered = sorted(values)
        for quantile in _QUANTILES:
            rank = min(len(ordered) - 1, int(round(quantile * (len(ordered) - 1))))
            sample = ordered[rank] if ordered else 0.0
            lines.append(f'{metric}{{quantile="{quantile}"}} {sample:g}')
        lines.append(f"{metric}_sum {sum(values):g}")
        lines.append(f"{metric}_count {len(values)}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(prometheus_text(registry))


def span_tree(spans: Sequence[Span]) -> Dict[str, List[Span]]:
    """Children-by-parent-id index ('' keys the roots)."""
    tree: Dict[str, List[Span]] = {}
    for span in spans:
        tree.setdefault(span.parent_id or "", []).append(span)
    return tree
