"""Query services: NLP-lite parsing, query vectors, decompose/compose."""

from repro.query.compose import SiteTask, compose, decompose
from repro.query.parser import parse_query
from repro.query.vector import INTENTS, MERGEABLE_INTENTS, QueryVector

__all__ = [
    "INTENTS",
    "MERGEABLE_INTENTS",
    "QueryVector",
    "SiteTask",
    "compose",
    "decompose",
    "parse_query",
]
