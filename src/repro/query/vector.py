"""Query vectors.

Section IV: users submit requests "in the form of query vector which
consists of various parameters expressing the users' query interest"; the
system maps the vector into smart contracts.  A :class:`QueryVector` is the
typed, canonical form every request takes after parsing and before
decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.errors import QueryError
from repro.common.hashing import hash_value_hex

#: Intents the engine can decompose and compose.
INTENTS = (
    "count",
    "prevalence",
    "mean",
    "histogram",
    "describe",
    "train",
    "evaluate",
    "cluster",
    "compare",
    "fetch",
)

#: Intents whose per-site partial results merge losslessly.
MERGEABLE_INTENTS = frozenset(
    {"count", "prevalence", "mean", "histogram", "train", "compare", "evaluate"}
)


@dataclass
class QueryVector:
    """Structured research query."""

    intent: str
    outcome: str = ""          # e.g. "stroke" for prevalence/train
    target_field: str = ""     # dotted path, e.g. "vitals.sbp", for mean/histogram
    filters: Dict[str, Any] = field(default_factory=dict)
    model: str = "logistic"    # for intent == "train"
    rounds: int = 10           # federated rounds for intent == "train"
    bins: int = 10             # for intent == "histogram"
    value_range: Optional[List[float]] = None  # [low, high] for histogram
    purpose: str = "research"
    requested_schema: List[str] = field(default_factory=list)  # for "fetch"
    group_field: str = ""                # for "compare": dotted path or "sex"
    group_values: List[Any] = field(default_factory=list)  # the two groups

    def validate(self) -> None:
        if self.intent not in INTENTS:
            raise QueryError(f"unknown intent {self.intent!r}")
        if self.intent in ("prevalence", "train", "evaluate") and not self.outcome:
            raise QueryError(f"intent {self.intent!r} requires an outcome")
        if self.intent in ("mean", "histogram", "describe", "compare") and not self.target_field:
            raise QueryError(f"intent {self.intent!r} requires a target field")
        if self.intent == "histogram" and (
            self.value_range is None or len(self.value_range) != 2
        ):
            raise QueryError("histogram requires value_range=[low, high]")
        if self.intent == "compare":
            if not self.group_field or len(self.group_values) != 2:
                raise QueryError(
                    "compare requires group_field and exactly two group_values"
                )

    @property
    def query_id(self) -> str:
        """Content-addressed id (stable across nodes)."""
        return "q-" + hash_value_hex(
            {
                "intent": self.intent,
                "outcome": self.outcome,
                "target_field": self.target_field,
                "filters": self.filters,
                "model": self.model,
                "rounds": self.rounds,
                "bins": self.bins,
                "value_range": self.value_range,
                "purpose": self.purpose,
                "requested_schema": self.requested_schema,
                "group_field": self.group_field,
                "group_values": self.group_values,
            }
        )[:16]

    def tool_id(self) -> str:
        """The site tool this intent dispatches onto."""
        mapping = {
            "count": "count",
            "prevalence": "prevalence",
            "mean": "numeric_summary",
            "histogram": "histogram",
            "describe": "describe",
            "train": "local_train",
            "evaluate": "evaluate_model",
            "cluster": "cluster",
            "compare": "compare_groups",
        }
        if self.intent not in mapping:
            raise QueryError(f"intent {self.intent!r} has no site tool (use HIE fetch)")
        return mapping[self.intent]

    def tool_params(self) -> Dict[str, Any]:
        """Parameters handed to the site tool (predicates pushed down)."""
        params: Dict[str, Any] = {"filters": dict(self.filters)}
        if self.intent == "prevalence":
            params["outcome"] = self.outcome
        elif self.intent == "mean":
            params["field"] = self.target_field
        elif self.intent == "describe":
            params["field"] = self.target_field
        elif self.intent == "histogram":
            params["field"] = self.target_field
            params["bins"] = self.bins
            params["low"], params["high"] = self.value_range
        elif self.intent in ("train", "evaluate"):
            params["outcome"] = self.outcome
            params["model"] = self.model
        elif self.intent == "cluster":
            params["k"] = self.bins if self.bins else 3
        elif self.intent == "compare":
            params["field"] = self.target_field
            params["group_field"] = self.group_field
            params["group_values"] = list(self.group_values)
        return params
