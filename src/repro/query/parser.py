"""Medical research query parser (NLP-lite).

The paper lists "convert and map NLP to the query vector" as open research
(section IV); the reproduction uses a deterministic keyword/synonym grammar
that covers the query families the evaluation needs:

- "how many patients have diabetes at least 60 years old"
- "what is the prevalence of stroke among smokers"
- "average systolic blood pressure for women over 50"
- "histogram of bmi between 15 and 50"
- "train a stroke model" / "train an mlp model for diabetes"
- "cluster patients into 4 subtypes"
"""

from __future__ import annotations

import re
from typing import Any, Dict, Optional

from repro.common.errors import QueryError
from repro.query.vector import QueryVector

_OUTCOME_SYNONYMS = {
    "stroke": "stroke",
    "strokes": "stroke",
    "cva": "stroke",
    "diabetes": "diabetes",
    "diabetic": "diabetes",
    "t2d": "diabetes",
    "cancer": "cancer",
    "tumor": "cancer",
    "malignancy": "cancer",
}

_FIELD_SYNONYMS = {
    "systolic blood pressure": "vitals.sbp",
    "systolic": "vitals.sbp",
    "sbp": "vitals.sbp",
    "blood pressure": "vitals.sbp",
    "diastolic": "vitals.dbp",
    "dbp": "vitals.dbp",
    "bmi": "vitals.bmi",
    "body mass index": "vitals.bmi",
    "heart rate": "vitals.heart_rate",
    "glucose": "labs.glucose",
    "blood sugar": "labs.glucose",
    "ldl": "labs.ldl",
    "cholesterol": "labs.ldl",
    "hdl": "labs.hdl",
    "hba1c": "labs.hba1c",
    "a1c": "labs.hba1c",
    "creatinine": "labs.creatinine",
    "alcohol": "lifestyle.alcohol_units_week",
    "exercise": "lifestyle.exercise_hours_week",
}

#: Longest-first so "systolic blood pressure" wins over "blood pressure".
_FIELD_KEYS = sorted(_FIELD_SYNONYMS, key=len, reverse=True)

_INTENT_PATTERNS = (
    ("compare", r"\bcompare\b|\bdifference in\b|\bdiffer between\b"),
    ("prevalence", r"\bprevalence|\bhow common|\brate of\b"),
    ("count", r"\bhow many\b|\bcount\b|\bnumber of\b"),
    ("histogram", r"\bhistogram\b|\bdistribution of\b"),
    ("mean", r"\baverage\b|\bmean\b|\btypical\b"),
    ("describe", r"\bdescribe\b|\bsummary of\b|\bsummarize\b"),
    ("train", r"\btrain\b|\bbuild a? ?model\b|\bpredict\b|\blearn\b"),
    ("cluster", r"\bcluster\b|\bsubtypes?\b|\bstratify\b"),
)


def _detect_intent(text: str) -> str:
    for intent, pattern in _INTENT_PATTERNS:
        if re.search(pattern, text):
            return intent
    raise QueryError(f"could not detect an intent in {text!r}")


def _detect_outcome(text: str) -> str:
    for synonym, outcome in _OUTCOME_SYNONYMS.items():
        if re.search(rf"\b{re.escape(synonym)}\b", text):
            return outcome
    return ""


def _detect_field(text: str) -> str:
    for key in _FIELD_KEYS:
        if key in text:
            return _FIELD_SYNONYMS[key]
    return ""


def _detect_filters(text: str) -> Dict[str, Any]:
    filters: Dict[str, Any] = {}
    age_min = re.search(
        r"(?:over|older than|at least|>=?)\s*(\d{2})\b(?!\s*and\s*\d)", text
    )
    if age_min:
        filters["age_min"] = int(age_min.group(1))
    age_max = re.search(r"(?:under|younger than|at most|<=?)\s*(\d{2})\b", text)
    if age_max:
        filters["age_max"] = int(age_max.group(1))
    between = re.search(r"aged?\s*(\d{2})\s*(?:-|to)\s*(\d{2})", text)
    if between:
        filters["age_min"] = int(between.group(1))
        filters["age_max"] = int(between.group(2))
    if re.search(r"\bnon-?smokers?\b", text):
        filters["lifestyle.smoker"] = 0
    elif re.search(r"\bsmokers?\b|\bsmoking\b", text):
        filters["lifestyle.smoker"] = 1
    if re.search(r"\bwomen\b|\bfemales?\b", text):
        filters["sex"] = "F"
    elif re.search(r"\bmen\b|\bmales?\b", text):
        filters["sex"] = "M"
    # The query text is lowercased upstream, so match codes like "i63.9".
    diagnosis = re.search(r"\bdiagnos(?:ed with|is)\s+([a-z]\d{2}\.?\d*)", text)
    if diagnosis:
        filters["diagnosis"] = diagnosis.group(1).upper()
    return filters


def parse_query(text: str, purpose: str = "research") -> QueryVector:
    """Parse a natural-language research question into a query vector."""
    if not text or not text.strip():
        raise QueryError("empty query text")
    lowered = text.lower().strip()
    intent = _detect_intent(lowered)
    outcome = _detect_outcome(lowered)
    target_field = _detect_field(lowered)
    filters = _detect_filters(lowered)
    vector = QueryVector(
        intent=intent,
        outcome=outcome,
        target_field=target_field,
        filters=filters,
        purpose=purpose,
    )
    # Intent-specific defaults and clean-ups.
    if intent == "count" and outcome and not target_field:
        vector.filters[f"has_outcome_{outcome}"] = 1
        vector.outcome = ""
    if intent == "histogram":
        value_range = re.search(
            r"between\s+(\d+(?:\.\d+)?)\s+and\s+(\d+(?:\.\d+)?)", lowered
        )
        if value_range:
            vector.value_range = [
                float(value_range.group(1)),
                float(value_range.group(2)),
            ]
        else:
            vector.value_range = _default_range(vector.target_field)
        bins = re.search(r"(\d+)\s+bins?", lowered)
        if bins:
            vector.bins = int(bins.group(1))
    if intent == "train":
        if re.search(r"\bmlp\b|\bneural\b|\bdeep\b", lowered):
            vector.model = "mlp"
        rounds = re.search(r"(\d+)\s+rounds?", lowered)
        if rounds:
            vector.rounds = int(rounds.group(1))
    if intent == "cluster":
        k = re.search(r"(\d+)\s+(?:clusters?|subtypes?|groups?)", lowered)
        vector.bins = int(k.group(1)) if k else 3
    if intent == "compare":
        vector.group_field, vector.group_values = _detect_groups(lowered)
        # Group membership must not also appear as a filter.
        vector.filters.pop(vector.group_field, None)
        if vector.group_field == "sex":
            vector.filters.pop("sex", None)
    vector.validate()
    return vector


#: (regex over the lowered text) -> (group_field, [group_a, group_b])
_GROUP_PAIRS = (
    (r"\bmen\b.*\bwomen\b|\bmales?\b.*\bfemales?\b", ("sex", ["M", "F"])),
    (r"\bwomen\b.*\bmen\b|\bfemales?\b.*\bmales?\b", ("sex", ["F", "M"])),
    (r"\bnon-?smokers\b.*\bsmokers\b", ("lifestyle.smoker", [0, 1])),
    (r"\bsmokers\b", ("lifestyle.smoker", [1, 0])),
    (r"\bdiabetics?\b", ("outcomes.diabetes", [1, 0])),
)


def _detect_groups(text: str):
    for pattern, (field, values) in _GROUP_PAIRS:
        if re.search(pattern, text):
            return field, list(values)
    raise QueryError(
        "compare query needs recognizable groups "
        "(men/women, smokers/non-smokers, diabetics/non-diabetics)"
    )


_DEFAULT_RANGES = {
    "vitals.sbp": [90.0, 220.0],
    "vitals.dbp": [50.0, 130.0],
    "vitals.bmi": [15.0, 55.0],
    "vitals.heart_rate": [40.0, 140.0],
    "labs.glucose": [60.0, 350.0],
    "labs.ldl": [40.0, 250.0],
    "labs.hdl": [20.0, 110.0],
    "labs.hba1c": [4.0, 13.0],
    "labs.creatinine": [0.4, 4.0],
}


def _default_range(field: str) -> Optional[list]:
    return list(_DEFAULT_RANGES.get(field, [0.0, 100.0]))
