"""Decomposition of a query vector into per-site tasks, and composition of
per-site partial results into one global answer (Figures 5/6).

Composition is intent-specific; for every mergeable intent the composed
answer is mathematically identical to running the query over the pooled
data (property-tested), which is what lets the platform answer global
questions without moving records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.analytics.models import average_params
from repro.common.errors import QueryError
from repro.datamgmt.virtual import DatasetRef, NumericSummary
from repro.query.vector import QueryVector


@dataclass
class SiteTask:
    """One decomposed unit of work for one site."""

    task_id: str
    site: str
    dataset_ids: List[str]
    tool_id: str
    params: Dict[str, Any]
    purpose: str


def decompose(
    vector: QueryVector,
    catalog: Sequence[DatasetRef],
    extra_params: Optional[Dict[str, Any]] = None,
) -> List[SiteTask]:
    """Split a query into one task per hosting site.

    ``catalog`` lists every registered dataset (from the on-chain data
    registry); each site receives one task covering all its datasets, with
    the query's predicates pushed down inside the tool params.
    """
    vector.validate()
    by_site: Dict[str, List[str]] = {}
    for ref in catalog:
        by_site.setdefault(ref.site, []).append(ref.dataset_id)
    if not by_site:
        raise QueryError("no datasets in the catalog")
    # Catalog-aware pruning (the paper's "optimized query vector", §V):
    # a site-equality predicate means only that site's data can match, so
    # no task is dispatched anywhere else.
    wanted_site = vector.filters.get("site")
    if wanted_site is not None:
        if wanted_site not in by_site:
            raise QueryError(f"no datasets registered at site {wanted_site!r}")
        by_site = {wanted_site: by_site[wanted_site]}
    tool_id = vector.tool_id()
    tasks = []
    for index, site in enumerate(sorted(by_site)):
        params = vector.tool_params()
        if extra_params:
            params.update(extra_params)
        tasks.append(
            SiteTask(
                task_id=f"{vector.query_id}-s{index}",
                site=site,
                dataset_ids=sorted(by_site[site]),
                tool_id=tool_id,
                params=params,
                purpose=vector.purpose,
            )
        )
    return tasks


def compose(vector: QueryVector, partials: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-site partial results into the global answer."""
    vector.validate()
    partials = [partial for partial in partials if partial is not None]
    if not partials:
        raise QueryError("no partial results to compose")
    if vector.intent == "count":
        return {"count": sum(int(partial["count"]) for partial in partials)}
    if vector.intent == "prevalence":
        n = sum(int(partial["n"]) for partial in partials)
        positives = sum(int(partial["positives"]) for partial in partials)
        return {
            "outcome": vector.outcome,
            "n": n,
            "positives": positives,
            "prevalence": positives / n if n else 0.0,
        }
    if vector.intent == "mean":
        merged = NumericSummary()
        for partial in partials:
            merged = merged.merge(NumericSummary.from_dict_parts(partial["summary"]))
        return {"field": vector.target_field, **merged.to_dict()}
    if vector.intent == "histogram":
        counts = None
        for partial in partials:
            values = list(partial["counts"])
            counts = values if counts is None else [a + b for a, b in zip(counts, values)]
        return {
            "field": vector.target_field,
            "low": partials[0]["low"],
            "high": partials[0]["high"],
            "counts": counts or [],
        }
    if vector.intent == "describe":
        # Median/sd of medians are approximations; count/mean/min/max exact.
        total_n = sum(partial["stats"]["n"] for partial in partials)
        if total_n == 0:
            return {"field": vector.target_field, "stats": {"n": 0}}
        mean = (
            sum(partial["stats"]["mean"] * partial["stats"]["n"] for partial in partials)
            / total_n
        )
        return {
            "field": vector.target_field,
            "stats": {
                "n": total_n,
                "mean": mean,
                "min": min(partial["stats"]["min"] for partial in partials),
                "max": max(partial["stats"]["max"] for partial in partials),
                "median_approx": (
                    sum(
                        partial["stats"]["median"] * partial["stats"]["n"]
                        for partial in partials
                    )
                    / total_n
                ),
            },
        }
    if vector.intent == "train":
        param_sets = [
            [np.asarray(p, dtype=float) for p in partial["params"]]
            for partial in partials
            if partial.get("n", 0) > 0
        ]
        weights = [float(partial["n"]) for partial in partials if partial.get("n", 0) > 0]
        if not param_sets:
            raise QueryError("no site produced a model update")
        merged = average_params(param_sets, weights)
        return {
            "model": vector.model,
            "params": [p.tolist() for p in merged],
            "n": int(sum(weights)),
            "mean_local_loss": float(
                np.average(
                    [partial["loss"] for partial in partials if partial.get("n", 0) > 0],
                    weights=weights,
                )
            ),
        }
    if vector.intent == "evaluate":
        total_n = sum(float(partial.get("n", 0)) for partial in partials)
        if total_n <= 0:
            raise QueryError("no evaluation samples at any site")
        merged_metrics = {}
        for key in ("loss", "accuracy", "auc"):
            merged_metrics[key] = float(
                sum(
                    partial[key] * partial.get("n", 0) for partial in partials
                )
                / total_n
            )
        return {
            "outcome": vector.outcome,
            "n": int(total_n),
            "per_site_n": [int(partial.get("n", 0)) for partial in partials],
            **merged_metrics,
        }
    if vector.intent == "compare":
        import math

        merged = [NumericSummary(), NumericSummary()]
        for partial in partials:
            for index in range(2):
                merged[index] = merged[index].merge(
                    NumericSummary.from_dict_parts(partial["groups"][index])
                )
        a, b = merged
        if a.count < 2 or b.count < 2:
            raise QueryError("compare needs at least 2 samples in each group")
        # Welch's t from merged moments (sample variances).
        var_a = a.variance * a.count / (a.count - 1)
        var_b = b.variance * b.count / (b.count - 1)
        denom = math.sqrt(var_a / a.count + var_b / b.count)
        t_statistic = (a.mean - b.mean) / denom if denom else 0.0
        from repro.analytics.stats import normal_sf

        p_value = 2.0 * normal_sf(abs(t_statistic))
        return {
            "field": vector.target_field,
            "group_field": vector.group_field,
            "group_values": list(vector.group_values),
            "groups": [a.to_dict(), b.to_dict()],
            "mean_difference": a.mean - b.mean,
            "t_statistic": t_statistic,
            "p_value": p_value,
        }
    if vector.intent == "cluster":
        # Clusters are site-local structure; report them side by side.
        return {
            "k": partials[0].get("k"),
            "per_site": list(partials),
        }
    raise QueryError(f"cannot compose intent {vector.intent!r}")
