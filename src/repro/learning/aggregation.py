"""Secure-style aggregation via pairwise cancelling masks.

Even parameter updates can leak information about a site's patients, so
federated systems mask them: every pair of sites derives a shared mask from
a common secret; one adds it, the other subtracts it, and the masks cancel
exactly in the aggregate.  The server learns only the sum — the property
tested in ``tests/learning``.

(Genuine secure aggregation adds dropout recovery and key agreement; this
reproduction keeps the cancellation math, which is the behaviour the
architecture relies on.)
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analytics.models import Params
from repro.common.errors import LearningError
from repro.common.hashing import sha256


def _pair_seed(site_a: str, site_b: str, round_index: int) -> int:
    """Symmetric deterministic seed for a site pair and round."""
    first, second = sorted((site_a, site_b))
    digest = sha256(f"mask|{first}|{second}|{round_index}".encode())
    return int.from_bytes(digest[:8], "big")


def _mask_like(params: Params, seed: int, scale: float = 1.0) -> Params:
    rng = np.random.default_rng(seed)
    return [rng.normal(0, scale, size=array.shape) for array in params]


def mask_update(
    site: str,
    all_sites: Sequence[str],
    params: Params,
    round_index: int,
    mask_scale: float = 1.0,
) -> Params:
    """Add this site's pairwise masks to its parameter update.

    For each peer, the lexicographically-smaller site *adds* the shared
    mask and the larger one *subtracts* it, so the sum over all sites is
    unchanged while each individual update is indistinguishable from noise.
    """
    if site not in all_sites:
        raise LearningError(f"site {site!r} not in the aggregation group")
    masked = [array.copy() for array in params]
    for peer in all_sites:
        if peer == site:
            continue
        mask = _mask_like(params, _pair_seed(site, peer, round_index), mask_scale)
        sign = 1.0 if site < peer else -1.0
        for index in range(len(masked)):
            masked[index] = masked[index] + sign * mask[index]
    return masked


def aggregate_masked(
    updates: Dict[str, Params], weights: Dict[str, float]
) -> Params:
    """Weighted mean of masked updates.

    NOTE: exact mask cancellation holds for the *unweighted sum*; weighted
    FedAvg therefore masks the already-weighted contribution.  Callers must
    pass the same weights used at masking time.
    """
    if not updates:
        raise LearningError("no updates to aggregate")
    sites = sorted(updates)
    total_weight = sum(weights[site] for site in sites)
    if total_weight <= 0:
        raise LearningError("weights must sum to a positive value")
    shapes = [array.shape for array in updates[sites[0]]]
    out: Params = [np.zeros(shape) for shape in shapes]
    for site in sites:
        for index in range(len(out)):
            out[index] += updates[site][index]
    return [array / float(len(sites)) for array in out]


def masked_round(
    site_params: Dict[str, Params], round_index: int, mask_scale: float = 1.0
) -> Tuple[Params, Dict[str, Params]]:
    """Convenience: mask every site's update and aggregate (equal weights).

    Returns ``(aggregate, masked_updates)`` so tests can check that (a) the
    aggregate equals the plain mean and (b) each masked update differs
    substantially from the raw one.
    """
    sites = sorted(site_params)
    masked = {
        site: mask_update(site, sites, params, round_index, mask_scale)
        for site, params in site_params.items()
    }
    aggregate = aggregate_masked(masked, {site: 1.0 for site in sites})
    return aggregate, masked
