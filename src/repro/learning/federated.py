"""Federated learning over distributed hospital sites.

Implements FedAvg (McMahan et al. 2017, the paper's reference [23]) adapted
to the paper's setting: a *small number of powerful hospital servers* rather
than millions of phones (section III.C).  Raw training data never leaves a
site; only model parameters travel, and the trainer accounts every byte so
E8 can compare wire cost against the copy-all-data centralized baseline.

Variants:
- FedAvg: E local epochs per round, weighted parameter averaging;
- FedSGD: one full-batch gradient step per round (epochs=1, batch=all);
- single-shot: one round of deep local training then a single average.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analytics.models import (
    Params,
    SupervisedModel,
    average_params,
    params_size_bytes,
)
from repro.common.errors import LearningError
from repro.obs.tracer import trace_span
from repro.parallel.executor import Executor, SerialExecutor, TaskFailure, TaskSpec
from repro.sim.metrics import current_metrics

SiteData = Dict[str, Tuple[np.ndarray, np.ndarray]]
ModelFactory = Callable[[], SupervisedModel]


@dataclass
class FederatedConfig:
    """Hyper-parameters of a federated run."""

    rounds: int = 10
    local_epochs: int = 2
    lr: float = 0.1
    batch_size: int = 32
    participation: float = 1.0  # fraction of sites sampled per round
    seed: int = 0
    fedsgd: bool = False  # one full-batch step per round instead


@dataclass
class RoundRecord:
    """Telemetry for one federated round."""

    round_index: int
    participants: List[str]
    mean_local_loss: float
    bytes_on_wire: int
    eval_metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class FederatedResult:
    """Outcome of a federated training run."""

    model: SupervisedModel
    history: List[RoundRecord]
    total_bytes_on_wire: int
    total_local_flops: float

    def final_metric(self, name: str) -> float:
        if not self.history or name not in self.history[-1].eval_metrics:
            return float("nan")
        return self.history[-1].eval_metrics[name]


def _train_site_worker(
    model_factory: ModelFactory,
    global_params: Params,
    X: np.ndarray,
    y: np.ndarray,
    epochs: int,
    lr: float,
    batch_size: int,
    seed: int,
) -> Tuple[Params, float, float, int]:
    """One site's local training step, as a picklable executor task.

    Returns ``(params, loss, flops, n_samples)`` so the coordinator can do
    the weighted FedAvg reduction in deterministic (sorted-site) order.
    Under the process backend ``model_factory`` must be picklable — a
    module-level function or class, not a lambda.
    """
    with trace_span("fl.local_train", samples=len(X), epochs=epochs) as span:
        local_model = model_factory()
        local_model.set_params(global_params)
        loss = local_model.train_epochs(
            X, y, epochs=epochs, lr=lr, batch_size=batch_size, seed=seed
        )
        span.set_attr("flops", local_model.flops)
        span.set_attr("loss", loss)
    current_metrics().add("fl_local_flops", local_model.flops)
    return local_model.get_params(), loss, local_model.flops, len(X)


class FederatedTrainer:
    """Coordinates FedAvg/FedSGD rounds over per-site (X, y) shards.

    Pass ``executor`` to run per-site local training through a
    :mod:`repro.parallel` backend: each round's participants become one
    executor batch, so hospital servers train concurrently on real cores
    under :class:`~repro.parallel.ProcessExecutor`.  Local seeding is
    deterministic per round and the FedAvg reduction is ordered, so every
    backend produces bit-identical global models.
    """

    def __init__(
        self,
        model_factory: ModelFactory,
        config: Optional[FederatedConfig] = None,
        executor: Optional[Executor] = None,
    ):
        self.model_factory = model_factory
        self.config = config or FederatedConfig()
        self.executor = executor or SerialExecutor()

    def train(
        self,
        site_data: SiteData,
        eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        on_round: Optional[Callable[[RoundRecord], None]] = None,
    ) -> FederatedResult:
        """Run the configured number of rounds; returns the global model."""
        if not site_data:
            raise LearningError("no sites to train on")
        config = self.config
        rng = random.Random(config.seed)
        global_model = self.model_factory()
        global_params = global_model.get_params()
        history: List[RoundRecord] = []
        total_bytes = 0
        total_flops = 0.0
        site_names = sorted(site_data)
        with trace_span(
            "fl.train",
            rounds=config.rounds,
            sites=len(site_names),
            backend=self.executor.name,
        ) as train_span:
            for round_index in range(config.rounds):
                with trace_span("fl.round", round=round_index) as round_span:
                    participants = self._sample_participants(site_names, rng)
                    active = [
                        site
                        for site in participants
                        if len(site_data[site][0]) > 0
                    ]
                    epochs = 1 if config.fedsgd else config.local_epochs
                    specs: List[TaskSpec] = []
                    for site in active:
                        X, y = site_data[site]
                        batch = len(X) if config.fedsgd else config.batch_size
                        specs.append(
                            TaskSpec(
                                key=f"{site}/round-{round_index}",
                                fn=_train_site_worker,
                                args=(
                                    self.model_factory,
                                    global_params,
                                    X,
                                    y,
                                    epochs,
                                    config.lr,
                                    batch,
                                    config.seed * 1000 + round_index,
                                ),
                            )
                        )
                    outcomes = self.executor.map_tasks(specs)
                    collected: List[Params] = []
                    weights: List[float] = []
                    losses: List[float] = []
                    round_bytes = 0
                    for site, outcome in zip(active, outcomes):
                        if isinstance(outcome, TaskFailure):
                            raise LearningError(
                                f"local training failed at site {site!r}: "
                                f"{outcome}"
                            )
                        params, loss, flops, sample_count = outcome
                        collected.append(params)
                        weights.append(float(sample_count))
                        losses.append(loss)
                        total_flops += flops
                        # down-link (global params) + up-link (local update)
                        round_bytes += 2 * params_size_bytes(params)
                    if collected:
                        global_params = average_params(collected, weights)
                        global_model.set_params(global_params)
                    total_bytes += round_bytes
                    record = RoundRecord(
                        round_index=round_index,
                        participants=participants,
                        mean_local_loss=(
                            float(np.mean(losses)) if losses else float("nan")
                        ),
                        bytes_on_wire=round_bytes,
                    )
                    round_span.set_attr("participants", len(active))
                    round_span.set_attr("bytes", round_bytes)
                    round_span.set_attr("loss", record.mean_local_loss)
                    if eval_data is not None:
                        record.eval_metrics = global_model.evaluate(*eval_data)
                    history.append(record)
                    if on_round is not None:
                        on_round(record)
            train_span.set_attr("bytes", total_bytes)
            train_span.set_attr("flops", total_flops)
        return FederatedResult(
            model=global_model,
            history=history,
            total_bytes_on_wire=total_bytes,
            total_local_flops=total_flops,
        )

    def _sample_participants(
        self, site_names: List[str], rng: random.Random
    ) -> List[str]:
        fraction = self.config.participation
        if fraction >= 1.0:
            return list(site_names)
        count = max(1, int(round(fraction * len(site_names))))
        return sorted(rng.sample(site_names, count))


def single_shot_average(
    model_factory: ModelFactory,
    site_data: SiteData,
    epochs: int = 20,
    lr: float = 0.1,
    batch_size: int = 32,
    seed: int = 0,
) -> SupervisedModel:
    """Ablation: train each site to convergence once, average once."""
    collected: List[Params] = []
    weights: List[float] = []
    for site in sorted(site_data):
        X, y = site_data[site]
        if len(X) == 0:
            continue
        model = model_factory()
        model.train_epochs(X, y, epochs=epochs, lr=lr, batch_size=batch_size, seed=seed)
        collected.append(model.get_params())
        weights.append(float(len(X)))
    if not collected:
        raise LearningError("no data at any site")
    merged = model_factory()
    merged.set_params(average_params(collected, weights))
    return merged


def non_iid_severity(site_data: SiteData) -> float:
    """Heterogeneity index: mean absolute deviation of per-site label rates.

    0 = identical label distribution at every site; grows as sites diverge.
    """
    rates = [float(np.mean(y)) for __, y in site_data.values() if len(y)]
    if not rates:
        return 0.0
    overall = float(np.mean(rates))
    return float(np.mean([abs(rate - overall) for rate in rates]))
