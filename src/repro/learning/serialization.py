"""Model (de)serialization for sharing learned models across sites.

Section III's platform goal includes sharing *learned models*, not just
data: a site (or the global data service) trains a model, anchors its hash
on chain via ``post_result``, and ships the serialized form off chain to
whoever holds a grant.  The wire format is canonical JSON, so the on-chain
hash is reproducible by every verifier.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.analytics.features import FEATURE_DIM
from repro.analytics.models import LogisticModel, MLPModel, MultiTaskMLP, SupervisedModel
from repro.common.errors import LearningError
from repro.common.hashing import hash_value_hex


def model_to_dict(model: SupervisedModel) -> Dict[str, Any]:
    """Serialize a supported model into a canonical-JSON-safe dict."""
    if isinstance(model, LogisticModel):
        return {
            "kind": "logistic",
            "dim": model.dim,
            "params": [p.tolist() for p in model.get_params()],
        }
    if isinstance(model, MultiTaskMLP):
        return {
            "kind": "multitask_mlp",
            "dim": model.dim,
            "hidden": model.hidden,
            "outcomes": list(model.outcomes),
            "params": [p.tolist() for p in model.get_params()],
        }
    if isinstance(model, MLPModel):
        return {
            "kind": "mlp",
            "dim": model.dim,
            "hidden": model.hidden,
            "params": [p.tolist() for p in model.get_params()],
        }
    raise LearningError(f"cannot serialize model type {type(model).__name__}")


def model_from_dict(payload: Dict[str, Any]) -> SupervisedModel:
    """Reconstruct a model from :func:`model_to_dict` output."""
    kind = payload.get("kind")
    dim = int(payload.get("dim", FEATURE_DIM))
    params = [np.asarray(p, dtype=float) for p in payload["params"]]
    if kind == "logistic":
        model: SupervisedModel = LogisticModel(dim)
    elif kind == "mlp":
        model = MLPModel(dim, hidden=int(payload["hidden"]))
    elif kind == "multitask_mlp":
        model = MultiTaskMLP(
            dim, payload["outcomes"], hidden=int(payload["hidden"])
        )
    else:
        raise LearningError(f"unknown serialized model kind {kind!r}")
    model.set_params(params)
    return model


def model_hash(model: SupervisedModel) -> str:
    """Content hash of a model — what ``post_result`` anchors on chain."""
    return hash_value_hex(model_to_dict(model))


def verify_model(model: SupervisedModel, anchored_hash: str) -> bool:
    """True when a received model matches its on-chain anchor."""
    return model_hash(model) == anchored_hash
