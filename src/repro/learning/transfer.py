"""Distributed transfer learning.

Section III.C: the medical domain lacks an ImageNet-style core data set; the
paper's plan is (1) use the blockchain platform to compose a large virtual
cohort, (2) learn core features on it — possibly federated, since the cohort
is distributed — and (3) transfer those features to jump-start small-data
disease tasks.  This module implements exactly that recipe with the MLP:

- :func:`pretrain_core_model` learns hidden features on a source outcome,
  either centralized or via FedAvg across sites;
- :func:`transfer_fine_tune` re-heads the pretrained network and fine-tunes
  on a (small) target task;
- :func:`transfer_learning_curve` compares transfer vs from-scratch across
  target-set sizes (experiment E9's series).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analytics.features import FEATURE_DIM
from repro.analytics.models import MLPModel, MultiTaskMLP, average_params
from repro.common.errors import LearningError
from repro.learning.federated import FederatedConfig, FederatedTrainer, SiteData

#: ``{site: (X, {outcome: y})}`` — shards for multi-task core pretraining.
MultiTaskSiteData = Dict[str, Tuple[np.ndarray, Dict[str, np.ndarray]]]


@dataclass
class TransferResult:
    """Transfer vs scratch metrics at one target-set size."""

    target_size: int
    transfer_metrics: Dict[str, float]
    scratch_metrics: Dict[str, float]

    @property
    def auc_gain(self) -> float:
        return self.transfer_metrics["auc"] - self.scratch_metrics["auc"]


def pretrain_core_model(
    site_data: SiteData,
    hidden: int = 16,
    federated: bool = True,
    rounds: int = 15,
    local_epochs: int = 2,
    lr: float = 0.2,
    seed: int = 0,
) -> MLPModel:
    """Learn core features on the (distributed) source task.

    ``federated=True`` runs FedAvg so the pretraining itself respects data
    locality; ``False`` pools the shards (an upper-bound comparison only).
    """
    def factory() -> MLPModel:
        return MLPModel(FEATURE_DIM, hidden=hidden, seed=seed)

    if federated:
        trainer = FederatedTrainer(
            factory,
            FederatedConfig(
                rounds=rounds, local_epochs=local_epochs, lr=lr, seed=seed
            ),
        )
        result = trainer.train(site_data)
        model = result.model
        if not isinstance(model, MLPModel):
            raise LearningError("pretraining factory must produce an MLPModel")
        return model
    X = np.concatenate([x for x, __ in site_data.values()])
    y = np.concatenate([labels for __, labels in site_data.values()])
    model = factory()
    model.train_epochs(X, y, epochs=rounds * local_epochs, lr=lr, seed=seed)
    return model


def pretrain_core_multitask(
    site_data: MultiTaskSiteData,
    outcomes: Sequence[str],
    hidden: int = 24,
    rounds: int = 20,
    local_epochs: int = 2,
    lr: float = 0.2,
    seed: int = 0,
) -> MultiTaskMLP:
    """Federated multi-task pretraining of the core medical model.

    Each round, every site trains the shared-hidden-layer model on *all*
    its outcomes locally; parameter sets are FedAvg-averaged.  The result's
    hidden layer encodes features shared across diseases — the medical
    "ImageNet moment" the paper wants the platform to enable.
    """
    if not site_data:
        raise LearningError("no sites to pretrain on")
    outcomes = sorted(outcomes)
    global_model = MultiTaskMLP(FEATURE_DIM, outcomes, hidden=hidden, seed=seed)
    global_params = global_model.get_params()
    for round_index in range(rounds):
        collected = []
        weights = []
        for site in sorted(site_data):
            X, labels = site_data[site]
            if len(X) == 0:
                continue
            local = MultiTaskMLP(FEATURE_DIM, outcomes, hidden=hidden, seed=seed)
            local.set_params(global_params)
            local.train_multitask(
                X,
                labels,
                epochs=local_epochs,
                lr=lr,
                seed=seed * 1000 + round_index,
            )
            collected.append(local.get_params())
            weights.append(float(len(X)))
        if collected:
            global_params = average_params(collected, weights)
    global_model.set_params(global_params)
    return global_model


def transfer_fine_tune(
    core_model: MLPModel,
    X_target: np.ndarray,
    y_target: np.ndarray,
    epochs: int = 30,
    lr: float = 0.1,
    head_only: bool = True,
    seed: int = 0,
) -> MLPModel:
    """Clone the pretrained model, reset its head, fine-tune on the target."""
    model = core_model.clone()
    model.reset_head(seed=seed)
    if head_only:
        model.train_head_only(X_target, y_target, epochs=epochs, lr=lr, seed=seed)
    else:
        model.train_epochs(X_target, y_target, epochs=epochs, lr=lr, seed=seed)
    return model


def train_from_scratch(
    X_target: np.ndarray,
    y_target: np.ndarray,
    hidden: int = 16,
    epochs: int = 30,
    lr: float = 0.1,
    seed: int = 0,
) -> MLPModel:
    """Baseline: random initialization, trained only on the target data."""
    model = MLPModel(FEATURE_DIM, hidden=hidden, seed=seed)
    model.train_epochs(X_target, y_target, epochs=epochs, lr=lr, seed=seed)
    return model


def transfer_learning_curve(
    core_model: MLPModel,
    X_pool: np.ndarray,
    y_pool: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    sizes: Sequence[int],
    epochs: int = 30,
    lr: float = 0.1,
    seed: int = 0,
) -> List[TransferResult]:
    """Transfer vs scratch AUC across target-training-set sizes."""
    rng = np.random.default_rng(seed)
    results: List[TransferResult] = []
    for size in sizes:
        if size > len(X_pool):
            raise LearningError(
                f"target size {size} exceeds pool of {len(X_pool)} samples"
            )
        chosen = rng.choice(len(X_pool), size=size, replace=False)
        X_small, y_small = X_pool[chosen], y_pool[chosen]
        transferred = transfer_fine_tune(
            core_model, X_small, y_small, epochs=epochs, lr=lr, seed=seed
        )
        scratch = train_from_scratch(
            X_small, y_small, hidden=core_model.hidden, epochs=epochs, lr=lr, seed=seed
        )
        results.append(
            TransferResult(
                target_size=size,
                transfer_metrics=transferred.evaluate(X_test, y_test),
                scratch_metrics=scratch.evaluate(X_test, y_test),
            )
        )
    return results
