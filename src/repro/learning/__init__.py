"""Distributed learning: federated training, transfer learning, baselines."""

from repro.learning.aggregation import aggregate_masked, mask_update, masked_round
from repro.learning.baseline import (
    CentralizedResult,
    estimate_record_bytes,
    local_only_baselines,
    train_centralized,
)
from repro.learning.federated import (
    FederatedConfig,
    FederatedResult,
    FederatedTrainer,
    RoundRecord,
    non_iid_severity,
    single_shot_average,
)
from repro.learning.serialization import (
    model_from_dict,
    model_hash,
    model_to_dict,
    verify_model,
)
from repro.learning.transfer import (
    MultiTaskSiteData,
    TransferResult,
    pretrain_core_model,
    pretrain_core_multitask,
    train_from_scratch,
    transfer_fine_tune,
    transfer_learning_curve,
)

__all__ = [
    "CentralizedResult",
    "FederatedConfig",
    "FederatedResult",
    "FederatedTrainer",
    "RoundRecord",
    "TransferResult",
    "aggregate_masked",
    "estimate_record_bytes",
    "local_only_baselines",
    "mask_update",
    "masked_round",
    "non_iid_severity",
    "MultiTaskSiteData",
    "pretrain_core_model",
    "pretrain_core_multitask",
    "single_shot_average",
    "train_centralized",
    "train_from_scratch",
    "transfer_fine_tune",
    "transfer_learning_curve",
    "model_from_dict",
    "model_hash",
    "model_to_dict",
    "verify_model",
]
