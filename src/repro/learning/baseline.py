"""Centralized learning baseline (the approach the paper argues against).

"Standard machine learning approaches require centralizing the training
data on a location where the computing engine [is] co-located" (section
III.C).  This baseline copies every record to one place, trains there, and
accounts the bytes moved — the comparison target for federated training
(E8) and for move-compute-to-data (E5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analytics.models import SupervisedModel
from repro.common.errors import LearningError
from repro.common.serialize import canonical_bytes
from repro.learning.federated import ModelFactory, SiteData

#: Conservative wire-size estimate of one canonical patient record.
EST_RECORD_BYTES = 900


def estimate_record_bytes(record: Dict) -> int:
    """Exact canonical wire size of one record."""
    return len(canonical_bytes(record))


@dataclass
class CentralizedResult:
    """Outcome of a pooled training run."""

    model: SupervisedModel
    bytes_moved: int
    total_flops: float
    eval_metrics: Dict[str, float]


def train_centralized(
    model_factory: ModelFactory,
    site_data: SiteData,
    eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    epochs: int = 20,
    lr: float = 0.1,
    batch_size: int = 32,
    seed: int = 0,
    bytes_per_record: int = EST_RECORD_BYTES,
) -> CentralizedResult:
    """Pool all shards centrally and train one model.

    ``bytes_moved`` counts every record crossing the wire once — the cost
    federated training avoids entirely.
    """
    if not site_data:
        raise LearningError("no sites to pool")
    X = np.concatenate([x for x, __ in site_data.values()])
    y = np.concatenate([labels for __, labels in site_data.values()])
    model = model_factory()
    model.train_epochs(X, y, epochs=epochs, lr=lr, batch_size=batch_size, seed=seed)
    metrics = model.evaluate(*eval_data) if eval_data is not None else {}
    return CentralizedResult(
        model=model,
        bytes_moved=int(len(X)) * bytes_per_record,
        total_flops=model.flops,
        eval_metrics=metrics,
    )


def local_only_baselines(
    model_factory: ModelFactory,
    site_data: SiteData,
    eval_data: Tuple[np.ndarray, np.ndarray],
    epochs: int = 20,
    lr: float = 0.1,
    batch_size: int = 32,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Each site trains alone on its own shard (no collaboration at all).

    The lower bound federated learning must beat to justify itself.
    """
    out: Dict[str, Dict[str, float]] = {}
    for site in sorted(site_data):
        X, y = site_data[site]
        model = model_factory()
        if len(X):
            model.train_epochs(
                X, y, epochs=epochs, lr=lr, batch_size=batch_size, seed=seed
            )
        out[site] = model.evaluate(*eval_data)
    return out
