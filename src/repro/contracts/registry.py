"""Contract registry: the deployment front door with a static-verify gate.

MediChain-style architectures admit a contract on chain only after an
off-chain validation pass; :class:`ContractRegistry` reproduces that gate.
It wraps deploy-transaction construction (nonce tracking, signing,
submission) and, with ``verify=True``, runs the ``repro.analysis`` contract
verifier first — a failing contract never produces a transaction, and the
caller gets a typed :class:`~repro.common.errors.ContractVerificationError`
carrying the findings.

The registry is transport-agnostic: it needs only an object exposing
``submit_tx(tx)`` and ``state.nonce(address)`` (a
:class:`~repro.consensus.node.BlockchainNode` does), so it works against a
live node, a simulation node, or a test double.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.chain.transactions import DEFAULT_GAS_LIMIT, Transaction, make_deploy
from repro.common.hashing import sha256_hex
from repro.common.signatures import KeyPair


@dataclass
class DeploymentRecord:
    """Book-keeping for one deploy attempt made through the registry."""

    name: str
    source_hash: str
    tx_id: str
    verified: bool
    finding_count: int = 0


@dataclass
class ContractRegistry:
    """Builds, verifies, and submits contract deployments.

    ``verify=True`` (per call, or ``verify_by_default=True`` for the whole
    registry) rejects contracts that fail static verification *before* any
    transaction is signed or submitted.
    """

    node: Any  # needs .submit_tx(tx) and .state.nonce(address)
    deployer: KeyPair
    timestamp_source: Optional[Callable[[], int]] = None
    verify_by_default: bool = False
    max_gas: Optional[int] = None  # MED008 ceiling used when verifying
    #: include the MED2xx PHI escape taint pass in the verify gate, so a
    #: contract that provably writes patient data into chain state / events
    #: / receipts is rejected before signing
    taint: bool = True
    records: List[DeploymentRecord] = field(default_factory=list)
    _next_nonce: Dict[str, int] = field(default_factory=dict)

    def verify(self, source: str, name: str = "<contract>") -> List[Any]:
        """Run the static contract verifier; raises on error findings.

        Returns the (possibly warning-level) findings when the contract
        passes, so callers can surface advisories.
        """
        # Imported lazily so the contracts package does not depend on the
        # analysis package unless the gate is actually used.
        from repro.analysis.verify import verify_contract

        return verify_contract(
            source, name=name, max_gas=self.max_gas, taint=self.taint
        )

    def deploy(
        self,
        name: str,
        source: str,
        *,
        init: Optional[Dict[str, Any]] = None,
        verify: Optional[bool] = None,
        gas_limit: int = DEFAULT_GAS_LIMIT,
        timestamp_ms: Optional[int] = None,
    ) -> Transaction:
        """Build, sign, and submit a deploy transaction for ``source``.

        With ``verify=True`` the contract is statically verified first;
        a :class:`~repro.common.errors.ContractVerificationError` aborts
        the deployment with no transaction created.
        """
        do_verify = self.verify_by_default if verify is None else verify
        finding_count = 0
        if do_verify:
            finding_count = len(self.verify(source, name=name))
        tx = make_deploy(
            self.deployer,
            name,
            source,
            init=init,
            nonce=self._claim_nonce(),
            gas_limit=gas_limit,
            timestamp_ms=self._timestamp(timestamp_ms),
        )
        self.node.submit_tx(tx)
        self.records.append(
            DeploymentRecord(
                name=name,
                source_hash=sha256_hex(source.encode("utf-8")),
                tx_id=tx.tx_id,
                verified=do_verify,
                finding_count=finding_count,
            )
        )
        return tx

    def _claim_nonce(self) -> int:
        address = self.deployer.address
        chain_nonce = self.node.state.nonce(address)
        nonce = max(chain_nonce, self._next_nonce.get(address, 0))
        self._next_nonce[address] = nonce + 1
        return nonce

    def _timestamp(self, explicit: Optional[int]) -> int:
        if explicit is not None:
            return explicit
        if self.timestamp_source is not None:
            return int(self.timestamp_source())
        return 0
