"""Built-in MedScript contracts for the three categories of Figure 4.

The paper defines *data contracts* (request/registration of data sets and
access policy), *analytics contracts* (request execution of analytics tools
and learning models), and *clinical-trial contracts* (participant
recruitment and continuous trial monitoring).  These sources are deployed by
``repro.core`` when a medical blockchain network boots.

Each contract is intentionally *light-weight*: it stores registrations,
policies, and task metadata, and emits events for the off-chain monitor
node — the heavy computation happens off chain (section III's design
strategy).  ``COMPUTE_CONTRACT_SOURCE`` is the deliberate anti-pattern used
by experiment E3: a compute-heavy analytic executed *on chain* by every
node, demonstrating the duplicated-computing waste.
"""

from __future__ import annotations

DATA_REGISTRY_SOURCE = '''
"""Data contract: data-set registration, ownership, and access policy."""

def register_dataset(dataset_id, site, schema, record_count, merkle_root):
    require(not storage_has("ds/" + dataset_id), "dataset already registered")
    require(record_count >= 0, "record_count must be non-negative")
    entry = {
        "dataset_id": dataset_id,
        "owner": sender(),
        "site": site,
        "schema": schema,
        "record_count": record_count,
        "merkle_root": merkle_root,
        "registered_at": block_height(),
        "revoked": False,
    }
    storage_set("ds/" + dataset_id, entry)
    emit("DataRegistered", {"dataset_id": dataset_id, "site": site, "owner": sender()})
    return dataset_id

def update_anchor(dataset_id, merkle_root, record_count):
    entry = storage_get("ds/" + dataset_id)
    require(entry is not None, "unknown dataset")
    require(entry["owner"] == sender(), "only the owner may update the anchor")
    entry["merkle_root"] = merkle_root
    entry["record_count"] = record_count
    storage_set("ds/" + dataset_id, entry)
    emit("AnchorUpdated", {"dataset_id": dataset_id, "merkle_root": merkle_root})
    return True

def get_dataset(dataset_id):
    return storage_get("ds/" + dataset_id)

def list_datasets():
    out = []
    for key in storage_keys("ds/"):
        out = out + [storage_get(key)]
    return out

def grant_access(dataset_id, grantee, purpose, expires_ms):
    entry = storage_get("ds/" + dataset_id)
    require(entry is not None, "unknown dataset")
    require(entry["owner"] == sender(), "only the owner may grant access")
    grant = {
        "dataset_id": dataset_id,
        "grantee": grantee,
        "purpose": purpose,
        "expires_ms": expires_ms,
        "granted_by": sender(),
        "granted_at": block_height(),
        "revoked": False,
    }
    storage_set("grant/" + dataset_id + "/" + grantee + "/" + purpose, grant)
    emit("AccessGranted", {
        "dataset_id": dataset_id, "grantee": grantee, "purpose": purpose,
    })
    return True

def revoke_access(dataset_id, grantee, purpose):
    key = "grant/" + dataset_id + "/" + grantee + "/" + purpose
    grant = storage_get(key)
    require(grant is not None, "no such grant")
    entry = storage_get("ds/" + dataset_id)
    require(entry["owner"] == sender(), "only the owner may revoke access")
    grant["revoked"] = True
    storage_set(key, grant)
    emit("AccessRevoked", {
        "dataset_id": dataset_id, "grantee": grantee, "purpose": purpose,
    })
    return True

def check_access(dataset_id, grantee, purpose, now_ms):
    entry = storage_get("ds/" + dataset_id)
    if entry is None or entry["revoked"]:
        return False
    if entry["owner"] == grantee:
        return True
    grant = storage_get("grant/" + dataset_id + "/" + grantee + "/" + purpose)
    if grant is None or grant["revoked"]:
        return False
    if grant["expires_ms"] >= 0 and now_ms > grant["expires_ms"]:
        return False
    return True
'''


ANALYTICS_SOURCE = '''
"""Analytics contract: tool registration and off-chain task coordination."""

def register_tool(tool_id, code_hash, description):
    require(not storage_has("tool/" + tool_id), "tool already registered")
    storage_set("tool/" + tool_id, {
        "tool_id": tool_id,
        "owner": sender(),
        "code_hash": code_hash,
        "description": description,
        "registered_at": block_height(),
    })
    emit("ToolRegistered", {"tool_id": tool_id, "code_hash": code_hash})
    return tool_id

def get_tool(tool_id):
    return storage_get("tool/" + tool_id)

def request_task(task_id, tool_id, dataset_ids, params, purpose):
    require(not storage_has("task/" + task_id), "task id already used")
    tool = storage_get("tool/" + tool_id)
    require(tool is not None, "unknown tool")
    task = {
        "task_id": task_id,
        "tool_id": tool_id,
        "dataset_ids": dataset_ids,
        "params": params,
        "purpose": purpose,
        "requester": sender(),
        "status": "requested",
        "requested_at": block_height(),
        "result_hash": "",
    }
    storage_set("task/" + task_id, task)
    emit("TaskRequested", {
        "task_id": task_id,
        "tool_id": tool_id,
        "dataset_ids": dataset_ids,
        "requester": sender(),
        "purpose": purpose,
    })
    return task_id

def post_result(task_id, result_hash, summary):
    task = storage_get("task/" + task_id)
    require(task is not None, "unknown task")
    require(task["status"] == "requested", "task is not pending")
    task["status"] = "completed"
    task["result_hash"] = result_hash
    task["summary"] = summary
    task["completed_at"] = block_height()
    task["executor"] = sender()
    storage_set("task/" + task_id, task)
    emit("TaskCompleted", {
        "task_id": task_id, "result_hash": result_hash, "executor": sender(),
    })
    return True

def fail_task(task_id, reason):
    task = storage_get("task/" + task_id)
    require(task is not None, "unknown task")
    require(task["status"] == "requested", "task is not pending")
    task["status"] = "failed"
    task["error"] = reason
    storage_set("task/" + task_id, task)
    emit("TaskFailed", {"task_id": task_id, "reason": reason})
    return True

def get_task(task_id):
    return storage_get("task/" + task_id)
'''


CLINICAL_TRIAL_SOURCE = '''
"""Clinical-trial contract: registration, recruitment, continuous monitoring.

Implements the paper's section III.B integrity story: the trial protocol and
its pre-registered outcomes are hash-anchored at registration time, so
outcome switching (the COMPare problem) is detected when results are
reported against outcomes that were never registered.
"""

def register_trial(trial_id, protocol_hash, outcomes, target_enrollment):
    require(not storage_has("trial/" + trial_id), "trial already registered")
    require(len(outcomes) > 0, "at least one pre-registered outcome required")
    storage_set("trial/" + trial_id, {
        "trial_id": trial_id,
        "sponsor": sender(),
        "protocol_hash": protocol_hash,
        "outcomes": outcomes,
        "target_enrollment": target_enrollment,
        "status": "recruiting",
        "registered_at": block_height(),
        "enrolled": 0,
    })
    emit("TrialRegistered", {
        "trial_id": trial_id,
        "protocol_hash": protocol_hash,
        "outcomes": outcomes,
    })
    return trial_id

def get_trial(trial_id):
    return storage_get("trial/" + trial_id)

def enroll(trial_id, patient_pseudo_id, site, arm):
    trial = storage_get("trial/" + trial_id)
    require(trial is not None, "unknown trial")
    require(trial["status"] == "recruiting", "trial is not recruiting")
    key = "enroll/" + trial_id + "/" + patient_pseudo_id
    require(not storage_has(key), "patient already enrolled")
    storage_set(key, {
        "trial_id": trial_id,
        "patient": patient_pseudo_id,
        "site": site,
        "arm": arm,
        "enrolled_at": block_height(),
    })
    trial["enrolled"] = trial["enrolled"] + 1
    if trial["enrolled"] >= trial["target_enrollment"]:
        trial["status"] = "active"
        emit("RecruitmentComplete", {"trial_id": trial_id, "enrolled": trial["enrolled"]})
    storage_set("trial/" + trial_id, trial)
    emit("PatientEnrolled", {
        "trial_id": trial_id, "patient": patient_pseudo_id, "site": site, "arm": arm,
    })
    return trial["enrolled"]

def report_outcome(trial_id, patient_pseudo_id, outcome, value_milli, data_hash):
    trial = storage_get("trial/" + trial_id)
    require(trial is not None, "unknown trial")
    enrolled = storage_get("enroll/" + trial_id + "/" + patient_pseudo_id)
    require(enrolled is not None, "patient not enrolled")
    if outcome not in trial["outcomes"]:
        emit("OutcomeSwitchingDetected", {
            "trial_id": trial_id,
            "reported_outcome": outcome,
            "registered_outcomes": trial["outcomes"],
            "reporter": sender(),
        })
        require(False, "outcome was not pre-registered")
    key = "report/" + trial_id + "/" + patient_pseudo_id + "/" + outcome
    storage_set(key, {
        "trial_id": trial_id,
        "patient": patient_pseudo_id,
        "outcome": outcome,
        "value_milli": value_milli,
        "data_hash": data_hash,
        "reported_at": block_height(),
        "reporter": sender(),
    })
    emit("OutcomeReported", {
        "trial_id": trial_id,
        "patient": patient_pseudo_id,
        "outcome": outcome,
        "value_milli": value_milli,
    })
    return True

def report_adverse_event(trial_id, patient_pseudo_id, severity, description_hash):
    trial = storage_get("trial/" + trial_id)
    require(trial is not None, "unknown trial")
    enrolled = storage_get("enroll/" + trial_id + "/" + patient_pseudo_id)
    require(enrolled is not None, "patient not enrolled")
    require(severity >= 1 and severity <= 5, "severity must be 1..5")
    count = storage_get("ae_count/" + trial_id, 0) + 1
    storage_set("ae_count/" + trial_id, count)
    storage_set("ae/" + trial_id + "/" + str(count), {
        "trial_id": trial_id,
        "patient": patient_pseudo_id,
        "severity": severity,
        "description_hash": description_hash,
        "reported_at": block_height(),
    })
    emit("AdverseEvent", {
        "trial_id": trial_id,
        "patient": patient_pseudo_id,
        "severity": severity,
        "count": count,
    })
    return count

def adverse_event_count(trial_id):
    return storage_get("ae_count/" + trial_id, 0)

def finalize(trial_id, results_hash):
    trial = storage_get("trial/" + trial_id)
    require(trial is not None, "unknown trial")
    require(trial["sponsor"] == sender(), "only the sponsor may finalize")
    trial["status"] = "finalized"
    trial["results_hash"] = results_hash
    storage_set("trial/" + trial_id, trial)
    emit("TrialFinalized", {"trial_id": trial_id, "results_hash": results_hash})
    return True
'''


PATIENT_CONSENT_SOURCE = '''
"""Patient-consent contract: per-patient, per-scope opt-out.

The paper's data-ownership stance ("data sets can be owned by different
entities ... patients") needs more than site-level grants: the *patient*
must be able to withdraw their records from research use.  Consent is
opt-in by default (enrollment implies baseline consent, as in a real-world
data network) with explicit, revocable, scope-specific opt-out recorded on
chain.  The off-chain control code excludes opted-out patients' records
before any analytic runs.
"""

def set_consent(patient_pseudo_id, scope, allow):
    key = "consent/" + scope + "/" + patient_pseudo_id
    storage_set(key, {
        "patient": patient_pseudo_id,
        "scope": scope,
        "allow": allow,
        "set_by": sender(),
        "set_at": block_height(),
    })
    opted = storage_get("optout/" + scope, [])
    if allow:
        cleaned = []
        for pid in opted:
            if pid != patient_pseudo_id:
                cleaned = cleaned + [pid]
        storage_set("optout/" + scope, cleaned)
    else:
        if patient_pseudo_id not in opted:
            storage_set("optout/" + scope, opted + [patient_pseudo_id])
    emit("ConsentChanged", {
        "patient": patient_pseudo_id, "scope": scope, "allow": allow,
    })
    return allow

def check_consent(patient_pseudo_id, scope):
    entry = storage_get("consent/" + scope + "/" + patient_pseudo_id)
    if entry is None:
        return True
    return entry["allow"]

def opted_out(scope):
    return storage_get("optout/" + scope, [])

def optout_count(scope):
    return len(storage_get("optout/" + scope, []))
'''


BLOB_REGISTRY_SOURCE = '''
"""Blob registry: on-chain commitments for erasure-coded off-chain blobs.

A blob (genomic panel, imaging study) never touches the chain; the owner
registers only its Merkle root plus coding geometry.  Auditors verify
sampled chunks against the root, repairs are logged so custody history is
on the ledger, and the payload custody itself lives with the n sites named
in the placement.
"""

def register_blob(blob_id, merkle_root, size, chunk_size, k, n, stripes, placement):
    require(not storage_has("blob/" + blob_id), "blob already registered")
    require(size >= 0, "size must be non-negative")
    require(chunk_size > 0, "chunk_size must be positive")
    require(k >= 1, "k must be at least 1")
    require(n >= k, "n must be at least k")
    require(stripes >= 0, "stripes must be non-negative")
    require(len(placement) == n, "placement must name one site per share")
    entry = {
        "blob_id": blob_id,
        "owner": sender(),
        "merkle_root": merkle_root,
        "size": size,
        "chunk_size": chunk_size,
        "k": k,
        "n": n,
        "stripes": stripes,
        "placement": placement,
        "registered_at": block_height(),
        "repairs": 0,
        "last_audit": None,
        "revoked": False,
    }
    storage_set("blob/" + blob_id, entry)
    emit("BlobRegistered", {
        "blob_id": blob_id, "merkle_root": merkle_root, "n": n, "k": k,
    })
    return blob_id

def get_blob(blob_id):
    return storage_get("blob/" + blob_id)

def list_blobs():
    out = []
    for key in storage_keys("blob/"):
        out = out + [storage_get(key)]
    return out

def report_audit(blob_id, samples, verified, flagged_sites):
    entry = storage_get("blob/" + blob_id)
    require(entry is not None, "unknown blob")
    require(samples >= 0, "samples must be non-negative")
    require(verified >= 0, "verified must be non-negative")
    require(verified <= samples, "verified cannot exceed samples")
    entry["last_audit"] = {
        "auditor": sender(),
        "samples": samples,
        "verified": verified,
        "flagged_sites": flagged_sites,
        "at": block_height(),
    }
    storage_set("blob/" + blob_id, entry)
    emit("BlobAudited", {
        "blob_id": blob_id,
        "samples": samples,
        "verified": verified,
        "ok": verified == samples,
    })
    return verified == samples

def report_repair(blob_id, restored):
    entry = storage_get("blob/" + blob_id)
    require(entry is not None, "unknown blob")
    require(restored >= 0, "restored must be non-negative")
    entry["repairs"] = entry["repairs"] + 1
    storage_set("blob/" + blob_id, entry)
    emit("BlobRepaired", {"blob_id": blob_id, "restored": restored})
    return entry["repairs"]

def revoke_blob(blob_id):
    entry = storage_get("blob/" + blob_id)
    require(entry is not None, "unknown blob")
    require(entry["owner"] == sender(), "only the owner may revoke")
    entry["revoked"] = True
    storage_set("blob/" + blob_id, entry)
    emit("BlobRevoked", {"blob_id": blob_id})
    return True
'''


COMPUTE_CONTRACT_SOURCE = '''
"""Deliberately compute-heavy on-chain analytic (the paper's anti-pattern).

Runs an integer matrix multiply and a fixed-point gradient-descent step
entirely inside the contract VM.  Every consensus node re-executes this,
which is the duplicated computing experiment E3 measures.
"""

def matmul(a, b, n):
    out = []
    i = 0
    while i < n:
        row = []
        j = 0
        while j < n:
            acc = 0
            k = 0
            while k < n:
                acc = acc + a[i][k] * b[k][j]
                k = k + 1
            row = row + [acc]
            j = j + 1
        out = out + [row]
        i = i + 1
    return out

def train_step(features, labels, weights, lr_milli):
    n = len(features)
    d = len(weights)
    grad = []
    j = 0
    while j < d:
        grad = grad + [0]
        j = j + 1
    i = 0
    while i < n:
        dot = 0
        j = 0
        while j < d:
            dot = dot + features[i][j] * weights[j]
            j = j + 1
        error = dot // 1000 - labels[i]
        j = 0
        while j < d:
            grad[j] = grad[j] + error * features[i][j]
            j = j + 1
        i = i + 1
    j = 0
    new_weights = []
    while j < d:
        step = (lr_milli * grad[j]) // (n * 1000)
        new_weights = new_weights + [weights[j] - step]
        j = j + 1
    storage_set("weights", new_weights)
    emit("TrainStep", {"samples": n})
    return new_weights

def get_weights():
    return storage_get("weights", [])
'''


COUNTER_SOURCE = '''
"""Minimal contract used by unit tests."""

def init(start=0):
    storage_set("count", start)

def increment(by=1):
    value = storage_get("count", 0) + by
    storage_set("count", value)
    emit("Incremented", {"count": value})
    return value

def get():
    return storage_get("count", 0)
'''

#: Names under which the platform deploys each category (Figure 4, plus the
#: patient-consent extension motivated by the paper's data-ownership goals).
CONTRACT_CATEGORIES = {
    "data": DATA_REGISTRY_SOURCE,
    "analytics": ANALYTICS_SOURCE,
    "clinical_trial": CLINICAL_TRIAL_SOURCE,
    "consent": PATIENT_CONSENT_SOURCE,
    "blob": BLOB_REGISTRY_SOURCE,
}
