"""MedScript: a deterministic, gas-metered smart-contract interpreter.

Contracts are written in a strict subset of Python (parsed with ``ast``,
never ``exec``).  The subset is chosen so that execution is *deterministic
across nodes* — the consensus-critical property the paper relies on when it
runs "the identical smart contract code in all the nodes" (section I):

- integers, strings, booleans, lists, dicts, tuples — no floats;
- ``if`` / ``while`` / ``for`` / function definitions / ``return``;
- a whitelist of pure builtins (``len``, ``range``, ``min``, ...);
- host functions injected by the runtime (``storage_get``, ``storage_set``,
  ``emit``, ``require``, ``sender``, ``block_height``, ``timestamp_ms``,
  ``sha256_hex``);
- every AST node evaluated charges gas; storage and events cost extra.

No attribute access, no imports, no comprehensions, no closures over
mutable state: what remains is small enough to audit and big enough to be
Turing-complete (bounded by gas), matching the paper's "arbitrary
computation codes" framing.

State aliasing: the world state stores values by reference (the
immutable-value convention of ``repro.chain.state``), so the host bridge
copies every container crossing the ``storage_get``/``storage_set``
boundary.  Interpreter code may therefore freely mutate values it read
from storage — the mutation only becomes state once written back.
Authors of new host functions must preserve this isolation: never hand a
reference obtained from ``StateDB`` to contract code, and never store a
reference contract code can still reach.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.common.errors import ContractError, OutOfGasError
from repro.contracts import gas as G
from repro.obs.tracer import trace_span


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class GasMeter:
    """Tracks gas consumption against a limit."""

    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def charge(self, amount: int) -> None:
        self.used += amount
        if self.used > self.limit:
            raise OutOfGasError(f"out of gas: used {self.used} > limit {self.limit}")

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.used)


_ALLOWED_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
}

_ALLOWED_COMPARE = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
    ast.Is: lambda a, b: a is b,
    ast.IsNot: lambda a, b: a is not b,
}

_PURE_BUILTINS: Dict[str, Callable[..., Any]] = {
    "len": len,
    "range": range,
    "min": min,
    "max": max,
    "sum": sum,
    "abs": abs,
    "sorted": sorted,
    "int": int,
    "str": str,
    "bool": bool,
    "list": list,
    "dict": dict,
    "tuple": tuple,
    "enumerate": enumerate,
    "zip": zip,
    "reversed": reversed,
    "divmod": divmod,
}


def _check_value(value: Any) -> Any:
    """Reject non-deterministic value types (floats, sets, objects)."""
    if isinstance(value, float):
        raise ContractError("floats are forbidden in contracts (non-deterministic)")
    return value


@dataclass
class ContractSource:
    """Parsed and statically-checked contract module."""

    source: str
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    constants: Dict[str, Any] = field(default_factory=dict)

    @property
    def methods(self) -> List[str]:
        return sorted(name for name in self.functions if not name.startswith("_"))


def compile_contract(source: str) -> ContractSource:
    """Parse and statically validate a MedScript contract module.

    Top level may contain only function definitions and constant
    assignments.  Raises :class:`ContractError` on any disallowed syntax.
    """
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        raise ContractError(f"contract syntax error: {exc}") from exc
    compiled = ContractSource(source=source)
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            _validate_function(node)
            compiled.functions[node.name] = node
        elif isinstance(node, ast.Assign):
            if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                raise ContractError("top-level assignments must bind a single name")
            compiled.constants[node.targets[0].id] = _literal(node.value)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            continue  # docstring
        else:
            raise ContractError(
                f"disallowed top-level statement: {type(node).__name__}"
            )
    if not compiled.functions:
        raise ContractError("contract defines no functions")
    return compiled


def _literal(node: ast.AST) -> Any:
    try:
        value = ast.literal_eval(node)
    except (ValueError, SyntaxError) as exc:
        raise ContractError("top-level constants must be literals") from exc
    return _check_value(value)


_DISALLOWED_IN_FUNCTIONS = (
    ast.Import,
    ast.ImportFrom,
    ast.Attribute,
    ast.Lambda,
    ast.GeneratorExp,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.With,
    ast.Try,
    ast.Raise,
    ast.Global,
    ast.Nonlocal,
    ast.ClassDef,
    ast.AsyncFunctionDef,
    ast.Await,
    ast.Yield,
    ast.YieldFrom,
    ast.Starred,
    ast.NamedExpr,
)


def _validate_function(func: ast.FunctionDef) -> None:
    if func.args.vararg or func.args.kwarg or func.args.kwonlyargs:
        raise ContractError(
            f"{func.name}: only plain positional parameters are allowed"
        )
    for node in ast.walk(func):
        if isinstance(node, _DISALLOWED_IN_FUNCTIONS):
            raise ContractError(
                f"{func.name}: disallowed syntax {type(node).__name__}"
            )
        if isinstance(node, ast.FunctionDef) and node is not func:
            raise ContractError(f"{func.name}: nested functions are not allowed")
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            raise ContractError(f"{func.name}: float literals are forbidden")
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            raise ContractError(f"{func.name}: use // (true division yields floats)")


class Interpreter:
    """Evaluates one method call of a compiled contract."""

    def __init__(
        self,
        contract: ContractSource,
        host_functions: Dict[str, Callable[..., Any]],
        meter: GasMeter,
    ):
        self.contract = contract
        self.host_functions = host_functions
        self.meter = meter
        self._depth = 0

    def call(self, method: str, args: Dict[str, Any]) -> Any:
        """Invoke a public method with keyword arguments."""
        func = self.contract.functions.get(method)
        if func is None or method.startswith("_"):
            raise ContractError(f"unknown or private method {method!r}")
        with trace_span("vm.call", method=method) as span:
            gas_before = self.meter.used
            try:
                return self._invoke(func, args)
            finally:
                span.set_attr("gas", self.meter.used - gas_before)

    def _invoke(self, func: ast.FunctionDef, args: Dict[str, Any]) -> Any:
        self._depth += 1
        if self._depth > G.MAX_CALL_DEPTH:
            raise ContractError("max call depth exceeded")
        self.meter.charge(G.GAS_CALL)
        params = [arg.arg for arg in func.args.args]
        defaults = func.args.defaults
        env: Dict[str, Any] = dict(self.contract.constants)
        # Bind defaults right-aligned, then override with provided args.
        for param, default in zip(params[len(params) - len(defaults):], defaults):
            env[param] = _literal(default)
        for param in params:
            if param in args:
                env[param] = _check_value(args[param])
        missing = [p for p in params if p not in env]
        if missing:
            raise ContractError(f"{func.name}: missing arguments {missing}")
        extra = set(args) - set(params)
        if extra:
            raise ContractError(f"{func.name}: unexpected arguments {sorted(extra)}")
        try:
            self._exec_block(func.body, env)
        except _ReturnSignal as signal:
            return signal.value
        finally:
            self._depth -= 1
        return None

    # -- statements ----------------------------------------------------------
    def _exec_block(self, body: List[ast.stmt], env: Dict[str, Any]) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.stmt, env: Dict[str, Any]) -> None:
        self.meter.charge(G.GAS_STATEMENT)
        if isinstance(stmt, ast.Return):
            raise _ReturnSignal(
                self._eval(stmt.value, env) if stmt.value else None
            )
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env)
            return
        if isinstance(stmt, ast.AugAssign):
            op = type(stmt.op)
            if op not in _ALLOWED_BINOPS:
                raise ContractError(f"disallowed operator {op.__name__}")
            current = self._eval_target(stmt.target, env)
            value = _ALLOWED_BINOPS[op](current, self._eval(stmt.value, env))
            self._assign(stmt.target, _check_value(value), env)
            return
        if isinstance(stmt, ast.If):
            branch = stmt.body if self._eval(stmt.test, env) else stmt.orelse
            self._exec_block(branch, env)
            return
        if isinstance(stmt, ast.While):
            iterations = 0
            while self._eval(stmt.test, env):
                iterations += 1
                if iterations > G.MAX_ITERATIONS_PER_LOOP:
                    raise ContractError("loop iteration limit exceeded")
                self.meter.charge(G.GAS_LOOP_ITERATION)
                try:
                    self._exec_block(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            else:
                self._exec_block(stmt.orelse, env)
            return
        if isinstance(stmt, ast.For):
            iterable = self._eval(stmt.iter, env)
            iterations = 0
            broke = False
            for item in iterable:
                iterations += 1
                if iterations > G.MAX_ITERATIONS_PER_LOOP:
                    raise ContractError("loop iteration limit exceeded")
                self.meter.charge(G.GAS_LOOP_ITERATION)
                self._assign(stmt.target, _check_value(item), env)
                try:
                    self._exec_block(stmt.body, env)
                except _BreakSignal:
                    broke = True
                    break
                except _ContinueSignal:
                    continue
            if not broke:
                self._exec_block(stmt.orelse, env)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
            return
        if isinstance(stmt, ast.Pass):
            return
        if isinstance(stmt, ast.Break):
            raise _BreakSignal()
        if isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        if isinstance(stmt, ast.Assert):
            if not self._eval(stmt.test, env):
                message = self._eval(stmt.msg, env) if stmt.msg else "assertion failed"
                raise ContractError(str(message))
            return
        raise ContractError(f"disallowed statement {type(stmt).__name__}")

    def _assign(self, target: ast.expr, value: Any, env: Dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, ast.Subscript):
            container = self._eval(target.value, env)
            key = self._eval(target.slice, env)
            container[key] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            values = list(value)
            if len(values) != len(target.elts):
                raise ContractError("unpacking arity mismatch")
            for element, item in zip(target.elts, values):
                self._assign(element, _check_value(item), env)
            return
        raise ContractError(f"cannot assign to {type(target).__name__}")

    def _eval_target(self, target: ast.expr, env: Dict[str, Any]) -> Any:
        if isinstance(target, ast.Name):
            if target.id not in env:
                raise ContractError(f"undefined name {target.id!r}")
            return env[target.id]
        if isinstance(target, ast.Subscript):
            container = self._eval(target.value, env)
            return container[self._eval(target.slice, env)]
        raise ContractError("invalid augmented-assignment target")

    # -- expressions ---------------------------------------------------------
    def _eval(self, node: ast.expr, env: Dict[str, Any]) -> Any:
        self.meter.charge(G.GAS_EXPRESSION)
        if isinstance(node, ast.Constant):
            return _check_value(node.value)
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.host_functions:
                return self.host_functions[node.id]
            if node.id in _PURE_BUILTINS:
                return _PURE_BUILTINS[node.id]
            if node.id in self.contract.functions:
                return self.contract.functions[node.id]
            raise ContractError(f"undefined name {node.id!r}")
        if isinstance(node, ast.BinOp):
            op = type(node.op)
            if op not in _ALLOWED_BINOPS:
                raise ContractError(f"disallowed operator {op.__name__}")
            if op is ast.Pow:
                self.meter.charge(G.GAS_POW)
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            try:
                return _check_value(_ALLOWED_BINOPS[op](left, right))
            except (TypeError, ZeroDivisionError, ValueError) as exc:
                raise ContractError(f"arithmetic error: {exc}") from exc
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                return -operand
            if isinstance(node.op, ast.UAdd):
                return +operand
            if isinstance(node.op, ast.Not):
                return not operand
            raise ContractError("disallowed unary operator")
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                result: Any = True
                for value_node in node.values:
                    result = self._eval(value_node, env)
                    if not result:
                        return result
                return result
            for value_node in node.values:
                result = self._eval(value_node, env)
                if result:
                    return result
            return result
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, env)
            for op, comparator in zip(node.ops, node.comparators):
                op_type = type(op)
                if op_type not in _ALLOWED_COMPARE:
                    raise ContractError(f"disallowed comparison {op_type.__name__}")
                right = self._eval(comparator, env)
                if not _ALLOWED_COMPARE[op_type](left, right):
                    return False
                left = right
            return True
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Subscript):
            container = self._eval(node.value, env)
            key = self._eval(node.slice, env)
            try:
                return _check_value(container[key])
            except (KeyError, IndexError, TypeError) as exc:
                raise ContractError(f"subscript error: {exc}") from exc
        if isinstance(node, ast.Slice):
            lower = self._eval(node.lower, env) if node.lower else None
            upper = self._eval(node.upper, env) if node.upper else None
            step = self._eval(node.step, env) if node.step else None
            return slice(lower, upper, step)
        if isinstance(node, ast.List):
            return [self._eval(element, env) for element in node.elts]
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(element, env) for element in node.elts)
        if isinstance(node, ast.Dict):
            out = {}
            for key_node, value_node in zip(node.keys, node.values):
                if key_node is None:
                    raise ContractError("dict unpacking is not allowed")
                out[self._eval(key_node, env)] = self._eval(value_node, env)
            return out
        if isinstance(node, ast.IfExp):
            if self._eval(node.test, env):
                return self._eval(node.body, env)
            return self._eval(node.orelse, env)
        if isinstance(node, ast.JoinedStr):
            parts = []
            for value_node in node.values:
                if isinstance(value_node, ast.Constant):
                    parts.append(str(value_node.value))
                elif isinstance(value_node, ast.FormattedValue):
                    parts.append(str(self._eval(value_node.value, env)))
            return "".join(parts)
        raise ContractError(f"disallowed expression {type(node).__name__}")

    def _eval_call(self, node: ast.Call, env: Dict[str, Any]) -> Any:
        func = self._eval(node.func, env)
        args = [self._eval(arg, env) for arg in node.args]
        kwargs = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                raise ContractError("**kwargs calls are not allowed")
            kwargs[keyword.arg] = self._eval(keyword.value, env)
        if isinstance(func, ast.FunctionDef):
            if kwargs:
                bound = dict(kwargs)
                params = [a.arg for a in func.args.args]
                for param, value in zip(params, args):
                    bound[param] = value
                return self._invoke(func, bound)
            params = [a.arg for a in func.args.args]
            return self._invoke(func, dict(zip(params, args)))
        if callable(func):
            self.meter.charge(G.GAS_CALL)
            try:
                return _check_value(func(*args, **kwargs))
            except ContractError:
                raise
            except (TypeError, ValueError, KeyError, IndexError) as exc:
                raise ContractError(f"call error: {exc}") from exc
        raise ContractError("attempt to call a non-function")
