"""Gas schedule for the MedScript contract VM.

Gas serves two purposes in the reproduction: it bounds execution (so a
runaway contract cannot hang consensus) and it is the unit of duplicated
computing that experiments E2/E3 charge to the energy model — every node
executing the same contract burns the same gas, which is exactly the waste
the paper's transformed architecture removes.
"""

from __future__ import annotations

# Per-operation costs (dimensionless gas units).
GAS_STATEMENT = 2  # executing any statement
GAS_EXPRESSION = 1  # evaluating any expression node
GAS_LOOP_ITERATION = 3  # each loop-body entry
GAS_CALL = 10  # function call overhead
GAS_STORAGE_READ = 50
GAS_STORAGE_WRITE = 200
GAS_EMIT_EVENT = 100
GAS_HASH_PER_BYTE = 1
GAS_POW = 20  # exponentiation surcharge
GAS_DEPLOY_PER_BYTE = 2  # contract source storage
GAS_DEPLOY_BASE = 50_000
GAS_CALL_BASE = 5_000  # intrinsic cost of a call transaction

MAX_CALL_DEPTH = 32
MAX_ITERATIONS_PER_LOOP = 1_000_000
MAX_COLLECTION_SIZE = 1_000_000
