"""Contract runtime: deploys and executes MedScript contracts against state.

Implements the chain layer's ``Executor`` protocol.  Every node in the
baseline (un-transformed) blockchain runs this executor over every block,
which is exactly the duplicated computing the paper sets out to remove; the
transformed architecture (``repro.core``) keeps only light-weight policy
contracts on chain and moves heavy work off chain.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.chain.executor import (
    BASE_TX_GAS,
    ContractEvent,
    ExecutionContext,
    Receipt,
)
from repro.chain.state import StateDB
from repro.chain.transactions import TX_CALL, TX_DEPLOY, TX_TRANSFER, Transaction
from repro.common.errors import ChainError, ContractError, OutOfGasError
from repro.common.hashing import hash_value_hex, sha256_hex
from repro.common.serialize import canonical_bytes
from repro.obs.tracer import trace_span
from repro.contracts import gas as G
from repro.contracts.vm import ContractSource, GasMeter, Interpreter, compile_contract

META_SLOT = "__meta__"
STORAGE_PREFIX = "s/"


@dataclass
class ContractInfo:
    """On-chain metadata for a deployed contract."""

    contract_id: str
    name: str
    owner: str
    source: str
    deployed_at_height: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "contract_id": self.contract_id,
            "name": self.name,
            "owner": self.owner,
            "source": self.source,
            "deployed_at_height": self.deployed_at_height,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ContractInfo":
        return cls(**data)


def _isolate(value: Any) -> Any:
    """Copy mutable containers crossing the contract/state boundary.

    ``StateDB`` stores values by reference under the immutable-value
    convention; contract code, however, routinely does
    ``entry = storage_get(k); entry["field"] = v; storage_set(k, entry)``.
    Copying at the bridge keeps that idiom safe (and contract-visible
    semantics bit-identical to the historical deep-copy-in-StateDB
    behaviour) while the state substrate itself stays zero-copy.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return value
    return copy.deepcopy(value)


#: Every name the bridge injects into contract scope.  The static analyzer
#: (``repro.analysis``) treats calls to names outside this set (and outside
#: the VM's pure builtins / the contract's own functions) as MED006 errors,
#: so keep it in lockstep with :meth:`HostBridge.functions` — a unit test
#: cross-checks the two.
HOST_FUNCTION_NAMES = frozenset(
    {
        "storage_get",
        "storage_set",
        "storage_has",
        "storage_delete",
        "storage_keys",
        "emit",
        "require",
        "sender",
        "contract_id",
        "block_height",
        "timestamp_ms",
        "sha256_hex",
    }
)


class HostBridge:
    """Host functions exposed to contract code, bound to one execution."""

    def __init__(
        self,
        state: StateDB,
        contract_id: str,
        sender: str,
        context: ExecutionContext,
        meter: GasMeter,
        events: List[ContractEvent],
        read_only: bool = False,
    ):
        self._state = state
        self._contract_id = contract_id
        self._sender = sender
        self._context = context
        self._meter = meter
        self._events = events
        self._read_only = read_only

    def functions(self) -> Dict[str, Callable[..., Any]]:
        return {
            "storage_get": self.storage_get,
            "storage_set": self.storage_set,
            "storage_has": self.storage_has,
            "storage_delete": self.storage_delete,
            "storage_keys": self.storage_keys,
            "emit": self.emit,
            "require": self.require,
            "sender": lambda: self._sender,
            "contract_id": lambda: self._contract_id,
            "block_height": lambda: self._context.block_height,
            "timestamp_ms": lambda: self._context.timestamp_ms,
            "sha256_hex": self.sha256_hex,
        }

    def _guard_write(self) -> None:
        if self._read_only:
            raise ContractError("storage writes are forbidden in view calls")

    def storage_get(self, key: str, default: Any = None) -> Any:
        self._meter.charge(G.GAS_STORAGE_READ)
        return _isolate(
            self._state.get_slot(self._contract_id, STORAGE_PREFIX + str(key), default)
        )

    def storage_set(self, key: str, value: Any) -> None:
        self._guard_write()
        self._meter.charge(G.GAS_STORAGE_WRITE)
        canonical_bytes(value, allow_float=False)  # determinism check
        self._state.set_slot(
            self._contract_id, STORAGE_PREFIX + str(key), _isolate(value)
        )

    def storage_has(self, key: str) -> bool:
        self._meter.charge(G.GAS_STORAGE_READ)
        return self._state.contains(
            self._state.contract_key(self._contract_id, STORAGE_PREFIX + str(key))
        )

    def storage_delete(self, key: str) -> None:
        self._guard_write()
        self._meter.charge(G.GAS_STORAGE_WRITE)
        self._state.delete(
            self._state.contract_key(self._contract_id, STORAGE_PREFIX + str(key))
        )

    def storage_keys(self, prefix: str = "") -> List[str]:
        full_prefix = self._state.contract_key(
            self._contract_id, STORAGE_PREFIX + str(prefix)
        )
        keys = self._state.keys_with_prefix(full_prefix)
        self._meter.charge(G.GAS_STORAGE_READ * max(1, len(keys)))
        strip = len(self._state.contract_key(self._contract_id, STORAGE_PREFIX))
        return [key[strip:] for key in keys]

    def emit(self, name: str, data: Dict[str, Any]) -> None:
        self._guard_write()
        self._meter.charge(G.GAS_EMIT_EVENT)
        canonical_bytes(data, allow_float=False)
        self._events.append(
            ContractEvent(
                contract_id=self._contract_id,
                name=str(name),
                data=dict(data),
                block_height=self._context.block_height,
            )
        )

    @staticmethod
    def require(condition: Any, message: str = "requirement failed") -> bool:
        if not condition:
            raise ContractError(str(message))
        return True

    def sha256_hex(self, value: Any) -> str:
        data = canonical_bytes(value, allow_float=False)
        self._meter.charge(G.GAS_HASH_PER_BYTE * len(data))
        return sha256_hex(data)


class ContractExecutor:
    """Full executor: transfers, deployments, and contract calls.

    Compiled contracts are cached by source so repeated calls do not re-parse;
    the cache is content-addressed, hence safe to share across nodes.
    """

    def __init__(self) -> None:
        self._compile_cache: Dict[str, ContractSource] = {}

    # -- Executor protocol ------------------------------------------------
    def apply(
        self, state: StateDB, tx: Transaction, context: ExecutionContext
    ) -> Receipt:
        with trace_span(
            "contract.apply", kind=tx.kind, node=context.node_name
        ) as span:
            receipt = self._apply(state, tx, context)
            span.set_attr("gas", receipt.gas_used)
            span.set_attr("success", receipt.success)
            if tx.kind == TX_CALL:
                span.set_attr("method", tx.payload.get("method", ""))
        return receipt

    def _apply(
        self, state: StateDB, tx: Transaction, context: ExecutionContext
    ) -> Receipt:
        expected_nonce = state.nonce(tx.sender)
        if tx.nonce != expected_nonce:
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                error=f"bad nonce: expected {expected_nonce}, got {tx.nonce}",
            )
        state.bump_nonce(tx.sender)
        if tx.kind == TX_TRANSFER:
            return self._apply_transfer(state, tx)
        if tx.kind == TX_DEPLOY:
            return self._apply_deploy(state, tx, context)
        if tx.kind == TX_CALL:
            return self._apply_call(state, tx, context)
        return Receipt(
            tx_id=tx.tx_id, success=False, error=f"unknown tx kind {tx.kind!r}"
        )

    # -- transfer ------------------------------------------------------------
    @staticmethod
    def _apply_transfer(state: StateDB, tx: Transaction) -> Receipt:
        to = tx.payload.get("to")
        amount = tx.payload.get("amount")
        if not isinstance(to, str) or not isinstance(amount, int) or amount < 0:
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                gas_used=BASE_TX_GAS,
                error="malformed transfer payload",
            )
        try:
            state.debit(tx.sender, amount)
        except ChainError as exc:
            return Receipt(
                tx_id=tx.tx_id, success=False, gas_used=BASE_TX_GAS, error=str(exc)
            )
        state.credit(to, amount)
        return Receipt(tx_id=tx.tx_id, success=True, gas_used=BASE_TX_GAS)

    # -- deploy -----------------------------------------------------------
    def _apply_deploy(
        self, state: StateDB, tx: Transaction, context: ExecutionContext
    ) -> Receipt:
        name = tx.payload.get("contract", "")
        source = tx.payload.get("source", "")
        init_args = tx.payload.get("init", {}) or {}
        gas_used = G.GAS_DEPLOY_BASE + G.GAS_DEPLOY_PER_BYTE * len(source)
        if gas_used > tx.gas_limit:
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                gas_used=tx.gas_limit,
                error="out of gas during deployment",
            )
        try:
            compiled = self._compile(source)
        except ContractError as exc:
            return Receipt(
                tx_id=tx.tx_id, success=False, gas_used=gas_used, error=str(exc)
            )
        contract_id = hash_value_hex(
            {"owner": tx.sender, "nonce": tx.nonce, "name": name}, allow_float=False
        )[:40]
        meta_key = state.contract_key(contract_id, META_SLOT)
        if state.contains(meta_key):
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                gas_used=gas_used,
                error="contract already deployed",
            )
        info = ContractInfo(
            contract_id=contract_id,
            name=name,
            owner=tx.sender,
            source=source,
            deployed_at_height=context.block_height,
        )
        state.set(meta_key, info.to_dict())
        events: List[ContractEvent] = []
        if "init" in compiled.functions:
            meter = GasMeter(tx.gas_limit - gas_used)
            state.snapshot()
            try:
                bridge = HostBridge(
                    state, contract_id, tx.sender, context, meter, events
                )
                Interpreter(compiled, bridge.functions(), meter).call(
                    "init", dict(init_args)
                )
                state.commit()
            except (ContractError, OutOfGasError) as exc:
                state.rollback()
                return Receipt(
                    tx_id=tx.tx_id,
                    success=False,
                    gas_used=gas_used + meter.used,
                    error=f"init failed: {exc}",
                )
            gas_used += meter.used
        for event in events:
            event.tx_id = tx.tx_id
        return Receipt(
            tx_id=tx.tx_id,
            success=True,
            gas_used=gas_used,
            output=contract_id,
            events=events,
        )

    # -- call ----------------------------------------------------------------
    def _apply_call(
        self, state: StateDB, tx: Transaction, context: ExecutionContext
    ) -> Receipt:
        contract_id = tx.payload.get("contract", "")
        method = tx.payload.get("method", "")
        args = tx.payload.get("args", {}) or {}
        info = self.contract_info(state, contract_id)
        if info is None:
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                gas_used=G.GAS_CALL_BASE,
                error=f"unknown contract {contract_id[:12]}",
            )
        try:
            compiled = self._compile(info.source)
        except ContractError as exc:
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                gas_used=G.GAS_CALL_BASE,
                error=str(exc),
            )
        meter = GasMeter(max(0, tx.gas_limit - G.GAS_CALL_BASE))
        events: List[ContractEvent] = []
        state.snapshot()
        try:
            bridge = HostBridge(state, contract_id, tx.sender, context, meter, events)
            output = Interpreter(compiled, bridge.functions(), meter).call(
                method, dict(args)
            )
            state.commit()
        except (ContractError, OutOfGasError) as exc:
            state.rollback()
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                gas_used=G.GAS_CALL_BASE + meter.used,
                error=str(exc),
            )
        for event in events:
            event.tx_id = tx.tx_id
        return Receipt(
            tx_id=tx.tx_id,
            success=True,
            gas_used=G.GAS_CALL_BASE + meter.used,
            output=output,
            events=events,
        )

    # -- view (read-only, off-consensus) ----------------------------------
    def execute_view(
        self,
        state: StateDB,
        contract_id: str,
        method: str,
        args: Optional[Dict[str, Any]] = None,
        caller: str = "viewer",
        gas_limit: int = 50_000_000,
        context: Optional[ExecutionContext] = None,
    ) -> Any:
        """Run a method read-only against a state fork (no tx, no writes).

        This is how off-chain control code inspects contract state without
        paying consensus cost — the "light-weight policy control point" read
        path of Figure 1.  The fork is an O(1) overlay rather than a full
        copy; the read-only bridge rejects writes before they reach it.
        """
        info = self.contract_info(state, contract_id)
        if info is None:
            raise ContractError(f"unknown contract {contract_id[:12]}")
        compiled = self._compile(info.source)
        meter = GasMeter(gas_limit)
        events: List[ContractEvent] = []
        bridge = HostBridge(
            state.fork(freeze=False),
            contract_id,
            caller,
            context or ExecutionContext(),
            meter,
            events,
            read_only=True,
        )
        return Interpreter(compiled, bridge.functions(), meter).call(
            method, dict(args or {})
        )

    # -- helpers ----------------------------------------------------------
    def _compile(self, source: str) -> ContractSource:
        key = sha256_hex(source.encode("utf-8"))
        cached = self._compile_cache.get(key)
        if cached is None:
            cached = compile_contract(source)
            self._compile_cache[key] = cached
        return cached

    @staticmethod
    def contract_info(state: StateDB, contract_id: str) -> Optional[ContractInfo]:
        data = state.get(state.contract_key(contract_id, META_SLOT))
        return ContractInfo.from_dict(data) if data else None

    @staticmethod
    def list_contracts(state: StateDB) -> List[ContractInfo]:
        infos = []
        for key in state.keys_with_prefix("contract/"):
            if key.endswith("/" + META_SLOT):
                infos.append(ContractInfo.from_dict(state.get(key)))
        return infos
