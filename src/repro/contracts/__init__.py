"""Smart-contract layer: MedScript VM, runtime executor, built-in contracts."""

from repro.contracts.library import (
    ANALYTICS_SOURCE,
    BLOB_REGISTRY_SOURCE,
    CLINICAL_TRIAL_SOURCE,
    COMPUTE_CONTRACT_SOURCE,
    CONTRACT_CATEGORIES,
    COUNTER_SOURCE,
    DATA_REGISTRY_SOURCE,
    PATIENT_CONSENT_SOURCE,
)
from repro.contracts.registry import ContractRegistry, DeploymentRecord
from repro.contracts.runtime import (
    HOST_FUNCTION_NAMES,
    ContractExecutor,
    ContractInfo,
    HostBridge,
)
from repro.contracts.vm import (
    ContractSource,
    GasMeter,
    Interpreter,
    compile_contract,
)

__all__ = [
    "ANALYTICS_SOURCE",
    "BLOB_REGISTRY_SOURCE",
    "CLINICAL_TRIAL_SOURCE",
    "COMPUTE_CONTRACT_SOURCE",
    "CONTRACT_CATEGORIES",
    "COUNTER_SOURCE",
    "ContractExecutor",
    "ContractInfo",
    "ContractRegistry",
    "ContractSource",
    "DATA_REGISTRY_SOURCE",
    "DeploymentRecord",
    "HOST_FUNCTION_NAMES",
    "PATIENT_CONSENT_SOURCE",
    "GasMeter",
    "HostBridge",
    "Interpreter",
    "compile_contract",
]
