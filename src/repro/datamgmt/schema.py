"""Canonical patient-record schema.

The paper's section V lists "mechanisms to integrate various legacy EMR
formats" as a core challenge; this module defines the canonical target
schema all legacy formats map into (the "common data format" of section II).
A canonical record is a plain dict so it can be hashed, anchored, shipped,
and fed to analytics without a class dependency.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Top-level canonical fields, in schema order.
CANONICAL_FIELDS = (
    "patient_id",       # site-local pseudonymous id
    "national_id_hash", # salted hash of a national id (may be "")
    "birth_year",
    "sex",              # "F" | "M"
    "zip3",             # coarse geography, 3-digit string
    "site",             # hosting site name
    "diagnoses",        # list of ICD-10-ish code strings
    "medications",      # list of drug name strings
    "labs",             # dict name -> float (canonical units)
    "vitals",           # dict: sbp, dbp, bmi, heart_rate
    "genomics",         # dict rsid -> 0/1/2 risk-allele count
    "lifestyle",        # dict: smoker(0/1), alcohol_units_week, exercise_hours_week
    "outcomes",         # dict outcome_name -> 0/1 or float
)

#: Lab names and their canonical units.
CANONICAL_LAB_UNITS = {
    "glucose": "mg/dL",
    "ldl": "mg/dL",
    "hdl": "mg/dL",
    "hba1c": "%",
    "creatinine": "mg/dL",
}

#: Genomic variant panel used by the synthetic cohort (risk loci).
VARIANT_PANEL = (
    "rs4977574",  # CAD/stroke-associated (9p21)
    "rs2200733",  # atrial fibrillation
    "rs7903146",  # TCF7L2, type-2 diabetes
    "rs429358",   # APOE e4
    "rs1333049",  # CAD
    "rs10757278", # stroke
)

#: Outcomes tracked by the reproduction's disease models.
OUTCOME_NAMES = ("stroke", "diabetes", "cancer")

REQUIRED_VITALS = ("sbp", "dbp", "bmi", "heart_rate")
REQUIRED_LIFESTYLE = ("smoker", "alcohol_units_week", "exercise_hours_week")


def empty_record() -> Dict[str, Any]:
    """A canonical record skeleton with empty values."""
    return {
        "patient_id": "",
        "national_id_hash": "",
        "birth_year": 0,
        "sex": "F",
        "zip3": "000",
        "site": "",
        "diagnoses": [],
        "medications": [],
        "labs": {},
        "vitals": {},
        "genomics": {},
        "lifestyle": {},
        "outcomes": {},
    }


def validate_canonical(record: Dict[str, Any]) -> List[str]:
    """Return a list of schema violations (empty = valid)."""
    problems: List[str] = []
    for field in CANONICAL_FIELDS:
        if field not in record:
            problems.append(f"missing field {field!r}")
    if not problems:
        if record["sex"] not in ("F", "M"):
            problems.append(f"bad sex {record['sex']!r}")
        if not isinstance(record["birth_year"], int) or not (
            1900 <= record["birth_year"] <= 2030
        ):
            problems.append(f"bad birth_year {record['birth_year']!r}")
        for vital in REQUIRED_VITALS:
            if vital not in record["vitals"]:
                problems.append(f"missing vital {vital!r}")
        for item in REQUIRED_LIFESTYLE:
            if item not in record["lifestyle"]:
                problems.append(f"missing lifestyle item {item!r}")
        for lab in record["labs"]:
            if lab not in CANONICAL_LAB_UNITS:
                problems.append(f"unknown lab {lab!r}")
    return problems


def is_canonical(record: Dict[str, Any]) -> bool:
    return not validate_canonical(record)


def age_in(record: Dict[str, Any], current_year: int = 2018) -> int:
    """Patient age at the paper's publication year by default."""
    return max(0, current_year - record["birth_year"])
