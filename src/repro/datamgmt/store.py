"""Hospital data store: locally hosted, legacy-formatted, anchor-able.

Each hospital keeps its records in its own legacy format (the silo problem,
section III.A).  The store exposes the :class:`DatasetHost` duck-type the
control node expects — ``get_records`` parses legacy rows to canonical on
the way out, so the schema mappers run on every real access path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.common.errors import DataFormatError, OracleError
from repro.datamgmt.formats import KNOWN_FORMATS, export_record, parse_record
from repro.offchain.anchoring import DatasetAnchor


@dataclass
class StoredDataset:
    """One dataset held at a site, in its native legacy format."""

    dataset_id: str
    fmt: str
    raw_records: List[Dict[str, Any]]
    owner: str = ""
    schema: str = "patient-canonical-v1"


class HospitalDataStore:
    """Per-site data silo.

    Implements ``has_dataset`` / ``get_records`` so it can be plugged
    directly into :class:`repro.offchain.control.ControlNode`.
    """

    def __init__(self, site: str):
        self.site = site
        self._datasets: Dict[str, StoredDataset] = {}

    # -- ingestion -----------------------------------------------------------
    def add_canonical(
        self,
        dataset_id: str,
        canonical_records: List[Dict[str, Any]],
        fmt: str = "canonical",
        owner: str = "",
    ) -> StoredDataset:
        """Store canonical records, converting to the site's legacy format."""
        if fmt != "canonical" and fmt not in KNOWN_FORMATS:
            raise DataFormatError(f"unknown format {fmt!r}")
        if dataset_id in self._datasets:
            raise OracleError(f"dataset {dataset_id!r} already exists at {self.site}")
        raw = [export_record(record, fmt) for record in canonical_records]
        dataset = StoredDataset(
            dataset_id=dataset_id, fmt=fmt, raw_records=raw, owner=owner
        )
        self._datasets[dataset_id] = dataset
        return dataset

    def add_raw(
        self,
        dataset_id: str,
        raw_records: List[Dict[str, Any]],
        fmt: str,
        owner: str = "",
    ) -> StoredDataset:
        """Store already-legacy records (validated by a trial parse)."""
        for raw in raw_records[:3]:
            parse_record(raw, fmt)
        dataset = StoredDataset(
            dataset_id=dataset_id, fmt=fmt, raw_records=list(raw_records), owner=owner
        )
        if dataset_id in self._datasets:
            raise OracleError(f"dataset {dataset_id!r} already exists at {self.site}")
        self._datasets[dataset_id] = dataset
        return dataset

    # -- DatasetHost interface ------------------------------------------------
    def has_dataset(self, dataset_id: str) -> bool:
        return dataset_id in self._datasets

    def get_records(self, dataset_id: str) -> List[Dict[str, Any]]:
        """Canonical records (parsed from the native format on access)."""
        dataset = self._require(dataset_id)
        return [parse_record(raw, dataset.fmt) for raw in dataset.raw_records]

    # -- management -----------------------------------------------------------
    def get_raw(self, dataset_id: str) -> List[Dict[str, Any]]:
        return list(self._require(dataset_id).raw_records)

    def dataset_ids(self) -> List[str]:
        return sorted(self._datasets)

    def dataset_format(self, dataset_id: str) -> str:
        return self._require(dataset_id).fmt

    def record_count(self, dataset_id: str) -> int:
        return len(self._require(dataset_id).raw_records)

    def anchor(self, dataset_id: str) -> DatasetAnchor:
        """Merkle anchor over the canonical view (what verifiers recompute)."""
        return DatasetAnchor.build(self.get_records(dataset_id))

    def tamper(
        self, dataset_id: str, index: int, key: str, value: Any
    ) -> None:
        """Mutate a stored record in place — used by integrity experiments
        (E7) to inject post-registration falsification."""
        dataset = self._require(dataset_id)
        if not 0 <= index < len(dataset.raw_records):
            raise OracleError(f"record index {index} out of range")
        dataset.raw_records[index][key] = value

    def _require(self, dataset_id: str) -> StoredDataset:
        dataset = self._datasets.get(dataset_id)
        if dataset is None:
            raise OracleError(f"dataset {dataset_id!r} is not hosted at {self.site}")
        return dataset
