"""Cross-site patient record linkage.

Patients "leave their EMR scattered around in various medical databases"
(section III.A); building one virtual person-centric record requires linking
site-local records that belong to the same person.  Two mechanisms:

- *deterministic*: equal salted national-id hashes (when present);
- *probabilistic*: Fellegi–Sunter-style log-likelihood scoring over
  quasi-identifiers (birth year, sex, zip3, stable genomic panel), used when
  a site never captured the national id.

Experiment E6 measures linkage precision/recall as the fraction of records
carrying a national id degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LinkageWeights:
    """Agreement/disagreement log-weights per quasi-identifier."""

    birth_year_agree: float = 2.2
    birth_year_disagree: float = -3.0
    sex_agree: float = 0.7
    sex_disagree: float = -4.0
    zip3_agree: float = 2.0
    zip3_disagree: float = -0.8
    genomics_agree_per_locus: float = 0.9
    genomics_disagree_per_locus: float = -2.5
    threshold: float = 6.0


def pair_score(
    a: Dict[str, Any], b: Dict[str, Any], weights: Optional[LinkageWeights] = None
) -> float:
    """Probabilistic match score between two canonical records."""
    weights = weights or LinkageWeights()
    score = 0.0
    score += (
        weights.birth_year_agree
        if a["birth_year"] == b["birth_year"]
        else weights.birth_year_disagree
    )
    score += weights.sex_agree if a["sex"] == b["sex"] else weights.sex_disagree
    score += weights.zip3_agree if a["zip3"] == b["zip3"] else weights.zip3_disagree
    genomics_a, genomics_b = a.get("genomics", {}), b.get("genomics", {})
    for rsid in sorted(set(genomics_a) & set(genomics_b)):
        if genomics_a[rsid] == genomics_b[rsid]:
            score += weights.genomics_agree_per_locus
        else:
            score += weights.genomics_disagree_per_locus
    return score


@dataclass
class LinkageResult:
    """Clusters of records believed to belong to one person."""

    clusters: List[List[Dict[str, Any]]]
    deterministic_links: int
    probabilistic_links: int

    @property
    def person_count(self) -> int:
        return len(self.clusters)


class RecordLinker:
    """Links records from many sites into per-person clusters."""

    def __init__(self, weights: Optional[LinkageWeights] = None):
        self.weights = weights or LinkageWeights()

    def link(self, records: Sequence[Dict[str, Any]]) -> LinkageResult:
        """Union-find over deterministic and probabilistic matches.

        Blocking: probabilistic comparison only within (birth_year, sex)
        blocks, keeping the pair count tractable.
        """
        parent = list(range(len(records)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[max(ri, rj)] = min(ri, rj)

        deterministic = 0
        by_nid: Dict[str, int] = {}
        for index, record in enumerate(records):
            nid = record.get("national_id_hash", "")
            if nid:
                if nid in by_nid:
                    union(by_nid[nid], index)
                    deterministic += 1
                else:
                    by_nid[nid] = index

        probabilistic = 0
        blocks: Dict[Tuple[int, str], List[int]] = {}
        for index, record in enumerate(records):
            blocks.setdefault((record["birth_year"], record["sex"]), []).append(index)
        for block in blocks.values():
            for position, i in enumerate(block):
                for j in block[position + 1:]:
                    if find(i) == find(j):
                        continue
                    if (
                        pair_score(records[i], records[j], self.weights)
                        >= self.weights.threshold
                    ):
                        union(i, j)
                        probabilistic += 1

        clusters: Dict[int, List[Dict[str, Any]]] = {}
        for index, record in enumerate(records):
            clusters.setdefault(find(index), []).append(record)
        return LinkageResult(
            clusters=list(clusters.values()),
            deterministic_links=deterministic,
            probabilistic_links=probabilistic,
        )


def evaluate_linkage(
    result: LinkageResult, truth_key: str = "_person"
) -> Dict[str, float]:
    """Pairwise precision/recall against ground-truth person labels.

    Records must carry a ``truth_key`` field with the true person id
    (test harnesses attach it before masking national ids).
    """
    predicted_pairs = set()
    for cluster in result.clusters:
        ids = [id(record) for record in cluster]
        for i in range(len(ids)):
            for j in range(i + 1, len(ids)):
                predicted_pairs.add((min(ids[i], ids[j]), max(ids[i], ids[j])))
    true_groups: Dict[Any, List[int]] = {}
    for cluster in result.clusters:
        for record in cluster:
            true_groups.setdefault(record.get(truth_key), []).append(id(record))
    true_pairs = set()
    for members in true_groups.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                true_pairs.add(
                    (min(members[i], members[j]), max(members[i], members[j]))
                )
    true_positive = len(predicted_pairs & true_pairs)
    precision = true_positive / len(predicted_pairs) if predicted_pairs else 1.0
    recall = true_positive / len(true_pairs) if true_pairs else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}
