"""Virtual cohort: a large logical data set that never moves.

Section III.A's goal — "build a large size core initial training data set"
from "individual and distributed EMR data sets hosted by various hospitals"
— without copying data.  A :class:`VirtualCohort` holds *references* to
site-hosted datasets plus mergeable summary machinery, so global statistics
and model updates are composed from per-site partials (the compose step of
Figures 5/6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.errors import QueryError


@dataclass(frozen=True)
class DatasetRef:
    """Pointer to one site-hosted dataset."""

    site: str
    dataset_id: str
    record_count: int
    schema: str = "patient-canonical-v1"


#: Resolves a site name to something with ``get_records(dataset_id)``.
HostResolver = Callable[[str], Any]


def get_field(record: Dict[str, Any], path: str) -> Any:
    """Fetch a possibly nested field via dotted path (``vitals.sbp``)."""
    value: Any = record
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            raise QueryError(f"record has no field {path!r}")
        value = value[part]
    return value


@dataclass
class NumericSummary:
    """Mergeable moments summary (count/sum/sum-of-squares/min/max)."""

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.total_sq += value * value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "NumericSummary") -> "NumericSummary":
        merged = NumericSummary(
            count=self.count + other.count,
            total=self.total + other.total,
            total_sq=self.total_sq + other.total_sq,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )
        return merged

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return max(0.0, self.total_sq / self.count - self.mean**2)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "NumericSummary":
        summary = cls()
        for value in values:
            summary.add(value)
        return summary

    @classmethod
    def from_dict_parts(cls, parts: Dict[str, float]) -> "NumericSummary":
        summary = cls()
        summary.count = int(parts["count"])
        summary.total = parts["mean"] * summary.count
        summary.total_sq = (parts["variance"] + parts["mean"] ** 2) * summary.count
        summary.minimum = parts.get("min", 0.0)
        summary.maximum = parts.get("max", 0.0)
        return summary


class VirtualCohort:
    """Composition of distributed datasets behind one logical interface."""

    def __init__(self, resolver: HostResolver):
        self._resolver = resolver
        self._refs: List[DatasetRef] = []

    def add_ref(self, ref: DatasetRef) -> None:
        self._refs.append(ref)

    @property
    def refs(self) -> List[DatasetRef]:
        return list(self._refs)

    @property
    def total_records(self) -> int:
        return sum(ref.record_count for ref in self._refs)

    @property
    def sites(self) -> List[str]:
        return sorted({ref.site for ref in self._refs})

    # -- pushed-down computation ------------------------------------------
    def map_sites(
        self, fn: Callable[[List[Dict[str, Any]], DatasetRef], Any]
    ) -> Dict[str, List[Any]]:
        """Run ``fn`` against each referenced dataset *at its site*.

        The records never leave the resolver's return path; only ``fn``'s
        (small) output is collected — move-compute-to-data in miniature.
        """
        partials: Dict[str, List[Any]] = {}
        for ref in self._refs:
            host = self._resolver(ref.site)
            records = host.get_records(ref.dataset_id)
            partials.setdefault(ref.site, []).append(fn(records, ref))
        return partials

    def numeric_summary(
        self, path: str, predicate: Optional[Callable[[Dict[str, Any]], bool]] = None
    ) -> NumericSummary:
        """Global summary of a numeric field, composed from site partials."""

        def local(records: List[Dict[str, Any]], __: DatasetRef) -> NumericSummary:
            summary = NumericSummary()
            for record in records:
                if predicate is None or predicate(record):
                    summary.add(get_field(record, path))
            return summary

        merged = NumericSummary()
        for site_partials in self.map_sites(local).values():
            for partial in site_partials:
                merged = merged.merge(partial)
        return merged

    def count_where(self, predicate: Callable[[Dict[str, Any]], bool]) -> int:
        """Global count of matching records, composed from site counts."""

        def local(records: List[Dict[str, Any]], __: DatasetRef) -> int:
            return sum(1 for record in records if predicate(record))

        return sum(
            partial
            for site_partials in self.map_sites(local).values()
            for partial in site_partials
        )

    def prevalence(self, outcome: str) -> float:
        """Fraction of patients with a binary outcome, across all sites."""
        total = self.total_records
        if total == 0:
            return 0.0
        positives = self.count_where(
            lambda record: bool(record.get("outcomes", {}).get(outcome, 0))
        )
        return positives / total
