"""Legacy EMR formats and bidirectional mappers to the canonical schema.

Section V: "Explore mechanisms to integrate various legacy EMR formats."
Three deliberately dissimilar formats are modelled on real-world families:

- ``hl7v2``: segment-oriented, cryptic keys, everything stringly typed,
  glucose in mmol/L (unit conversion required);
- ``fhirjson``: deeply nested resource bundles, ISO-coded sex;
- ``legacycsv``: flat abbreviated columns, birth date as MM/DD/YYYY string,
  semicolon-joined lists.

Each mapper is total over records produced by its exporter, and the
round-trip ``canonical -> legacy -> canonical`` preserves all analytic
fields (property-tested).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.errors import DataFormatError
from repro.datamgmt.schema import empty_record, validate_canonical

MMOL_PER_MGDL_GLUCOSE = 0.0555


# ---------------------------------------------------------------------------
# hl7v2-like
# ---------------------------------------------------------------------------

def canonical_to_hl7v2(record: Dict[str, Any]) -> Dict[str, Any]:
    """Export a canonical record as an HL7v2-flavoured segment dict."""
    sex_code = {"F": "F", "M": "M"}[record["sex"]]
    obx: List[Dict[str, Any]] = []
    for lab, value in sorted(record["labs"].items()):
        if lab == "glucose":
            obx.append(
                {"code": "GLU^mmol/L", "value": round(value * MMOL_PER_MGDL_GLUCOSE, 4)}
            )
        else:
            obx.append({"code": lab.upper(), "value": value})
    for vital, value in sorted(record["vitals"].items()):
        obx.append({"code": "VIT^" + vital.upper(), "value": value})
    return {
        "MSH": {"sending_facility": record["site"], "version": "2.5"},
        "PID": {
            "id": record["patient_id"],
            "nid_hash": record["national_id_hash"],
            "dob_year": str(record["birth_year"]),
            "sex": sex_code,
            "zip": record["zip3"],
        },
        "DG1": [{"code": code} for code in record["diagnoses"]],
        "RXE": [{"drug": drug} for drug in record["medications"]],
        "OBX": obx,
        "ZGN": dict(record["genomics"]),
        "ZLS": dict(record["lifestyle"]),
        "ZOC": dict(record["outcomes"]),
    }


def hl7v2_to_canonical(message: Dict[str, Any]) -> Dict[str, Any]:
    """Parse the HL7v2-flavoured dict back into a canonical record."""
    try:
        pid = message["PID"]
        record = empty_record()
        record["patient_id"] = pid["id"]
        record["national_id_hash"] = pid.get("nid_hash", "")
        record["birth_year"] = int(pid["dob_year"])
        record["sex"] = pid["sex"]
        record["zip3"] = pid.get("zip", "000")
        record["site"] = message.get("MSH", {}).get("sending_facility", "")
        record["diagnoses"] = [seg["code"] for seg in message.get("DG1", [])]
        record["medications"] = [seg["drug"] for seg in message.get("RXE", [])]
        for obs in message.get("OBX", []):
            code, value = obs["code"], obs["value"]
            if code == "GLU^mmol/L":
                record["labs"]["glucose"] = float(value) / MMOL_PER_MGDL_GLUCOSE
            elif code.startswith("VIT^"):
                record["vitals"][code[4:].lower()] = float(value)
            else:
                record["labs"][code.lower()] = float(value)
        record["genomics"] = {k: int(v) for k, v in message.get("ZGN", {}).items()}
        record["lifestyle"] = dict(message.get("ZLS", {}))
        record["outcomes"] = dict(message.get("ZOC", {}))
        return record
    except (KeyError, TypeError, ValueError) as exc:
        raise DataFormatError(f"malformed hl7v2 message: {exc}") from exc


# ---------------------------------------------------------------------------
# FHIR-JSON-like
# ---------------------------------------------------------------------------

def canonical_to_fhirjson(record: Dict[str, Any]) -> Dict[str, Any]:
    """Export as a FHIR-flavoured bundle of nested resources."""
    sex_word = {"F": "female", "M": "male"}[record["sex"]]
    observations = []
    for lab, value in sorted(record["labs"].items()):
        observations.append(
            {
                "resourceType": "Observation",
                "category": "laboratory",
                "code": {"text": lab},
                "valueQuantity": {"value": value, "unit": "canonical"},
            }
        )
    for vital, value in sorted(record["vitals"].items()):
        observations.append(
            {
                "resourceType": "Observation",
                "category": "vital-signs",
                "code": {"text": vital},
                "valueQuantity": {"value": value, "unit": "canonical"},
            }
        )
    return {
        "resourceType": "Bundle",
        "entry": [
            {
                "resource": {
                    "resourceType": "Patient",
                    "id": record["patient_id"],
                    "identifier": [
                        {"system": "nid-hash", "value": record["national_id_hash"]}
                    ],
                    "gender": sex_word,
                    "birthDate": f"{record['birth_year']}-01-01",
                    "address": [{"postalCode": record["zip3"]}],
                    "managingOrganization": {"display": record["site"]},
                }
            },
            *(
                {
                    "resource": {
                        "resourceType": "Condition",
                        "code": {"coding": [{"code": code}]},
                    }
                }
                for code in record["diagnoses"]
            ),
            *(
                {
                    "resource": {
                        "resourceType": "MedicationStatement",
                        "medication": {"text": drug},
                    }
                }
                for drug in record["medications"]
            ),
            *({"resource": obs} for obs in observations),
            {
                "resource": {
                    "resourceType": "MolecularSequence",
                    "variants": dict(record["genomics"]),
                }
            },
            {
                "resource": {
                    "resourceType": "Observation",
                    "category": "social-history",
                    "components": dict(record["lifestyle"]),
                }
            },
            {
                "resource": {
                    "resourceType": "Observation",
                    "category": "outcome",
                    "components": dict(record["outcomes"]),
                }
            },
        ],
    }


def fhirjson_to_canonical(bundle: Dict[str, Any]) -> Dict[str, Any]:
    """Parse the FHIR-flavoured bundle into a canonical record."""
    try:
        record = empty_record()
        for entry in bundle["entry"]:
            resource = entry["resource"]
            rtype = resource["resourceType"]
            if rtype == "Patient":
                record["patient_id"] = resource["id"]
                for identifier in resource.get("identifier", []):
                    if identifier.get("system") == "nid-hash":
                        record["national_id_hash"] = identifier["value"]
                record["sex"] = {"female": "F", "male": "M"}[resource["gender"]]
                record["birth_year"] = int(resource["birthDate"][:4])
                addresses = resource.get("address", [])
                record["zip3"] = addresses[0]["postalCode"] if addresses else "000"
                record["site"] = resource.get("managingOrganization", {}).get(
                    "display", ""
                )
            elif rtype == "Condition":
                record["diagnoses"].append(resource["code"]["coding"][0]["code"])
            elif rtype == "MedicationStatement":
                record["medications"].append(resource["medication"]["text"])
            elif rtype == "MolecularSequence":
                record["genomics"] = {
                    k: int(v) for k, v in resource["variants"].items()
                }
            elif rtype == "Observation":
                category = resource.get("category", "")
                if category == "laboratory":
                    record["labs"][resource["code"]["text"]] = float(
                        resource["valueQuantity"]["value"]
                    )
                elif category == "vital-signs":
                    record["vitals"][resource["code"]["text"]] = float(
                        resource["valueQuantity"]["value"]
                    )
                elif category == "social-history":
                    record["lifestyle"] = dict(resource["components"])
                elif category == "outcome":
                    record["outcomes"] = dict(resource["components"])
        return record
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise DataFormatError(f"malformed fhir bundle: {exc}") from exc


# ---------------------------------------------------------------------------
# legacy flat CSV-like
# ---------------------------------------------------------------------------

_CSV_LAB_COLUMNS = {
    "glucose": "glu_mgdl",
    "ldl": "ldl_mgdl",
    "hdl": "hdl_mgdl",
    "hba1c": "a1c_pct",
    "creatinine": "creat_mgdl",
}
_CSV_VITAL_COLUMNS = {"sbp": "bp_sys", "dbp": "bp_dia", "bmi": "bmi", "heart_rate": "hr"}


def canonical_to_legacycsv(record: Dict[str, Any]) -> Dict[str, Any]:
    """Export as one flat row with abbreviated column names."""
    row: Dict[str, Any] = {
        "pt_id": record["patient_id"],
        "nid_h": record["national_id_hash"],
        "dob": f"01/01/{record['birth_year']}",
        "sx": {"F": "2", "M": "1"}[record["sex"]],  # old numeric coding
        "zip": record["zip3"],
        "fac": record["site"],
        "dx_list": ";".join(record["diagnoses"]),
        "rx_list": ";".join(record["medications"]),
        "smoke_yn": "Y" if record["lifestyle"].get("smoker") else "N",
        "etoh_wk": record["lifestyle"].get("alcohol_units_week", 0.0),
        "exer_wk": record["lifestyle"].get("exercise_hours_week", 0.0),
    }
    for lab, column in _CSV_LAB_COLUMNS.items():
        if lab in record["labs"]:
            row[column] = record["labs"][lab]
    for vital, column in _CSV_VITAL_COLUMNS.items():
        if vital in record["vitals"]:
            row[column] = record["vitals"][vital]
    for rsid, dose in record["genomics"].items():
        row[f"gen_{rsid}"] = dose
    for outcome, value in record["outcomes"].items():
        row[f"oc_{outcome}"] = value
    return row


def legacycsv_to_canonical(row: Dict[str, Any]) -> Dict[str, Any]:
    """Parse a flat legacy row into a canonical record."""
    try:
        record = empty_record()
        record["patient_id"] = row["pt_id"]
        record["national_id_hash"] = row.get("nid_h", "")
        record["birth_year"] = int(str(row["dob"]).rsplit("/", 1)[-1])
        record["sex"] = {"2": "F", "1": "M"}[str(row["sx"])]
        record["zip3"] = str(row.get("zip", "000"))
        record["site"] = row.get("fac", "")
        record["diagnoses"] = [c for c in str(row.get("dx_list", "")).split(";") if c]
        record["medications"] = [c for c in str(row.get("rx_list", "")).split(";") if c]
        record["lifestyle"] = {
            "smoker": 1 if row.get("smoke_yn") == "Y" else 0,
            "alcohol_units_week": float(row.get("etoh_wk", 0.0)),
            "exercise_hours_week": float(row.get("exer_wk", 0.0)),
        }
        for lab, column in _CSV_LAB_COLUMNS.items():
            if column in row:
                record["labs"][lab] = float(row[column])
        for vital, column in _CSV_VITAL_COLUMNS.items():
            if column in row:
                record["vitals"][vital] = float(row[column])
        for key, value in row.items():
            if key.startswith("gen_"):
                record["genomics"][key[4:]] = int(value)
            elif key.startswith("oc_"):
                record["outcomes"][key[3:]] = value
        return record
    except (KeyError, TypeError, ValueError) as exc:
        raise DataFormatError(f"malformed legacy csv row: {exc}") from exc


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

FORMAT_EXPORTERS = {
    "hl7v2": canonical_to_hl7v2,
    "fhirjson": canonical_to_fhirjson,
    "legacycsv": canonical_to_legacycsv,
}

FORMAT_PARSERS = {
    "hl7v2": hl7v2_to_canonical,
    "fhirjson": fhirjson_to_canonical,
    "legacycsv": legacycsv_to_canonical,
}

KNOWN_FORMATS = tuple(sorted(FORMAT_EXPORTERS))


def export_record(record: Dict[str, Any], fmt: str) -> Dict[str, Any]:
    """Canonical record -> legacy format ``fmt``."""
    if fmt == "canonical":
        return record
    exporter = FORMAT_EXPORTERS.get(fmt)
    if exporter is None:
        raise DataFormatError(f"unknown format {fmt!r}")
    return exporter(record)


def parse_record(raw: Dict[str, Any], fmt: str) -> Dict[str, Any]:
    """Legacy record in format ``fmt`` -> canonical, schema-validated."""
    if fmt == "canonical":
        canonical = raw
    else:
        parser = FORMAT_PARSERS.get(fmt)
        if parser is None:
            raise DataFormatError(f"unknown format {fmt!r}")
        canonical = parser(raw)
    problems = validate_canonical(canonical)
    if problems:
        raise DataFormatError(
            f"record failed canonical validation after {fmt} parse: {problems[:3]}"
        )
    return canonical
