"""Wearable-device data streams (paper section II).

The paper's heterogeneous data inventory includes "personal activity record
with analytic tools for environments and lifestyles" and "wearable device
health data ... hosted virtually everywhere".  This module generates
per-patient daily wearable series (steps, resting heart rate, sleep hours)
consistent with the patient's canonical lifestyle fields, plus mergeable
summaries so wearable analytics run through the same decompose/compose path
as EMR analytics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.common.errors import DataFormatError
from repro.datamgmt.virtual import NumericSummary


@dataclass
class WearableSeries:
    """One patient's daily wearable stream."""

    patient_id: str
    days: int
    steps: List[int]
    resting_hr: List[float]
    sleep_hours: List[float]

    def validate(self) -> None:
        lengths = {len(self.steps), len(self.resting_hr), len(self.sleep_hours)}
        if lengths != {self.days}:
            raise DataFormatError(
                f"series lengths {lengths} do not match days={self.days}"
            )

    def to_record(self) -> Dict[str, Any]:
        """Flat dict form (anchorable / exchangeable like any record)."""
        return {
            "patient_id": self.patient_id,
            "days": self.days,
            "steps": list(self.steps),
            "resting_hr": list(self.resting_hr),
            "sleep_hours": list(self.sleep_hours),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "WearableSeries":
        series = cls(
            patient_id=record["patient_id"],
            days=int(record["days"]),
            steps=[int(v) for v in record["steps"]],
            resting_hr=[float(v) for v in record["resting_hr"]],
            sleep_hours=[float(v) for v in record["sleep_hours"]],
        )
        series.validate()
        return series

    def summary(self) -> Dict[str, Any]:
        """Per-patient mergeable summary."""
        return {
            "patient_id": self.patient_id,
            "steps": NumericSummary.from_values(self.steps).to_dict(),
            "resting_hr": NumericSummary.from_values(self.resting_hr).to_dict(),
            "sleep_hours": NumericSummary.from_values(self.sleep_hours).to_dict(),
            "active_days": sum(1 for s in self.steps if s >= 8000),
        }


class WearableGenerator:
    """Generates wearable streams consistent with canonical EMR records.

    Exercise hours raise step counts; smoking and high resting-risk raise
    resting heart rate; the series carry weekly periodicity and noise so
    they look like real device exports.
    """

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)

    def series_for(self, record: Dict[str, Any], days: int = 28) -> WearableSeries:
        rng = self.rng
        lifestyle = record.get("lifestyle", {})
        vitals = record.get("vitals", {})
        exercise = float(lifestyle.get("exercise_hours_week", 2.0))
        smoker = int(lifestyle.get("smoker", 0))
        base_steps = 4000 + 1400 * exercise
        base_hr = float(vitals.get("heart_rate", 72.0)) - 8 + 4 * smoker
        base_sleep = 7.2 - 0.3 * smoker
        steps, resting_hr, sleep_hours = [], [], []
        for day in range(days):
            weekend = day % 7 in (5, 6)
            step_mean = base_steps * (1.15 if weekend else 1.0)
            steps.append(int(max(0, rng.normal(step_mean, step_mean * 0.25))))
            resting_hr.append(float(np.clip(rng.normal(base_hr, 2.5), 38, 130)))
            sleep_hours.append(float(np.clip(rng.normal(base_sleep, 0.8), 3, 12)))
        series = WearableSeries(
            patient_id=record["patient_id"],
            days=days,
            steps=steps,
            resting_hr=resting_hr,
            sleep_hours=sleep_hours,
        )
        series.validate()
        return series

    def cohort_streams(
        self, records: Sequence[Dict[str, Any]], days: int = 28
    ) -> List[Dict[str, Any]]:
        """Wearable records (dict form) for a whole cohort."""
        return [self.series_for(record, days).to_record() for record in records]


def tool_wearable_summary(
    records: Sequence[Dict[str, Any]], params: Dict[str, Any]
) -> Dict[str, Any]:
    """Site tool: mergeable cohort-level wearable summary.

    ``records`` are wearable records (``WearableSeries.to_record`` form).
    Returns merged moments for each stream plus the active-day fraction,
    so per-site partials compose exactly like ``numeric_summary``.
    """
    merged = {
        "steps": NumericSummary(),
        "resting_hr": NumericSummary(),
        "sleep_hours": NumericSummary(),
    }
    active_days = 0
    total_days = 0
    for raw in records:
        series = WearableSeries.from_record(raw)
        for value in series.steps:
            merged["steps"].add(value)
        for value in series.resting_hr:
            merged["resting_hr"].add(value)
        for value in series.sleep_hours:
            merged["sleep_hours"].add(value)
        active_days += sum(1 for s in series.steps if s >= 8000)
        total_days += series.days
    return {
        "patients": len(records),
        "steps": merged["steps"].to_dict(),
        "resting_hr": merged["resting_hr"].to_dict(),
        "sleep_hours": merged["sleep_hours"].to_dict(),
        "active_day_fraction": active_days / total_days if total_days else 0.0,
    }


def merge_wearable_summaries(
    partials: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Compose per-site wearable summaries into the global one."""
    merged = {
        "steps": NumericSummary(),
        "resting_hr": NumericSummary(),
        "sleep_hours": NumericSummary(),
    }
    patients = 0
    active_weighted = 0.0
    total_days = 0.0
    for partial in partials:
        patients += int(partial["patients"])
        for key in merged:
            merged[key] = merged[key].merge(
                NumericSummary.from_dict_parts(partial[key])
            )
        days = partial["steps"]["count"]
        active_weighted += partial["active_day_fraction"] * days
        total_days += days
    return {
        "patients": patients,
        "steps": merged["steps"].to_dict(),
        "resting_hr": merged["resting_hr"].to_dict(),
        "sleep_hours": merged["sleep_hours"].to_dict(),
        "active_day_fraction": active_weighted / total_days if total_days else 0.0,
    }
