"""Synthetic patient-cohort generator.

Stands in for the hospital EMR / TCGA / wearable data the paper assumes
(see DESIGN.md substitutions).  The generator produces canonical records
with a *learnable* disease signal: each outcome is drawn from a logistic
model over demographics, vitals, labs, lifestyle, and the genomic variant
panel, with published-epidemiology-flavoured effect directions (age, blood
pressure and smoking raise stroke risk; TCF7L2 raises diabetes risk; the
atrial-fibrillation variant interacts with treatment response for the
precision-medicine trial experiment E11).

Sites draw from shifted demographic distributions so per-site data is
non-IID — the realistic setting for federated learning (E8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.common.hashing import sha256_hex
from repro.datamgmt.schema import VARIANT_PANEL, empty_record


@dataclass
class SiteProfile:
    """Demographic shifts of one hospital's catchment population."""

    name: str
    mean_birth_year: float = 1960.0
    birth_year_sd: float = 15.0
    smoking_rate: float = 0.25
    mean_bmi: float = 26.0
    variant_freq_shift: float = 0.0  # added to risk-allele frequencies
    zip3: str = "100"


DEFAULT_VARIANT_FREQUENCIES = {
    "rs4977574": 0.45,
    "rs2200733": 0.12,
    "rs7903146": 0.30,
    "rs429358": 0.15,
    "rs1333049": 0.48,
    "rs10757278": 0.44,
}


@dataclass
class DiseaseModel:
    """Logistic outcome model: P(outcome) = sigmoid(intercept + sum(w*x))."""

    name: str
    intercept: float
    weights: Dict[str, float]

    def probability(self, features: Dict[str, float]) -> float:
        logit = self.intercept + sum(
            weight * features.get(key, 0.0) for key, weight in self.weights.items()
        )
        return 1.0 / (1.0 + math.exp(-logit))


def default_disease_models() -> Dict[str, DiseaseModel]:
    """Outcome models for the three diseases the project targets (section IV).

    Each outcome loads on shared *latent risk factors* (metabolic, vascular,
    inflammatory) that are nonlinear interactions of the raw measurements --
    see :meth:`CohortGenerator._derive_features`.  The shared nonlinear
    structure is what makes a pretrained core model transferable across
    diseases (the paper's section III.A/III.C claim, exercised by E9): a
    hidden layer that learned "metabolic risk" from stroke and cancer data
    has a head start on diabetes.
    """
    return {
        "stroke": DiseaseModel(
            name="stroke",
            intercept=-3.6,
            weights={
                "latent_vascular": 3.4,
                "latent_metabolic": 1.2,
                "age_decades": 0.12,
                "diabetic": 0.5,
            },
        ),
        "diabetes": DiseaseModel(
            name="diabetes",
            intercept=-2.7,
            weights={
                "latent_metabolic": 4.2,
                "latent_vascular": 0.6,
                "age_decades": 0.06,
            },
        ),
        "cancer": DiseaseModel(
            name="cancer",
            intercept=-3.0,
            weights={
                "latent_inflammatory": 1.5,
                "latent_metabolic": 0.4,
                "age_decades": 0.22,
            },
        ),
    }


def latent_factors(base: Dict[str, float]) -> Dict[str, float]:
    """Shared nonlinear latent risk factors.

    These are interactions and threshold effects over the raw measurements:
    a *linear* model over the raw features cannot represent them, so a
    hidden layer that learns them on one disease carries real information to
    the others (the transferable "core features" of section III.A).
    """
    metabolic = math.tanh(
        0.35 * (base["bmi_excess"] / 4.0) * max(0.0, base["glucose_per10"])
        + 0.55 * base.get("rs7903146", 0.0) * (1.0 if base["glucose_per10"] > 0.5 else 0.0)
        + 0.30 * base["exercise_deficit"] / 3.0 * (base["bmi_excess"] / 6.0)
    )
    vascular = math.tanh(
        0.30 * max(0.0, base["sbp_per10"]) * (base["age_decades"] / 6.0)
        + 0.50 * base["smoker"] * (base["age_decades"] / 6.0)
        + 0.35
        * (base.get("rs2200733", 0.0) + base.get("rs10757278", 0.0))
        / 2.0
        * (1.0 if base["sbp_per10"] > 1.0 else 0.0)
    )
    inflammatory = math.tanh(
        0.45 * base["smoker"] * base["alcohol_per5"] / 2.0
        + 0.25 * (base["age_decades"] / 6.0) ** 2
        + 0.30 * base.get("rs4977574", 0.0) * base["smoker"]
    )
    return {
        "latent_metabolic": metabolic,
        "latent_vascular": vascular,
        "latent_inflammatory": inflammatory,
    }


class CohortGenerator:
    """Deterministic generator of canonical patient records."""

    def __init__(
        self,
        seed: int = 7,
        models: Optional[Dict[str, DiseaseModel]] = None,
        variant_frequencies: Optional[Dict[str, float]] = None,
        current_year: int = 2018,
    ):
        self.rng = np.random.default_rng(seed)
        self.models = models or default_disease_models()
        self.variant_frequencies = dict(
            variant_frequencies or DEFAULT_VARIANT_FREQUENCIES
        )
        self.current_year = current_year
        self._counter = 0

    # -- feature derivation ------------------------------------------------
    def _derive_features(self, record: Dict[str, Any]) -> Dict[str, float]:
        age = self.current_year - record["birth_year"]
        vitals = record["vitals"]
        labs = record["labs"]
        lifestyle = record["lifestyle"]
        genomics = record["genomics"]
        base = {
            "age_decades": age / 10.0,
            "sbp_per10": (vitals["sbp"] - 120.0) / 10.0,
            "bmi_excess": max(0.0, vitals["bmi"] - 25.0),
            "smoker": float(lifestyle["smoker"]),
            "alcohol_per5": lifestyle["alcohol_units_week"] / 5.0,
            "exercise_deficit": max(0.0, 3.0 - lifestyle["exercise_hours_week"]),
            "glucose_per10": (labs["glucose"] - 100.0) / 10.0,
            "diabetic": float(record["outcomes"].get("diabetes", 0)),
        }
        base.update({rsid: float(genomics.get(rsid, 0)) for rsid in VARIANT_PANEL})
        base.update(latent_factors(base))
        return base

    # -- patient generation --------------------------------------------------
    def generate_patient(self, profile: SiteProfile) -> Dict[str, Any]:
        """One canonical record drawn from a site's population."""
        self._counter += 1
        rng = self.rng
        record = empty_record()
        national_id = f"NID{self._counter:09d}"
        record["patient_id"] = f"{profile.name}-p{self._counter:06d}"
        record["national_id_hash"] = sha256_hex(
            ("medchain-salt:" + national_id).encode()
        )[:32]
        record["birth_year"] = int(
            np.clip(
                rng.normal(profile.mean_birth_year, profile.birth_year_sd), 1920, 2000
            )
        )
        record["sex"] = "F" if rng.random() < 0.52 else "M"
        record["zip3"] = profile.zip3
        record["site"] = profile.name
        record["vitals"] = {
            "sbp": float(np.clip(rng.normal(128, 18), 90, 220)),
            "dbp": float(np.clip(rng.normal(80, 11), 50, 130)),
            "bmi": float(np.clip(rng.normal(profile.mean_bmi, 4.5), 15, 55)),
            "heart_rate": float(np.clip(rng.normal(72, 10), 40, 140)),
        }
        record["labs"] = {
            "glucose": float(np.clip(rng.normal(104, 22), 60, 350)),
            "ldl": float(np.clip(rng.normal(118, 30), 40, 250)),
            "hdl": float(np.clip(rng.normal(52, 13), 20, 110)),
            "hba1c": float(np.clip(rng.normal(5.7, 0.9), 4.0, 13.0)),
            "creatinine": float(np.clip(rng.normal(0.95, 0.25), 0.4, 4.0)),
        }
        record["lifestyle"] = {
            "smoker": int(rng.random() < profile.smoking_rate),
            "alcohol_units_week": float(np.clip(rng.gamma(2.0, 2.0), 0, 40)),
            "exercise_hours_week": float(np.clip(rng.gamma(2.0, 1.2), 0, 20)),
        }
        record["genomics"] = {
            rsid: int(
                rng.binomial(
                    2,
                    float(
                        np.clip(
                            self.variant_frequencies.get(rsid, 0.2)
                            + profile.variant_freq_shift,
                            0.01,
                            0.95,
                        )
                    ),
                )
            )
            for rsid in VARIANT_PANEL
        }
        # Outcomes are sampled in dependency order (diabetes feeds stroke).
        record["outcomes"] = {}
        for outcome in ("diabetes", "stroke", "cancer"):
            model = self.models[outcome]
            probability = model.probability(self._derive_features(record))
            record["outcomes"][outcome] = int(rng.random() < probability)
        if record["outcomes"]["diabetes"]:
            record["diagnoses"].append("E11.9")
            record["medications"].append("metformin")
        if record["outcomes"]["stroke"]:
            record["diagnoses"].append("I63.9")
        if record["outcomes"]["cancer"]:
            record["diagnoses"].append("C80.1")
        if record["vitals"]["sbp"] > 140:
            record["diagnoses"].append("I10")
            record["medications"].append("lisinopril")
        if record["labs"]["ldl"] > 160:
            record["medications"].append("atorvastatin")
        return record

    def generate_cohort(
        self, profile: SiteProfile, size: int
    ) -> List[Dict[str, Any]]:
        """``size`` patients from one site."""
        return [self.generate_patient(profile) for _ in range(size)]

    def generate_multi_site(
        self, profiles: Sequence[SiteProfile], size_per_site: int
    ) -> Dict[str, List[Dict[str, Any]]]:
        """Site-keyed cohorts with per-site demographic shifts (non-IID)."""
        return {
            profile.name: self.generate_cohort(profile, size_per_site)
            for profile in profiles
        }


def default_site_profiles(count: int) -> List[SiteProfile]:
    """Deterministic heterogeneous site profiles (paper: hospitals differ)."""
    profiles = []
    for index in range(count):
        profiles.append(
            SiteProfile(
                name=f"hospital-{index}",
                mean_birth_year=1950.0 + 6.0 * (index % 4),
                birth_year_sd=12.0 + 2.0 * (index % 3),
                smoking_rate=0.15 + 0.07 * (index % 4),
                mean_bmi=24.5 + 1.2 * (index % 5),
                variant_freq_shift=0.03 * ((index % 3) - 1),
                zip3=f"{100 + 37 * index % 900:03d}",
            )
        )
    return profiles


def shared_patients(
    generator: CohortGenerator,
    profiles: Sequence[SiteProfile],
    count: int,
    sites_per_patient: int = 2,
) -> List[List[Dict[str, Any]]]:
    """Patients who visit multiple hospitals (for record linkage, E6).

    Returns, per patient, one record per visited site: same person (same
    national-id hash, birth year, sex) but site-local patient ids and
    re-measured vitals/labs.
    """
    out: List[List[Dict[str, Any]]] = []
    rng = generator.rng
    for __ in range(count):
        base_profile = profiles[int(rng.integers(0, len(profiles)))]
        base = generator.generate_patient(base_profile)
        visited = rng.choice(
            len(profiles), size=min(sites_per_patient, len(profiles)), replace=False
        )
        copies = []
        for site_index in visited:
            profile = profiles[int(site_index)]
            copy = {key: _deep_copy(value) for key, value in base.items()}
            generator._counter += 1
            copy["patient_id"] = f"{profile.name}-p{generator._counter:06d}"
            copy["site"] = profile.name
            copy["zip3"] = profile.zip3 if rng.random() < 0.2 else base["zip3"]
            # Re-measured values drift between visits.
            copy["vitals"] = {
                key: float(value + rng.normal(0, 2.0))
                for key, value in base["vitals"].items()
            }
            copy["labs"] = {
                key: float(max(0.1, value + rng.normal(0, value * 0.05)))
                for key, value in base["labs"].items()
            }
            copies.append(copy)
        out.append(copies)
    return out


def _deep_copy(value: Any) -> Any:
    if isinstance(value, dict):
        return {key: _deep_copy(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_deep_copy(item) for item in value]
    return value
