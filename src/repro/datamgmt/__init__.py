"""Distributed data management: synthetic cohorts, formats, stores, linkage."""

from repro.datamgmt.cohort import (
    CohortGenerator,
    DiseaseModel,
    SiteProfile,
    default_disease_models,
    default_site_profiles,
    shared_patients,
)
from repro.datamgmt.formats import (
    FORMAT_EXPORTERS,
    FORMAT_PARSERS,
    KNOWN_FORMATS,
    export_record,
    parse_record,
)
from repro.datamgmt.linkage import (
    LinkageResult,
    LinkageWeights,
    RecordLinker,
    evaluate_linkage,
    pair_score,
)
from repro.datamgmt.schema import (
    CANONICAL_FIELDS,
    CANONICAL_LAB_UNITS,
    OUTCOME_NAMES,
    VARIANT_PANEL,
    age_in,
    empty_record,
    is_canonical,
    validate_canonical,
)
from repro.datamgmt.store import HospitalDataStore, StoredDataset
from repro.datamgmt.wearables import (
    WearableGenerator,
    WearableSeries,
    merge_wearable_summaries,
    tool_wearable_summary,
)
from repro.datamgmt.virtual import (
    DatasetRef,
    NumericSummary,
    VirtualCohort,
    get_field,
)

__all__ = [
    "CANONICAL_FIELDS",
    "CANONICAL_LAB_UNITS",
    "CohortGenerator",
    "DatasetRef",
    "DiseaseModel",
    "FORMAT_EXPORTERS",
    "FORMAT_PARSERS",
    "HospitalDataStore",
    "KNOWN_FORMATS",
    "LinkageResult",
    "LinkageWeights",
    "NumericSummary",
    "OUTCOME_NAMES",
    "RecordLinker",
    "SiteProfile",
    "StoredDataset",
    "VARIANT_PANEL",
    "VirtualCohort",
    "WearableGenerator",
    "WearableSeries",
    "age_in",
    "default_disease_models",
    "default_site_profiles",
    "empty_record",
    "evaluate_linkage",
    "export_record",
    "get_field",
    "is_canonical",
    "pair_score",
    "parse_record",
    "shared_patients",
    "validate_canonical",
    "merge_wearable_summaries",
    "tool_wearable_summary",
]
