"""Pending-transaction pool.

Each node keeps its own mempool; gossip inserts, block commits evict.
Ordering is FIFO by arrival with per-sender nonce ordering so the executor
sees nonces in sequence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from repro.chain.transactions import Transaction


class Mempool:
    """Bounded pool of pending transactions, deduplicated by tx id."""

    def __init__(self, max_size: int = 100_000):
        self.max_size = max_size
        self._txs: "OrderedDict[str, Transaction]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._txs

    def add(self, tx: Transaction) -> bool:
        """Insert; returns False if duplicate or pool full."""
        if tx.tx_id in self._txs or len(self._txs) >= self.max_size:
            return False
        self._txs[tx.tx_id] = tx
        return True

    def get(self, tx_id: str) -> Optional[Transaction]:
        """Pending transaction by id (None when absent); serves p2p get_data."""
        return self._txs.get(tx_id)

    def remove(self, tx_id: str) -> None:
        self._txs.pop(tx_id, None)

    def remove_all(self, tx_ids: Iterable[str]) -> None:
        for tx_id in tx_ids:
            self.remove(tx_id)

    def select(
        self, limit: int, nonces: Optional[Dict[str, int]] = None
    ) -> List[Transaction]:
        """Pick up to ``limit`` executable transactions, FIFO.

        When ``nonces`` maps sender address to current account nonce, only
        transactions forming a contiguous nonce sequence per sender are
        selected, so the executor never sees a nonce gap.
        """
        selected: List[Transaction] = []
        expected: Dict[str, int] = dict(nonces or {})
        # Per-sender buffers preserve arrival order within a sender.
        deferred: Dict[str, List[Transaction]] = {}
        for tx in self._txs.values():
            if len(selected) >= limit:
                break
            if nonces is None:
                selected.append(tx)
                continue
            want = expected.get(tx.sender, 0)
            if tx.nonce == want:
                selected.append(tx)
                expected[tx.sender] = want + 1
                # A queued successor may now be executable.
                queue = deferred.get(tx.sender, [])
                while queue and len(selected) < limit:
                    nxt = next(
                        (q for q in queue if q.nonce == expected[tx.sender]), None
                    )
                    if nxt is None:
                        break
                    queue.remove(nxt)
                    selected.append(nxt)
                    expected[tx.sender] += 1
            elif tx.nonce > want:
                deferred.setdefault(tx.sender, []).append(tx)
            # tx.nonce < want: stale, skip (it will be evicted on commit)
        return selected

    def all_ids(self) -> List[str]:
        return list(self._txs)

    def clear(self) -> None:
        self._txs.clear()
