"""Chain store: block persistence, linkage validation, and fork choice.

Each node owns a :class:`ChainStore`.  Blocks attach to known parents;
orphans are buffered (up to a capacity bound, oldest evicted first) until
their parent arrives.  Fork choice is
longest-chain (by height, then lowest block hash as a deterministic
tie-break), matching the paper's "current commercial blockchain" framing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.chain.blocks import Block
from repro.common.errors import ChainError, ValidationError


class ChainStore:
    """Append-only block DAG with a canonical head."""

    DEFAULT_MAX_ORPHANS = 512

    def __init__(self, genesis: Block, max_orphans: int = DEFAULT_MAX_ORPHANS):
        if genesis.height != 0:
            raise ChainError("genesis must have height 0")
        self._blocks: Dict[str, Block] = {genesis.block_id: genesis}
        self._children: Dict[str, List[str]] = {}
        # Bounded insertion-ordered buffer; the oldest orphan is evicted
        # deterministically once the capacity is exceeded.
        self._orphans: Dict[str, Block] = {}
        self._max_orphans = max(0, max_orphans)
        self.orphans_evicted = 0
        self.genesis = genesis
        self._head = genesis

    # -- queries ----------------------------------------------------------
    @property
    def head(self) -> Block:
        return self._head

    @property
    def height(self) -> int:
        return self._head.height

    def __contains__(self, block_id: str) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_id: str) -> Block:
        block = self._blocks.get(block_id)
        if block is None:
            raise ChainError(f"unknown block {block_id[:12]}")
        return block

    def has_parent(self, block: Block) -> bool:
        return block.header.parent_hash.hex() in self._blocks

    def orphan_count(self) -> int:
        return len(self._orphans)

    # -- insertion ----------------------------------------------------------
    def add(self, block: Block) -> bool:
        """Insert a structurally valid block.

        Returns True when the canonical head changed.  Unknown-parent blocks
        are buffered as orphans and connected when the parent shows up.
        """
        block.validate_structure()
        block_id = block.block_id
        if block_id in self._blocks:
            return False
        parent_id = block.header.parent_hash.hex()
        if parent_id not in self._blocks:
            self._orphans[block_id] = block
            while len(self._orphans) > self._max_orphans:
                oldest = next(iter(self._orphans))
                del self._orphans[oldest]
                self.orphans_evicted += 1
            return False
        parent = self._blocks[parent_id]
        if block.height != parent.height + 1:
            raise ValidationError(
                f"height {block.height} does not follow parent {parent.height}"
            )
        self._blocks[block_id] = block
        self._children.setdefault(parent_id, []).append(block_id)
        head_changed = self._maybe_reorg(block)
        head_changed |= self._connect_orphans(block_id)
        return head_changed

    def _connect_orphans(self, new_parent_id: str) -> bool:
        changed = False
        ready = [
            block
            for block in self._orphans.values()
            if block.header.parent_hash.hex() == new_parent_id
        ]
        for block in ready:
            del self._orphans[block.block_id]
            changed |= self.add(block)
        return changed

    def _maybe_reorg(self, candidate: Block) -> bool:
        """Longest chain wins; ties broken by lexicographically lowest hash."""
        if candidate.height > self._head.height or (
            candidate.height == self._head.height
            and candidate.block_id < self._head.block_id
        ):
            changed = candidate.block_id != self._head.block_id
            self._head = candidate
            return changed
        return False

    # -- chain walks ---------------------------------------------------------
    def ancestors(self, block: Block) -> Iterable[Block]:
        """Yield blocks from ``block`` back to genesis, inclusive."""
        current = block
        while True:
            yield current
            if current.height == 0:
                return
            current = self.get(current.header.parent_hash.hex())

    def canonical_chain(self) -> List[Block]:
        """Genesis-to-head block list along the canonical branch."""
        chain = list(self.ancestors(self._head))
        chain.reverse()
        return chain

    def block_at_height(self, height: int) -> Optional[Block]:
        """Canonical block at ``height``, or None above the head."""
        if height > self._head.height or height < 0:
            return None
        for block in self.ancestors(self._head):
            if block.height == height:
                return block
        return None

    def headers_after(self, locator_ids: List[str], limit: int = 256) -> List[Block]:
        """Canonical blocks after the best locator match, oldest first.

        ``locator_ids`` is ordered newest-first (dense near the requester's
        head, exponentially sparse toward genesis); the first entry found on
        our canonical chain anchors the reply.  An empty or entirely-unknown
        locator anchors at genesis, so a fresh node always makes progress.
        The p2p headers-first sync protocol serves ``chain.get_headers``
        from this.
        """
        chain = self.canonical_chain()
        index = {block.block_id: i for i, block in enumerate(chain)}
        anchor = 0
        for block_id in locator_ids:
            position = index.get(block_id)
            if position is not None:
                anchor = position
                break
        limit = max(1, min(int(limit), 1024))
        return chain[anchor + 1 : anchor + 1 + limit]

    def canonical_tx_ids(self) -> List[str]:
        """Every tx id on the canonical chain, in execution order."""
        out: List[str] = []
        for block in self.canonical_chain():
            out.extend(tx.tx_id for tx in block.transactions)
        return out

    def contains_tx(self, tx_id: str) -> bool:
        return tx_id in set(self.canonical_tx_ids())

    def verify_chain_integrity(self) -> bool:
        """Re-validate every canonical block and its parent linkage.

        Used by the integrity experiments (E7): any in-place mutation of a
        stored block breaks either its own hash linkage or its tx root.
        """
        chain = self.canonical_chain()
        for i, block in enumerate(chain):
            try:
                block.validate_structure()
            except ValidationError:
                return False
            if i > 0 and block.header.parent_hash != chain[i - 1].block_hash:
                return False
        return True
