"""Versioned copy-on-write world-state database backing the ledger.

A flat key/value store holding account balances, account nonces, and smart
contract storage (namespaced by contract id).  The canonical state root is
the SHA-256 of the canonical JSON of the full state dict — simple, but
sufficient for consensus: two nodes agree on the root iff they agree on
every entry, which is the determinism property the contract VM is
property-tested against (DESIGN.md invariant 3).

The substrate is built so every hot operation costs O(writes), not O(state):

- **Journal snapshots.**  ``snapshot()`` pushes an empty undo-log frame;
  each first write of a key inside the frame records the prior local entry.
  ``rollback()`` replays the frame in O(writes since snapshot);
  ``commit()`` folds the frame into its parent frame (or discards it).
  Nothing is ever copied wholesale.

- **Zero-copy reads/writes.**  ``get``/``set`` hand out and store object
  *references* under the **immutable-value convention**: a value passed to
  ``set`` (or obtained from ``get``) must never be mutated in place
  afterwards — build a new container instead.  The contract host bridge
  enforces this at the contract boundary by copying; internal consumers
  (accounts, runtime metadata) comply by construction.  An opt-in debug
  mode (``set_debug_aliasing(True)`` or ``REPRO_STATE_DEBUG=1``)
  fingerprints every stored value and re-verifies the fingerprints at
  snapshot/fork/root boundaries, raising :class:`StateAliasingError` when a
  caller broke the convention.

- **Overlays.**  ``fork()`` returns a :class:`StateOverlay` — a chained
  diff (writes plus deletion tombstones) over an immutable parent.  Reads
  walk the chain; per-block execution forks the parent state as an O(1)
  delta instead of copying it.  ``flatten()`` materializes the effective
  view into a standalone base state; ``collapse()`` does the same in place
  (used by state pruning so retained children keep working).  Forking
  freezes the parent only while overlays are live: when the last overlay
  is discarded (garbage-collected, ``discard()``-ed, or collapsed) the
  parent accepts direct writes again.

- **Incremental roots.**  ``state_root()`` stays **bit-identical** to the
  historical full-serialization digest, but is assembled from per-key
  canonical *fragments* that are cached and invalidated by dirty-key
  tracking, so serialization work after a block is O(write-set).
  ``incremental_root()`` additionally maintains a sorted bucketed Merkle
  root (per-key leaf hashes, 256 buckets keyed by SHA-256 of the key, a
  root over the bucket digests) whose refresh cost scales with the block's
  write-set; it is cross-checked against from-scratch recomputation in
  tests and benchmark runs.

Snapshots give contract execution transactional semantics: a failed call
rolls back every write it made.
"""

from __future__ import annotations

import copy
import hashlib
import os
import weakref
from bisect import bisect_left, insort
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.common.errors import ChainError, SerializationError
from repro.common.hashing import HASH_SIZE, sha256
from repro.common.serialize import canonical_bytes

ACCOUNT_PREFIX = "acct"
CONTRACT_PREFIX = "contract"

# Sentinels for layered lookups.  ``_MISSING`` marks "no entry in this
# layer"; ``_DELETED`` is the overlay tombstone shadowing a parent entry.
_MISSING = object()
_DELETED = object()

BUCKET_COUNT = 256
_EMPTY_BUCKET_DIGEST = b"\x00" * HASH_SIZE

_DEBUG_ENV = "REPRO_STATE_DEBUG"
_debug_aliasing = os.environ.get(_DEBUG_ENV, "") not in ("", "0", "false", "no")


class StateAliasingError(ChainError):
    """A stored value was mutated in place, violating the immutable-value
    convention (caught only when debug aliasing mode is enabled)."""


def set_debug_aliasing(enabled: bool) -> None:
    """Toggle aliasing verification for *newly created* states.

    Tests flip this on to catch callers that mutate values they handed to
    (or read from) a :class:`StateDB`; production leaves it off because the
    fingerprint bookkeeping re-serializes every written value.
    """
    global _debug_aliasing
    _debug_aliasing = bool(enabled)


def debug_aliasing_enabled() -> bool:
    return _debug_aliasing


_BUCKET_CACHE: Dict[str, int] = {}


def _bucket_of(key: str) -> int:
    """Stable bucket index for a key (first byte of its SHA-256)."""
    bucket = _BUCKET_CACHE.get(key)
    if bucket is None:
        bucket = hashlib.sha256(key.encode("utf-8")).digest()[0]
        if len(_BUCKET_CACHE) < 1 << 20:
            _BUCKET_CACHE[key] = bucket
    return bucket


def _encode_fragment(key: str, value: Any) -> bytes:
    """Canonical ``"key":value`` fragment of the full-state JSON object.

    Joining the fragments of all keys in sorted order inside ``{`` .. ``}``
    reproduces ``canonical_bytes(state_dict)`` byte for byte, which is what
    keeps the incremental root bit-identical to the historical digest.
    """
    return canonical_bytes(key) + b":" + canonical_bytes(value, allow_float=False)


class StateDB:
    """Mutable world state with journaled snapshot/rollback support."""

    def __init__(
        self,
        initial: Optional[Dict[str, Any]] = None,
        parent: Optional["StateDB"] = None,
    ):
        self._parent = parent
        self._data: Dict[str, Any] = dict(initial or {})
        if parent is not None and initial:
            raise ChainError("an overlay starts empty; write through its API")
        # Undo log: one dict per open snapshot, key -> prior local entry
        # (a value reference, _DELETED, or _MISSING when the key was absent).
        self._journal: List[Dict[str, Any]] = []
        self._frozen = False
        # Live overlays forked (with freeze) off this state.  Weak refs:
        # an overlay that is discarded simply disappears from the set, and
        # once it is empty the freeze lifts (see _assert_mutable).
        self._overlays: "weakref.WeakSet[StateDB]" = weakref.WeakSet()
        # Legacy-root machinery: per-key canonical fragments + cached root.
        self._fragments: Dict[str, bytes] = {}
        self._eff_keys: Optional[List[str]] = None
        self._root_cache: Optional[bytes] = None
        self._root_hits = 0
        self._root_recomputes = 0
        # Bucketed incremental-root machinery (built lazily on first use).
        self._buckets_ready = False
        self._leaves: Dict[str, bytes] = {}
        self._bucket_keys: Dict[int, List[str]] = {}
        self._bucket_digests: Optional[List[bytes]] = None
        self._bucket_dirty: Set[int] = set()
        self._iroot_cache: Optional[bytes] = None
        self._iroot_hits = 0
        self._iroot_recomputes = 0
        # Debug aliasing fingerprints for values stored through this layer.
        self._debug = _debug_aliasing
        self._fingerprints: Dict[str, Optional[bytes]] = {}
        if self._debug:
            for key, value in self._data.items():
                self._record_fingerprint(key, value)

    # -- layered lookup ----------------------------------------------------
    def _lookup(self, key: str) -> Any:
        """Effective value for ``key`` or ``_MISSING`` (tombstones hidden)."""
        layer: Optional[StateDB] = self
        while layer is not None:
            value = layer._data.get(key, _MISSING)
            if value is not _MISSING:
                return _MISSING if value is _DELETED else value
            layer = layer._parent
        return _MISSING

    def _assert_mutable(self) -> None:
        if self._frozen and not self._overlays:
            # Every freezing overlay has been discarded (garbage-collected,
            # discard()ed, or collapse()d); direct writes are safe again.
            self._frozen = False
        if self._frozen:
            raise ChainError(
                "state is frozen (it has live overlays); fork() it instead"
            )

    # -- write plumbing ----------------------------------------------------
    def _journal_record(self, key: str) -> None:
        if not self._journal:
            return
        frame = self._journal[-1]
        if key not in frame:
            frame[key] = self._data.get(key, _MISSING)

    def _invalidate_key(self, key: str, keyset_changed: bool) -> None:
        self._root_cache = None
        self._iroot_cache = None
        self._fragments.pop(key, None)
        if keyset_changed:
            self._eff_keys = None
        if self._buckets_ready:
            self._leaves.pop(key, None)
            self._bucket_dirty.add(_bucket_of(key))
            if self._parent is not None:
                self._bucket_digests = None

    def _local_keyset_add(self, key: str) -> None:
        if self._buckets_ready:
            insort(self._bucket_keys.setdefault(_bucket_of(key), []), key)

    def _local_keyset_remove(self, key: str) -> None:
        if self._buckets_ready:
            keys = self._bucket_keys.get(_bucket_of(key))
            if keys:
                index = bisect_left(keys, key)
                if index < len(keys) and keys[index] == key:
                    keys.pop(index)

    def _write(self, key: str, value: Any) -> None:
        self._assert_mutable()
        self._journal_record(key)
        prior = self._data.get(key, _MISSING)
        self._data[key] = value
        if prior is _MISSING:
            self._local_keyset_add(key)
        if self._debug:
            self._record_fingerprint(key, value)
        self._invalidate_key(key, keyset_changed=prior is _MISSING or prior is _DELETED)

    # -- raw access ------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Return the stored value *by reference* (immutable-value convention)."""
        value = self._lookup(key)
        return default if value is _MISSING else value

    def set(self, key: str, value: Any) -> None:
        self._write(key, value)

    def delete(self, key: str) -> None:
        self._assert_mutable()
        if self._parent is None:
            if key not in self._data:
                return
            self._journal_record(key)
            del self._data[key]
            self._local_keyset_remove(key)
            self._fingerprints.pop(key, None)
            self._invalidate_key(key, keyset_changed=True)
            return
        if self._lookup(key) is _MISSING:
            return
        self._journal_record(key)
        prior = self._data.get(key, _MISSING)
        self._data[key] = _DELETED
        if prior is _MISSING:
            self._local_keyset_add(key)
        self._invalidate_key(key, keyset_changed=True)

    def contains(self, key: str) -> bool:
        return self._lookup(key) is not _MISSING

    def _effective_sorted_keys(self) -> List[str]:
        if self._eff_keys is None:
            if self._parent is None:
                self._eff_keys = sorted(self._data)
            else:
                seen: Dict[str, Any] = {}
                layer: Optional[StateDB] = self
                while layer is not None:
                    for key, value in layer._data.items():
                        if key not in seen:
                            seen[key] = value
                    layer = layer._parent
                self._eff_keys = sorted(
                    key for key, value in seen.items() if value is not _DELETED
                )
        return self._eff_keys

    def keys_with_prefix(self, prefix: str) -> List[str]:
        keys = self._effective_sorted_keys()
        start = bisect_left(keys, prefix)
        out: List[str] = []
        for index in range(start, len(keys)):
            if not keys[index].startswith(prefix):
                break
            out.append(keys[index])
        return out

    def items(self) -> Iterator[Tuple[str, Any]]:
        """Sorted (key, value) pairs, values by reference (do not mutate)."""
        for key in self._effective_sorted_keys():
            yield key, self._lookup(key)

    def __len__(self) -> int:
        if self._parent is None:
            return len(self._data)
        return len(self._effective_sorted_keys())

    # -- accounts ----------------------------------------------------------
    @staticmethod
    def _account_key(address: str) -> str:
        return f"{ACCOUNT_PREFIX}/{address}"

    def balance(self, address: str) -> int:
        account = self.get(self._account_key(address))
        return account["balance"] if account else 0

    def nonce(self, address: str) -> int:
        account = self.get(self._account_key(address))
        return account["nonce"] if account else 0

    def credit(self, address: str, amount: int) -> None:
        if amount < 0:
            raise ChainError("credit amount must be non-negative")
        key = self._account_key(address)
        account = self.get(key)
        account = {"balance": 0, "nonce": 0} if account is None else dict(account)
        account["balance"] += amount
        self.set(key, account)

    def debit(self, address: str, amount: int) -> None:
        if amount < 0:
            raise ChainError("debit amount must be non-negative")
        key = self._account_key(address)
        account = self.get(key)
        if account is None or account["balance"] < amount:
            raise ChainError(f"insufficient balance for {address}")
        account = dict(account)
        account["balance"] -= amount
        self.set(key, account)

    def bump_nonce(self, address: str) -> int:
        key = self._account_key(address)
        account = self.get(key)
        account = {"balance": 0, "nonce": 0} if account is None else dict(account)
        account["nonce"] += 1
        self.set(key, account)
        return account["nonce"]

    # -- contract storage ---------------------------------------------------
    @staticmethod
    def contract_key(contract_id: str, slot: str) -> str:
        return f"{CONTRACT_PREFIX}/{contract_id}/{slot}"

    def get_slot(self, contract_id: str, slot: str, default: Any = None) -> Any:
        return self.get(self.contract_key(contract_id, slot), default)

    def set_slot(self, contract_id: str, slot: str, value: Any) -> None:
        self.set(self.contract_key(contract_id, slot), value)

    def contract_slots(self, contract_id: str) -> Dict[str, Any]:
        prefix = f"{CONTRACT_PREFIX}/{contract_id}/"
        return {
            key[len(prefix):]: copy.deepcopy(self._lookup(key))
            for key in self.keys_with_prefix(prefix)
        }

    # -- snapshots -----------------------------------------------------------
    def snapshot(self) -> int:
        """Push an undo-log frame; returns its index for sanity checks."""
        self._debug_verify()
        self._journal.append({})
        return len(self._journal) - 1

    def commit(self) -> None:
        """Discard the most recent snapshot, keeping current writes.

        With nested snapshots the committed frame's undo entries fold into
        the enclosing frame so an outer rollback still restores the state
        as of the outer snapshot.
        """
        if not self._journal:
            raise ChainError("no snapshot to commit")
        frame = self._journal.pop()
        if self._journal:
            outer = self._journal[-1]
            for key, prior in frame.items():
                outer.setdefault(key, prior)

    def rollback(self) -> None:
        """Restore the most recent snapshot, undoing writes since it."""
        if not self._journal:
            raise ChainError("no snapshot to roll back to")
        self._assert_mutable()
        frame = self._journal.pop()
        for key, prior in frame.items():
            current = self._data.get(key, _MISSING)
            if prior is _MISSING:
                if current is not _MISSING:
                    del self._data[key]
                    self._local_keyset_remove(key)
                    self._fingerprints.pop(key, None)
            else:
                self._data[key] = prior
                if current is _MISSING:
                    self._local_keyset_add(key)
                if self._debug and prior is not _DELETED:
                    self._record_fingerprint(key, prior)
            self._invalidate_key(key, keyset_changed=True)

    @property
    def journal_depth(self) -> int:
        return len(self._journal)

    # -- overlays ----------------------------------------------------------
    def fork(self, freeze: bool = True) -> "StateOverlay":
        """Return a :class:`StateOverlay` diff layered over this state.

        By default forking freezes this state: further direct writes raise,
        because a parent mutating underneath its overlays would silently
        change every child's effective view (and its cached roots).  The
        freeze is tied to the overlay's lifetime — once the last freezing
        overlay is discarded (garbage-collected, :meth:`StateOverlay.discard`-ed,
        or :meth:`collapse`-d into a standalone state) the parent accepts
        direct writes again.  Pass ``freeze=False`` for a *transient* fork
        (e.g. a read-only view call) that never freezes the parent; such a
        fork must be discarded before the parent is written again.
        """
        if self._journal:
            raise ChainError("cannot fork a state with open snapshots")
        self._debug_verify()
        overlay = StateOverlay(self)
        if freeze:
            self._frozen = True
            self._overlays.add(overlay)
        return overlay

    @property
    def overlay_depth(self) -> int:
        depth = 0
        layer = self._parent
        while layer is not None:
            depth += 1
            layer = layer._parent
        return depth

    def _effective_dict(self) -> Dict[str, Any]:
        """Materialize the effective view as one flat dict.

        Folded bottom-up — copy the base layer's dict, then apply each
        overlay's writes and tombstones from deepest to shallowest — so the
        cost is O(base size + sum of overlay write-sets) with a plain-dict
        constant, instead of a per-key parent-chain walk plus a sort.
        """
        layers: List[StateDB] = []
        layer: Optional[StateDB] = self
        while layer is not None:
            layers.append(layer)
            layer = layer._parent
        data = dict(layers[-1]._data)  # base layer holds no tombstones
        for overlay in reversed(layers[:-1]):
            for key, value in overlay._data.items():
                if value is _DELETED:
                    data.pop(key, None)
                else:
                    data[key] = value
        return data

    def flatten(self) -> "StateDB":
        """Materialize the effective view into a standalone base state.

        Values are shared by reference (immutable-value convention) and the
        per-key fragment cache is carried over, so flattening the canonical
        head is cheap and its next root is still incremental.
        """
        flat = StateDB()
        flat._data = self._effective_dict()
        flat._fragments = {
            key: fragment
            for key, fragment in self._gather_fragment_cache().items()
            if key in flat._data
        }
        if flat._debug:
            for key, value in flat._data.items():
                flat._record_fingerprint(key, value)
        return flat

    def collapse(self) -> "StateDB":
        """Absorb the whole parent chain into this layer, in place.

        The effective content (and therefore every cached root) is
        unchanged; children forked off this state keep working because they
        reference this object directly.  Used by state pruning to cut
        overlay chains at the finality boundary.
        """
        if self._parent is None:
            return self
        if self._journal:
            raise ChainError("cannot collapse a state with open snapshots")
        fragments = self._gather_fragment_cache()
        self._data = self._effective_dict()
        parent = self._parent
        self._parent = None
        # This layer no longer reads through its parent; lift the parent's
        # freeze if we were its last live overlay.
        parent._overlays.discard(self)
        if parent._frozen and not parent._overlays:
            parent._frozen = False
        self._fragments = {
            key: fragment for key, fragment in fragments.items() if key in self._data
        }
        self._eff_keys = None
        self._buckets_ready = False
        self._leaves = {}
        self._bucket_keys = {}
        self._bucket_digests = None
        self._bucket_dirty = set()
        if self._debug:
            self._fingerprints = {}
            for key, value in self._data.items():
                self._record_fingerprint(key, value)
        return self

    def _gather_fragment_cache(self) -> Dict[str, bytes]:
        """Best-effort union of fragment caches along the chain.

        Only the fragment cached by a key's *effective owner* — the
        shallowest layer with any local entry for it — is valid.  A layer
        that wrote a key but has not cached a fragment yet (no root was
        computed since the write) still shadows deeper layers, so their
        stale fragments for that key must be skipped, not merged; carrying
        one forward would make the next ``state_root()`` after a
        ``flatten()``/``collapse()`` encode the old value.
        """
        merged: Dict[str, bytes] = {}
        shadowed: Set[str] = set()
        layer: Optional[StateDB] = self
        while layer is not None:
            for key, fragment in layer._fragments.items():
                if key in shadowed or key in merged:
                    continue
                if layer._data.get(key, _MISSING) is not _DELETED:
                    merged[key] = fragment
            shadowed.update(layer._data)
            layer = layer._parent
        return merged

    # -- roots -------------------------------------------------------------
    def _fragment_for(self, key: str) -> bytes:
        """Fragment for an effectively-present key, cached in the owning layer."""
        layer: Optional[StateDB] = self
        while layer is not None:
            value = layer._data.get(key, _MISSING)
            if value is not _MISSING:
                fragment = layer._fragments.get(key)
                if fragment is None:
                    fragment = _encode_fragment(key, value)
                    layer._fragments[key] = fragment
                return fragment
            layer = layer._parent
        raise ChainError(f"no fragment for missing key {key!r}")

    def state_root(self) -> bytes:
        """Deterministic digest of the entire effective state.

        Bit-identical to ``sha256(canonical_bytes(state_dict))`` — the
        historical full-serialization root — but assembled from cached
        per-key fragments so only keys written since the last root are
        re-serialized.
        """
        if self._root_cache is not None:
            self._root_hits += 1
            return self._root_cache
        self._debug_verify()
        hasher = hashlib.sha256()
        hasher.update(b"{")
        first = True
        for key in self._effective_sorted_keys():
            if not first:
                hasher.update(b",")
            hasher.update(self._fragment_for(key))
            first = False
        hasher.update(b"}")
        root = hasher.digest()
        self._root_cache = root
        self._root_recomputes += 1
        return root

    # -- bucketed incremental root ----------------------------------------
    def _leaf_for(self, key: str) -> bytes:
        layer: Optional[StateDB] = self
        while layer is not None:
            value = layer._data.get(key, _MISSING)
            if value is not _MISSING:
                leaf = layer._leaves.get(key)
                if leaf is None:
                    leaf = sha256(layer._fragments.get(key) or self._fragment_for(key))
                    layer._leaves[key] = leaf
                return leaf
            layer = layer._parent
        raise ChainError(f"no leaf for missing key {key!r}")

    def _ensure_buckets(self) -> None:
        if self._buckets_ready:
            return
        self._bucket_keys = {}
        for key in self._data:
            self._bucket_keys.setdefault(_bucket_of(key), []).append(key)
        for keys in self._bucket_keys.values():
            keys.sort()
        self._bucket_digests = None
        self._bucket_dirty = set()
        self._buckets_ready = True

    def _effective_bucket_keys(self, bucket: int) -> List[str]:
        seen: Dict[str, Any] = {}
        layer: Optional[StateDB] = self
        while layer is not None:
            layer._ensure_buckets()
            for key in layer._bucket_keys.get(bucket, ()):
                if key not in seen:
                    seen[key] = layer._data[key]
            layer = layer._parent
        return sorted(key for key, value in seen.items() if value is not _DELETED)

    def _bucket_digest(self, bucket: int) -> bytes:
        keys = self._effective_bucket_keys(bucket)
        if not keys:
            return _EMPTY_BUCKET_DIGEST
        hasher = hashlib.sha256()
        for key in keys:
            hasher.update(self._leaf_for(key))
        return hasher.digest()

    def _bucket_digest_list(self) -> List[bytes]:
        self._ensure_buckets()
        if self._parent is None:
            if self._bucket_digests is None:
                self._bucket_digests = [
                    self._bucket_digest(bucket) for bucket in range(BUCKET_COUNT)
                ]
                self._bucket_dirty.clear()
            elif self._bucket_dirty:
                for bucket in self._bucket_dirty:
                    self._bucket_digests[bucket] = self._bucket_digest(bucket)
                self._bucket_dirty.clear()
            return self._bucket_digests
        if self._bucket_digests is None or self._bucket_dirty:
            digests = list(self._parent._bucket_digest_list())
            touched = {_bucket_of(key) for key in self._data}
            for bucket in touched:
                digests[bucket] = self._bucket_digest(bucket)
            self._bucket_digests = digests
            self._bucket_dirty.clear()
        return self._bucket_digests

    def incremental_root(self) -> bytes:
        """Sorted bucketed Merkle root maintained incrementally.

        Per-key leaf hashes are cached; a write dirties only its key's
        bucket, so refreshing the root after a block costs
        O(write-set · bucket-size + bucket-count) instead of O(state).
        Distinct from :meth:`state_root` (which stays bit-identical to the
        historical digest); equivalence with :meth:`recompute_incremental_root`
        is enforced by tests and the benchmark/CI cross-check.
        """
        if self._iroot_cache is not None:
            self._iroot_hits += 1
            return self._iroot_cache
        self._debug_verify()
        root = sha256(b"".join(self._bucket_digest_list()))
        self._iroot_cache = root
        self._iroot_recomputes += 1
        return root

    def recompute_incremental_root(self) -> bytes:
        """From-scratch bucketed Merkle root, ignoring every cache."""
        return bucketed_root_of_dict(self._effective_dict())

    def local_delta(self) -> Tuple[Dict[str, Any], List[str]]:
        """This layer's own writes and deletion tombstones.

        Returns ``(writes, deleted_keys)`` where ``writes`` maps keys to the
        stored value *references* (immutable-value convention applies) and
        ``deleted_keys`` lists tombstoned keys in sorted order.  Used by the
        parallel block scheduler to harvest a speculative overlay's effect
        as plain data that can be replayed onto (or shipped between) states.
        """
        writes: Dict[str, Any] = {}
        deletes: List[str] = []
        for key, value in self._data.items():
            if value is _DELETED:
                deletes.append(key)
            else:
                writes[key] = value
        return writes, sorted(deletes)

    # -- copies and exports ------------------------------------------------
    def copy(self) -> "StateDB":
        """Independent deep copy of the *effective* state.

        The copy shares **no structure** with this state, its parents, or
        any overlay forked from it: values are deep-copied and the copy has
        no parent link, no journal frames, and no shared caches.  Mutating
        the copy can never leak into the original (or vice versa).
        Snapshot history is not carried over.
        """
        return StateDB(copy.deepcopy(self._effective_dict()))

    def to_dict(self) -> Dict[str, Any]:
        return copy.deepcopy(self._effective_dict())

    # -- debug aliasing verification --------------------------------------
    def _record_fingerprint(self, key: str, value: Any) -> None:
        try:
            self._fingerprints[key] = canonical_bytes(value)
        except SerializationError:
            self._fingerprints[key] = None  # unverifiable value; skip

    def verify_no_aliasing(self) -> None:
        """Re-fingerprint every tracked value; raise on any in-place change."""
        layer: Optional[StateDB] = self
        while layer is not None:
            for key, expected in layer._fingerprints.items():
                if expected is None:
                    continue
                value = layer._data.get(key, _MISSING)
                if value is _MISSING or value is _DELETED:
                    continue
                try:
                    actual = canonical_bytes(value)
                except SerializationError:
                    continue
                if actual != expected:
                    raise StateAliasingError(
                        f"value for key {key!r} was mutated in place after "
                        "being stored (immutable-value convention violated)"
                    )
            layer = layer._parent

    def _debug_verify(self) -> None:
        if self._debug:
            self.verify_no_aliasing()

    # -- introspection -----------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Counters for observability spans and benchmarks."""
        return {
            "size": len(self),
            "local_keys": len(self._data),
            "journal_depth": len(self._journal),
            "overlay_depth": self.overlay_depth,
            "root_cache_hits": self._root_hits,
            "root_recomputes": self._root_recomputes,
            "iroot_cache_hits": self._iroot_hits,
            "iroot_recomputes": self._iroot_recomputes,
        }


class StateOverlay(StateDB):
    """A chained diff over a frozen parent state.

    Writes and deletion tombstones live in this layer; reads fall through
    to the parent chain.  Created via :meth:`StateDB.fork`.
    """

    def __init__(self, parent: StateDB):
        if parent is None:
            raise ChainError("StateOverlay requires a parent state")
        super().__init__(parent=parent)

    @property
    def parent(self) -> StateDB:
        return self._parent

    def discard(self) -> None:
        """Explicitly release this overlay, unfreezing the parent if this
        was its last live overlay.

        Dropping the last reference to an overlay has the same effect (the
        liveness tracking is weak); ``discard()`` makes the release
        deterministic, e.g. when a speculative block loses the race and its
        overlay is thrown away.  The overlay must not be used afterwards:
        once the parent accepts new writes, this overlay's effective view
        and cached roots are undefined.
        """
        parent = self._parent
        if parent is None:
            return
        parent._overlays.discard(self)
        if parent._frozen and not parent._overlays:
            parent._frozen = False


def bucketed_root_of_dict(data: Dict[str, Any]) -> bytes:
    """Reference from-scratch implementation of the bucketed Merkle root."""
    buckets: Dict[int, List[str]] = {}
    for key in data:
        buckets.setdefault(_bucket_of(key), []).append(key)
    digests: List[bytes] = []
    for bucket in range(BUCKET_COUNT):
        keys = sorted(buckets.get(bucket, ()))
        if not keys:
            digests.append(_EMPTY_BUCKET_DIGEST)
            continue
        hasher = hashlib.sha256()
        for key in keys:
            hasher.update(sha256(_encode_fragment(key, data[key])))
        digests.append(hasher.digest())
    return sha256(b"".join(digests))
