"""World-state database backing the ledger.

A flat key/value store holding account balances, account nonces, and smart
contract storage (namespaced by contract id).  The state root is the hash of
the sorted item list — simple, but sufficient for consensus: two nodes agree
on the root iff they agree on every entry, which is the determinism property
the contract VM is property-tested against (DESIGN.md invariant 3).

Snapshots give contract execution transactional semantics: a failed call
rolls back every write it made.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ChainError
from repro.common.hashing import hash_value

ACCOUNT_PREFIX = "acct"
CONTRACT_PREFIX = "contract"


class StateDB:
    """Mutable world state with snapshot/rollback support."""

    def __init__(self, initial: Optional[Dict[str, Any]] = None):
        self._data: Dict[str, Any] = dict(initial or {})
        self._snapshots: List[Dict[str, Any]] = []

    # -- raw access ------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        return copy.deepcopy(self._data.get(key, default))

    def set(self, key: str, value: Any) -> None:
        self._data[key] = copy.deepcopy(value)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def contains(self, key: str) -> bool:
        return key in self._data

    def keys_with_prefix(self, prefix: str) -> List[str]:
        return sorted(key for key in self._data if key.startswith(prefix))

    def items(self) -> Iterator[Tuple[str, Any]]:
        for key in sorted(self._data):
            yield key, copy.deepcopy(self._data[key])

    def __len__(self) -> int:
        return len(self._data)

    # -- accounts ----------------------------------------------------------
    @staticmethod
    def _account_key(address: str) -> str:
        return f"{ACCOUNT_PREFIX}/{address}"

    def balance(self, address: str) -> int:
        account = self._data.get(self._account_key(address))
        return account["balance"] if account else 0

    def nonce(self, address: str) -> int:
        account = self._data.get(self._account_key(address))
        return account["nonce"] if account else 0

    def credit(self, address: str, amount: int) -> None:
        if amount < 0:
            raise ChainError("credit amount must be non-negative")
        account = self._data.setdefault(
            self._account_key(address), {"balance": 0, "nonce": 0}
        )
        account["balance"] += amount

    def debit(self, address: str, amount: int) -> None:
        if amount < 0:
            raise ChainError("debit amount must be non-negative")
        key = self._account_key(address)
        account = self._data.get(key)
        if account is None or account["balance"] < amount:
            raise ChainError(f"insufficient balance for {address}")
        account["balance"] -= amount

    def bump_nonce(self, address: str) -> int:
        account = self._data.setdefault(
            self._account_key(address), {"balance": 0, "nonce": 0}
        )
        account["nonce"] += 1
        return account["nonce"]

    # -- contract storage ---------------------------------------------------
    @staticmethod
    def contract_key(contract_id: str, slot: str) -> str:
        return f"{CONTRACT_PREFIX}/{contract_id}/{slot}"

    def get_slot(self, contract_id: str, slot: str, default: Any = None) -> Any:
        return self.get(self.contract_key(contract_id, slot), default)

    def set_slot(self, contract_id: str, slot: str, value: Any) -> None:
        self.set(self.contract_key(contract_id, slot), value)

    def contract_slots(self, contract_id: str) -> Dict[str, Any]:
        prefix = f"{CONTRACT_PREFIX}/{contract_id}/"
        return {
            key[len(prefix):]: copy.deepcopy(self._data[key])
            for key in self.keys_with_prefix(prefix)
        }

    # -- snapshots -----------------------------------------------------------
    def snapshot(self) -> int:
        """Push a snapshot; returns its index for sanity checks."""
        self._snapshots.append(copy.deepcopy(self._data))
        return len(self._snapshots) - 1

    def commit(self) -> None:
        """Discard the most recent snapshot, keeping current writes."""
        if not self._snapshots:
            raise ChainError("no snapshot to commit")
        self._snapshots.pop()

    def rollback(self) -> None:
        """Restore the most recent snapshot, discarding writes since."""
        if not self._snapshots:
            raise ChainError("no snapshot to roll back to")
        self._data = self._snapshots.pop()

    # -- roots and copies ------------------------------------------------
    def state_root(self) -> bytes:
        """Deterministic digest of the entire state.

        Serializes the raw dict directly (canonical JSON sorts keys), which
        avoids the defensive deep-copies of :meth:`items`.
        """
        return hash_value(self._data, allow_float=False)

    def copy(self) -> "StateDB":
        """Deep copy without snapshot history."""
        return StateDB(copy.deepcopy(self._data))

    def to_dict(self) -> Dict[str, Any]:
        return copy.deepcopy(self._data)
