"""Blocks and block headers.

A block header commits to the parent, the Merkle root of its transactions,
the post-execution state root, and consensus-specific proof data (PoW nonce
and difficulty, PoA signature, or PoS ticket).  The block hash is the hash
of the header.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List

from repro.common.errors import ValidationError
from repro.common.hashing import ZERO_HASH, hash_value
from repro.common.merkle import MerkleTree
from repro.chain.transactions import Transaction


@dataclass(frozen=True)
class BlockHeader:
    """Immutable block header; the block hash is ``hash_value(header)``."""

    parent_hash: bytes
    height: int
    tx_root: bytes
    state_root: bytes
    timestamp_ms: int
    proposer: str
    consensus: Dict[str, Any] = field(default_factory=dict)

    def block_hash(self) -> bytes:
        cached = self.__dict__.get("_hash_memo")
        if cached is not None:
            return cached
        digest = self._block_hash_uncached()
        object.__setattr__(self, "_hash_memo", digest)
        return digest

    def _block_hash_uncached(self) -> bytes:
        return hash_value(
            {
                "parent_hash": self.parent_hash,
                "height": self.height,
                "tx_root": self.tx_root,
                "state_root": self.state_root,
                "timestamp_ms": self.timestamp_ms,
                "proposer": self.proposer,
                "consensus": self.consensus,
            },
            allow_float=False,
        )

    def mining_digest(self) -> bytes:
        """Header hash with the consensus proof fields zeroed.

        Proof-of-work grinds over this digest plus a nonce, so the proof
        cannot influence the puzzle it must solve.
        """
        return hash_value(
            {
                "parent_hash": self.parent_hash,
                "height": self.height,
                "tx_root": self.tx_root,
                "state_root": self.state_root,
                "timestamp_ms": self.timestamp_ms,
                "proposer": self.proposer,
            },
            allow_float=False,
        )


@dataclass(frozen=True)
class Block:
    """A block: header plus the full transaction list."""

    header: BlockHeader
    transactions: List[Transaction] = field(default_factory=list)

    @property
    def block_hash(self) -> bytes:
        return self.header.block_hash()

    @property
    def block_id(self) -> str:
        return self.block_hash.hex()

    @property
    def height(self) -> int:
        return self.header.height

    def tx_tree(self) -> MerkleTree:
        return MerkleTree([tx.signing_digest() for tx in self.transactions])

    def compute_tx_root(self) -> bytes:
        return self.tx_tree().root

    def validate_structure(self) -> None:
        """Check internal consistency (tx root, tx signatures, ordering)."""
        if self.header.height < 0:
            raise ValidationError("negative block height")
        if self.compute_tx_root() != self.header.tx_root:
            raise ValidationError("tx root mismatch")
        seen = set()
        for tx in self.transactions:
            tx.validate()
            if tx.tx_id in seen:
                raise ValidationError(f"duplicate tx {tx.tx_id[:12]} in block")
            seen.add(tx.tx_id)

    def with_consensus(self, consensus: Dict[str, Any]) -> "Block":
        """Copy of this block with the consensus proof filled in."""
        return Block(
            header=replace(self.header, consensus=consensus),
            transactions=self.transactions,
        )

    def estimated_size_bytes(self) -> int:
        """Wire-size estimate for the network simulator."""
        return 512 + sum(tx.estimated_size_bytes() for tx in self.transactions)


def make_genesis(
    state_root: bytes, timestamp_ms: int = 0, chain_id: str = "medchain"
) -> Block:
    """The genesis block shared by all nodes of a network."""
    header = BlockHeader(
        parent_hash=ZERO_HASH,
        height=0,
        tx_root=MerkleTree([]).root,
        state_root=state_root,
        timestamp_ms=timestamp_ms,
        proposer="genesis",
        consensus={"chain_id": chain_id},
    )
    return Block(header=header, transactions=[])


def build_block(
    parent: Block,
    transactions: List[Transaction],
    state_root: bytes,
    proposer: str,
    timestamp_ms: int,
    consensus: Dict[str, Any] = None,
) -> Block:
    """Assemble an unproven block on top of ``parent``."""
    tx_root = MerkleTree([tx.signing_digest() for tx in transactions]).root
    header = BlockHeader(
        parent_hash=parent.block_hash,
        height=parent.height + 1,
        tx_root=tx_root,
        state_root=state_root,
        timestamp_ms=timestamp_ms,
        proposer=proposer,
        consensus=consensus or {},
    )
    return Block(header=header, transactions=list(transactions))
