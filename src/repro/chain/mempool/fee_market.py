"""Fee-market arithmetic: effective bids, RBF thresholds, percentile floors.

All integer math (fees are per-gas integers like gas itself); percentiles
use the nearest-rank method so a floor quoted to clients is always a fee
that actually exists in the pool.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.chain.transactions import Transaction


def effective_fee(tx: Transaction, base_fee: int = 0) -> int:
    """The per-gas price a bid realizes against ``base_fee``."""
    return tx.effective_fee_per_gas(base_fee)


def rbf_threshold(old_fee: int, bump_pct: int) -> int:
    """Smallest effective fee that may replace a pooled bid of ``old_fee``.

    The bump is at least one fee unit so a zero-fee transaction cannot be
    replaced for free, and proportional above that so replacement spam
    costs real money as fees rise.
    """
    return old_fee + max(1, (old_fee * bump_pct) // 100)


def percentile(fees: Sequence[int], fraction: float) -> int:
    """Nearest-rank percentile of ``fees`` (0 when empty)."""
    if not fees:
        return 0
    ordered = sorted(fees)
    if fraction <= 0.0:
        return ordered[0]
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def fee_percentiles(fees: Sequence[int]) -> Dict[str, int]:
    """The p10/p50/p90 summary quoted by ``mempool.status``."""
    ordered: List[int] = sorted(fees)
    return {
        "p10": percentile(ordered, 0.10),
        "p50": percentile(ordered, 0.50),
        "p90": percentile(ordered, 0.90),
    }
