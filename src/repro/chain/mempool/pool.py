"""Priority fee-market transaction pool.

The mempool is the front door of the whole architecture: at
millions-of-users traffic it must admit by price, shed load before it
falls over, and never let one sender starve the rest.  This pool replaces
the old FIFO ``OrderedDict`` with:

- **price-priority selection** — block building drains senders by the
  effective fee of their next executable transaction via a heap, with
  arrival order as the deterministic tie-break (a zero-fee workload
  therefore selects in exactly the old FIFO order);
- **replace-by-fee** — one transaction per (sender, nonce); a replacement
  must bump the old bid by ``replace_bump_pct`` (``fee_market.py``);
- **bounded capacity** — at ``max_size`` a newcomer must outbid the
  cheapest pooled tail, which is evicted (``evict.py``); the pool never
  exceeds its capacity;
- **watermark backpressure** — above the high watermark the pool sheds
  cheap bids until depth falls under the low watermark
  (``watermark.py``), surfaced upstream as RPC ``OVERLOADED``;
- **per-account rate limiting** — a token bucket per sender
  (``limiter.py``) so a spamming key dies at the first hop;
- **stale-nonce hygiene** — ``commit()`` purges transactions whose nonce
  fell behind the account nonce (``sequence.py``), fixing the old pool's
  unbounded stale-entry leak.

Every admission outcome is a typed :class:`AdmissionResult` and every
decision is counted in the node's :class:`MetricsRegistry`.  The pool is
clock-agnostic: callers inject a time source (the sim kernel's clock in
consensus nodes, a wall clock in servers); it never reads wall time
itself.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.chain.mempool import result as res
from repro.chain.mempool.config import MempoolConfig
from repro.chain.mempool.evict import EvictionIndex
from repro.chain.mempool.fee_market import (
    fee_percentiles,
    percentile,
    rbf_threshold,
)
from repro.chain.mempool.limiter import RateLimiter
from repro.chain.mempool.sequence import SenderSequence, TxEntry
from repro.chain.mempool.watermark import WatermarkTracker
from repro.chain.transactions import Transaction
from repro.obs.tracer import trace_span
from repro.sim.metrics import MetricsRegistry

#: Account-nonce lookup accepted by ``select``/``add``: a mapping, a
#: callable, or None (treat each sender's lowest pooled nonce as ready).
NonceSource = Union[None, Mapping[str, int], Callable[[str], int]]

_FLOOR_REFRESH_OPS = 64


class Mempool:
    """Bounded fee-market pool of pending transactions."""

    def __init__(
        self,
        max_size: Optional[int] = None,
        *,
        config: Optional[MempoolConfig] = None,
        time_source: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        scope: str = "",
    ):
        config = config or MempoolConfig()
        if max_size is not None:
            import dataclasses

            config = dataclasses.replace(config, max_size=max_size)
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        self.scope = scope
        self._time = time_source or (lambda: 0.0)
        self._entries: Dict[str, TxEntry] = {}
        self._senders: Dict[str, SenderSequence] = {}
        self._evict_index = EvictionIndex()
        self._watermark = WatermarkTracker(
            config.high_watermark, config.low_watermark, config.max_size
        )
        self._limiter = (
            RateLimiter(config.rate_limit_rate, config.rate_limit_burst)
            if config.rate_limit_rate
            else None
        )
        # Arrival FIFO for age eviction: (added_at, tx_id).
        self._age_fifo: Deque[Tuple[float, str]] = deque()
        self._seq = 0
        self._ops = 0  # mutations since construction (floor-cache key)
        self._floor_cache = 0
        self._floor_ops = -1
        self.max_depth_seen = 0

    # -- basic container protocol -------------------------------------------
    @property
    def max_size(self) -> int:
        return self.config.max_size

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._entries

    def get(self, tx_id: str) -> Optional[Transaction]:
        """Pending transaction by id (None when absent); serves p2p get_data."""
        entry = self._entries.get(tx_id)
        return entry.tx if entry is not None else None

    def all_ids(self) -> List[str]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._senders.clear()
        self._age_fifo.clear()
        self._evict_index = EvictionIndex()
        self._watermark.shedding = False

    # -- admission -----------------------------------------------------------
    def add(
        self,
        tx: Transaction,
        *,
        account_nonce: Optional[int] = None,
        now: Optional[float] = None,
    ) -> res.AdmissionResult:
        """Offer one transaction; returns a typed :class:`AdmissionResult`.

        ``account_nonce`` (when the caller knows it) rejects
        already-executed nonces at the door instead of letting them rot
        in the pool.  The result is truthy iff the pool now holds the
        transaction (accepted or replaced).
        """
        now = self._time() if now is None else now
        self._expire(now)
        outcome = self._admit(tx, account_nonce, now)
        self._count_admission(outcome)
        return outcome

    def _admit(
        self, tx: Transaction, account_nonce: Optional[int], now: float
    ) -> res.AdmissionResult:
        tx_id = tx.tx_id
        if tx_id in self._entries:
            return res.rejected(res.DUPLICATE, tx_id)
        if account_nonce is not None and tx.nonce < account_nonce:
            return res.rejected(
                res.STALE_NONCE,
                tx_id,
                reason=f"account nonce is {account_nonce}, tx nonce {tx.nonce}",
            )
        config = self.config
        fee = tx.effective_fee_per_gas(config.base_fee_per_gas)
        static_floor = max(config.min_fee_per_gas, config.base_fee_per_gas)
        if tx.max_fee_per_gas < config.base_fee_per_gas or fee < config.min_fee_per_gas:
            return res.rejected(
                res.UNDERPRICED,
                tx_id,
                reason="below static fee floor",
                fee_floor=static_floor,
            )
        sequence = self._senders.get(tx.sender)
        incumbent = sequence.get(tx.nonce) if sequence is not None else None
        if incumbent is not None:
            return self._replace(tx, fee, incumbent, now)
        victim: Optional[TxEntry] = None
        if len(self._entries) >= config.max_size:
            victim = self._evict_index.find_victim(self._senders)
            if victim is None or victim.fee >= fee:
                return res.rejected(
                    res.POOL_FULL,
                    tx_id,
                    reason="at capacity",
                    fee_floor=(victim.fee + 1) if victim is not None else None,
                )
        elif self._watermark.shedding:
            floor = self._shed_floor()
            if fee < floor:
                return res.rejected(
                    res.POOL_FULL, tx_id, reason="shedding", fee_floor=floor
                )
        # The limiter runs last — after every fee/capacity check has
        # passed and before any mutation — so a bid the pool would refuse
        # anyway never burns the sender's admission budget, and a refused
        # bid evicts nobody.
        if not self._consume_token(tx.sender, now):
            return res.rejected(
                res.RATE_LIMITED, tx_id, reason="sender token bucket exhausted"
            )
        if victim is not None:
            self._evict_entry(victim, reason="capacity")
        self._insert(tx, fee, now)
        return res.accepted(tx_id)

    def _replace(
        self, tx: Transaction, fee: int, incumbent: TxEntry, now: float
    ) -> res.AdmissionResult:
        """Replace-by-fee on an occupied (sender, nonce) slot."""
        threshold = rbf_threshold(incumbent.fee, self.config.replace_bump_pct)
        if fee < threshold:
            return res.rejected(
                res.UNDERPRICED,
                tx.tx_id,
                reason="replacement bump too small",
                fee_floor=threshold,
            )
        if not self._consume_token(tx.sender, now):
            return res.rejected(
                res.RATE_LIMITED,
                tx.tx_id,
                reason="sender token bucket exhausted",
            )
        del self._entries[incumbent.tx_id]
        self._insert(tx, fee, now)
        return res.replaced(tx.tx_id, incumbent.tx_id)

    def _consume_token(self, sender: str, now: float) -> bool:
        return self._limiter is None or self._limiter.allow(sender, now)

    def _insert(self, tx: Transaction, fee: int, now: float) -> None:
        self._seq += 1
        self._ops += 1
        entry = TxEntry(tx=tx, fee=fee, seq=self._seq, added_at=now)
        sequence = self._senders.setdefault(tx.sender, SenderSequence())
        sequence.put(entry)
        self._entries[entry.tx_id] = entry
        if self.config.max_age_s is not None:
            self._age_fifo.append((now, entry.tx_id))
        if sequence.highest() == entry.nonce:
            self._evict_index.push(entry)
        self._evict_index.maybe_rebuild(self._senders, len(self._entries))
        depth = len(self._entries)
        self.max_depth_seen = max(self.max_depth_seen, depth)
        self._watermark.update(depth)

    # -- removal -------------------------------------------------------------
    def remove(self, tx_id: str) -> None:
        entry = self._entries.pop(tx_id, None)
        if entry is not None:
            self._unlink(entry)

    def remove_all(self, tx_ids: Iterable[str]) -> None:
        for tx_id in tx_ids:
            self.remove(tx_id)

    def _unlink(self, entry: TxEntry) -> None:
        """Detach an entry already popped from ``_entries``."""
        self._ops += 1
        sequence = self._senders.get(entry.sender)
        if sequence is None:
            return
        was_tail = sequence.highest() == entry.nonce
        sequence.remove(entry.nonce)
        if len(sequence) == 0:
            del self._senders[entry.sender]
        elif was_tail:
            tail = sequence.tail()
            if tail is not None:
                self._evict_index.push(tail)
        self._watermark.update(len(self._entries))

    def _evict_entry(self, entry: TxEntry, reason: str) -> None:
        del self._entries[entry.tx_id]
        self._unlink(entry)
        self.metrics.add(f"mempool_evicted_{reason}", 1, scope=self.scope)

    def _expire(self, now: float) -> None:
        """Lazily evict entries past ``max_age_s`` (oldest first)."""
        max_age = self.config.max_age_s
        if max_age is None:
            return
        fifo = self._age_fifo
        while fifo and now - fifo[0][0] > max_age:
            added_at, tx_id = fifo.popleft()
            entry = self._entries.get(tx_id)
            # Skip records whose tx was removed or replaced since.
            if entry is not None and entry.added_at == added_at:
                self._expire_entry(entry)

    def _expire_entry(self, entry: TxEntry) -> None:
        """Age out one entry plus the sender's nonces stacked above it.

        Age eviction runs in arrival order, which can land mid-sequence;
        the higher nonces left behind could never execute (their
        predecessor is gone) and would squat in the pool until they also
        aged out.  Purging them tail-first keeps every removal a
        tail-only eviction from the sequence's point of view — the
        invariant ``evict.py`` documents.
        """
        sequence = self._senders.get(entry.sender)
        stranded = (
            sequence.at_or_above(entry.nonce + 1)
            if sequence is not None
            else []
        )
        for successor in reversed(stranded):
            self._evict_entry(successor, reason="age_stranded")
        self._evict_entry(entry, reason="age")

    def commit(
        self, tx_ids: Iterable[str], account_nonces: Mapping[str, int]
    ) -> int:
        """Block-commit hygiene: drop included txs, purge stale nonces.

        ``account_nonces`` maps each sender touched by the committed
        block(s) to its *post-block* account nonce; anything pooled below
        that nonce can never execute and is purged (the stale-nonce leak
        fix).  Returns the number of stale entries purged.
        """
        with trace_span(
            "mempool.commit", scope=self.scope, senders=len(account_nonces)
        ) as span:
            self.remove_all(tx_ids)
            purged = 0
            for sender, nonce in account_nonces.items():
                sequence = self._senders.get(sender)
                if sequence is None:
                    continue
                for entry in sequence.purge_below(nonce):
                    del self._entries[entry.tx_id]
                    self._ops += 1
                    purged += 1
                if len(sequence) == 0:
                    del self._senders[sender]
            if purged:
                self.metrics.add("mempool_stale_purged", purged, scope=self.scope)
            self._watermark.update(len(self._entries))
            span.set_attr("purged", purged)
        return purged

    # -- selection -----------------------------------------------------------
    def select(self, limit: int, nonces: NonceSource = None) -> List[Transaction]:
        """Up to ``limit`` executable transactions, highest bids first.

        A sender participates only while its next nonce is executable:
        the heap holds one candidate per sender (its lowest executable
        transaction) keyed by ``(-fee, seq)``; popping a candidate
        promotes the sender's next contiguous nonce.  Total cost is
        O(senders + limit·log senders) — near-linear in pool size, never
        the old quadratic deferred-queue scan.

        ``nonces`` supplies account nonces (mapping or callable); with
        None every sender's lowest pooled nonce is considered executable.
        """
        with trace_span("mempool.select", scope=self.scope, limit=limit) as span:
            selected = self._select_inner(limit, nonces)
            span.set_attr("selected", len(selected))
        return selected

    def _select_inner(
        self, limit: int, nonces: NonceSource
    ) -> List[Transaction]:
        if limit <= 0 or not self._entries:
            return []
        lookup = self._nonce_lookup(nonces)
        heap: List[Tuple[int, int, str, int]] = []
        for sender, sequence in self._senders.items():
            start = lookup(sender)
            if start is None:
                start = sequence.lowest()
            entry = sequence.get(start)
            if entry is not None:
                heap.append((-entry.fee, entry.seq, sender, start))
        heapq.heapify(heap)
        selected: List[Transaction] = []
        while heap and len(selected) < limit:
            _negfee, _seq, sender, nonce = heapq.heappop(heap)
            sequence = self._senders[sender]
            selected.append(sequence.get(nonce).tx)
            succ = sequence.get(nonce + 1)
            if succ is not None:
                heapq.heappush(heap, (-succ.fee, succ.seq, sender, nonce + 1))
        return selected

    @staticmethod
    def _nonce_lookup(nonces: NonceSource) -> Callable[[str], Optional[int]]:
        if nonces is None:
            return lambda _sender: None
        if callable(nonces):
            return nonces
        return lambda sender: nonces.get(sender, 0)

    # -- introspection -------------------------------------------------------
    def _shed_floor(self) -> int:
        """Percentile fee floor applied while shedding (cached)."""
        if self._ops - self._floor_ops >= _FLOOR_REFRESH_OPS or self._floor_ops < 0:
            fees = [entry.fee for entry in self._entries.values()]
            self._floor_cache = max(
                percentile(fees, self.config.shed_percentile),
                self.config.min_fee_per_gas,
                1,  # shedding always refuses free transactions
            )
            self._floor_ops = self._ops
        return self._floor_cache

    def fee_hint(self) -> int:
        """Smallest effective fee per gas a new bid needs right now."""
        config = self.config
        if len(self._entries) >= config.max_size:
            victim = self._evict_index.find_victim(self._senders)
            if victim is not None:
                return victim.fee + 1
        if self._watermark.shedding:
            return self._shed_floor()
        return max(config.min_fee_per_gas, config.base_fee_per_gas)

    def status(self) -> Dict[str, object]:
        """Depth, watermark state, and fee-floor summary (RPC surface)."""
        fees = [entry.fee for entry in self._entries.values()]
        return {
            "depth": len(self._entries),
            "capacity": self.config.max_size,
            "senders": len(self._senders),
            "shedding": self._watermark.shedding,
            "shed_flips": self._watermark.flips,
            "high_watermark": self._watermark.high_depth,
            "low_watermark": self._watermark.low_depth,
            "base_fee_per_gas": self.config.base_fee_per_gas,
            "min_fee_per_gas": self.config.min_fee_per_gas,
            "fee_percentiles": fee_percentiles(fees),
            "fee_hint": self.fee_hint(),
            "max_depth_seen": self.max_depth_seen,
        }

    @property
    def shedding(self) -> bool:
        return self._watermark.shedding

    # -- metrics -------------------------------------------------------------
    def _count_admission(self, outcome: res.AdmissionResult) -> None:
        if outcome.code == res.ACCEPTED:
            self.metrics.add("mempool_admitted", 1, scope=self.scope)
        elif outcome.code == res.REPLACED:
            self.metrics.add("mempool_replaced", 1, scope=self.scope)
        else:
            name = outcome.code.replace("-", "_")
            self.metrics.add(f"mempool_rejected_{name}", 1, scope=self.scope)
