"""Mempool tunables.

Defaults are permissive — zero fee floor, no rate limiting, watermarks
high — so a development simulation with unfee'd transactions behaves like
the old FIFO pool.  Production deployments (and the E19 benchmark) tighten
every knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class MempoolConfig:
    """Fee-market admission and eviction policy for one node's pool."""

    # Hard capacity: the pool never holds more transactions than this.
    max_size: int = 100_000
    # Static admission floor on the effective fee per gas; 0 admits free
    # transactions (development default).
    min_fee_per_gas: int = 0
    # Base fee the pool charges bids against (EIP-1559 style); bids whose
    # max_fee_per_gas is below it are underpriced outright.
    base_fee_per_gas: int = 0
    # Replace-by-fee: a same-sender same-nonce replacement must bid at
    # least ``old_fee * (1 + bump_pct/100)`` (and strictly more than the
    # old fee) or it is rejected as underpriced.
    replace_bump_pct: int = 10
    # Watermarks as fractions of max_size.  Crossing ``high`` flips the
    # pool into shedding mode (new bids must beat the shed floor, RPC
    # reports OVERLOADED); it only clears once depth falls below ``low``.
    high_watermark: float = 0.90
    low_watermark: float = 0.75
    # While shedding, the admission floor is this percentile of the pooled
    # effective fees (0.5 = median).
    shed_percentile: float = 0.50
    # Transactions older than this (seconds on the pool's injected clock)
    # are evicted lazily; None disables age eviction.
    max_age_s: Optional[float] = None
    # Per-sender token bucket: ``rate_limit_rate`` admissions per second
    # with ``rate_limit_burst`` of burst headroom; None disables.
    rate_limit_rate: Optional[float] = None
    rate_limit_burst: int = 32

    def __post_init__(self) -> None:
        if self.max_size <= 0:
            raise ValueError("max_size must be positive")
        if not 0.0 < self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={self.low_watermark} high={self.high_watermark}"
            )
        if self.replace_bump_pct < 0:
            raise ValueError("replace_bump_pct must be non-negative")
        if not 0.0 <= self.shed_percentile <= 1.0:
            raise ValueError("shed_percentile must be in [0, 1]")
