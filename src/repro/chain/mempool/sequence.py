"""Per-sender nonce sequences.

The pool holds at most one transaction per (sender, nonce) — a second bid
on the same slot goes through replace-by-fee — and selection only ever
walks a sender's *contiguous* nonce run starting at the account nonce, so
the executor never sees a gap.  Nonces are kept in a sorted list
(bisect-maintained); per-sender counts are small relative to pool size,
so insertion cost is negligible next to the heap work in the pool.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.chain.transactions import Transaction


@dataclass
class TxEntry:
    """One pooled transaction plus its admission-time metadata."""

    tx: Transaction
    fee: int        # effective fee per gas, fixed at admission
    seq: int        # global arrival counter (deterministic FIFO tie-break)
    added_at: float  # pool-clock admission time (age eviction)

    @property
    def tx_id(self) -> str:
        return self.tx.tx_id

    @property
    def sender(self) -> str:
        return self.tx.sender

    @property
    def nonce(self) -> int:
        return self.tx.nonce


class SenderSequence:
    """The nonce-indexed transactions of a single sender."""

    def __init__(self) -> None:
        self._by_nonce: Dict[int, TxEntry] = {}
        self._nonces: List[int] = []  # sorted

    def __len__(self) -> int:
        return len(self._by_nonce)

    def get(self, nonce: int) -> Optional[TxEntry]:
        return self._by_nonce.get(nonce)

    def put(self, entry: TxEntry) -> Optional[TxEntry]:
        """Insert ``entry``; returns the displaced same-nonce entry if any."""
        old = self._by_nonce.get(entry.nonce)
        self._by_nonce[entry.nonce] = entry
        if old is None:
            bisect.insort(self._nonces, entry.nonce)
        return old

    def remove(self, nonce: int) -> Optional[TxEntry]:
        entry = self._by_nonce.pop(nonce, None)
        if entry is not None:
            index = bisect.bisect_left(self._nonces, nonce)
            del self._nonces[index]
        return entry

    def lowest(self) -> Optional[int]:
        return self._nonces[0] if self._nonces else None

    def highest(self) -> Optional[int]:
        return self._nonces[-1] if self._nonces else None

    def tail(self) -> Optional[TxEntry]:
        """The entry at the highest nonce (the safe eviction victim —
        removing it never opens a gap inside the sequence)."""
        return self._by_nonce[self._nonces[-1]] if self._nonces else None

    def ready(self, start_nonce: int) -> Iterator[TxEntry]:
        """Entries forming a contiguous run ``start, start+1, ...``."""
        nonce = start_nonce
        while True:
            entry = self._by_nonce.get(nonce)
            if entry is None:
                return
            yield entry
            nonce += 1

    def at_or_above(self, nonce: int) -> List[TxEntry]:
        """Entries with a nonce >= ``nonce``, ascending (not removed)."""
        start = bisect.bisect_left(self._nonces, nonce)
        return [self._by_nonce[n] for n in self._nonces[start:]]

    def purge_below(self, nonce: int) -> List[TxEntry]:
        """Remove and return every entry with a nonce under ``nonce``.

        This is the stale-nonce fix: once the account nonce advances past
        a pooled transaction it can never execute again, so it must leave
        the pool instead of lingering until (never) selected.
        """
        cut = bisect.bisect_left(self._nonces, nonce)
        stale_nonces, self._nonces = self._nonces[:cut], self._nonces[cut:]
        return [self._by_nonce.pop(n) for n in stale_nonces]

    def entries(self) -> Iterator[TxEntry]:
        for nonce in self._nonces:
            yield self._by_nonce[nonce]
