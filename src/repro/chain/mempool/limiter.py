"""Per-account token-bucket rate limiting.

One bucket per sender address, refilled continuously at ``rate`` tokens
per second up to ``burst``.  Buckets run on the pool's injected clock
(simulated or wall), never on a direct wall-clock read.  Idle buckets are
swept once they are full again, so the limiter's memory is proportional
to the set of *currently active* senders rather than every address ever
seen — at millions-of-users scale that distinction is the whole game.
"""

from __future__ import annotations

from typing import Dict, Tuple

_SWEEP_EVERY = 4096


class RateLimiter:
    """Token buckets keyed by sender address."""

    def __init__(self, rate: float, burst: int):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        # sender -> (tokens, last refill time)
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self._ops = 0

    def allow(self, sender: str, now: float) -> bool:
        """Consume one token for ``sender``; False when the bucket is dry."""
        tokens, last = self._buckets.get(sender, (float(self.burst), now))
        tokens = min(float(self.burst), tokens + (now - last) * self.rate)
        if tokens < 1.0:
            self._buckets[sender] = (tokens, now)
            return False
        self._buckets[sender] = (tokens - 1.0, now)
        self._ops += 1
        if self._ops % _SWEEP_EVERY == 0:
            self._sweep(now)
        return True

    def _sweep(self, now: float) -> None:
        """Drop buckets that have refilled completely (idle senders).

        A full bucket is indistinguishable from no bucket (a fresh one
        starts full), so dropping it is semantically lossless.
        """
        idle = [
            sender
            for sender, (tokens, last) in self._buckets.items()
            if tokens + (now - last) * self.rate >= self.burst
        ]
        for sender in idle:
            del self._buckets[sender]

    def __len__(self) -> int:
        return len(self._buckets)
