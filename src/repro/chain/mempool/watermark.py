"""High/low watermark hysteresis for pool backpressure.

Crossing the high watermark flips the pool into *shedding* mode: cheap
bids are refused (``POOL_FULL``/OVERLOADED upstream) until depth falls
back below the low watermark.  The gap between the two marks prevents the
pool from oscillating in and out of shedding on every block commit.
"""

from __future__ import annotations


class WatermarkTracker:
    """Tracks shedding state from pool depth against capacity."""

    def __init__(self, high: float, low: float, capacity: int):
        self.high_depth = max(1, int(high * capacity))
        # Clamped to >= 1 so tiny capacities (where low * capacity
        # truncates to 0) can still clear: depth < 1 means empty, which
        # is always reachable — a low_depth of 0 never is.
        self.low_depth = max(1, int(low * capacity))
        self.shedding = False
        self.flips = 0  # times shedding engaged (observability)

    def update(self, depth: int) -> bool:
        """Feed the current depth; returns the (possibly new) shed state."""
        if not self.shedding and depth >= self.high_depth:
            self.shedding = True
            self.flips += 1
        elif self.shedding and depth < self.low_depth:
            self.shedding = False
        return self.shedding
