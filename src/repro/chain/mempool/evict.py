"""Capacity eviction: who leaves when a better-paying bid arrives.

The victim is always some sender's *tail* (highest-nonce) transaction —
evicting mid-sequence would strand the nonces above it — and among tails
the cheapest bid goes first, newest arrival breaking ties (a late cheap
bid should not displace an old one of equal price).

Victim lookup is a lazy min-heap over tail entries keyed by
``(fee, -seq)``: every tail change pushes a fresh candidate, stale heap
records are skipped at pop time by validating against the live
sequences.  Amortized cost per eviction is O(log n); the heap is rebuilt
from scratch on the rare occasion lazy garbage outgrows the pool 4:1.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Tuple

from repro.chain.mempool.sequence import SenderSequence, TxEntry


class EvictionIndex:
    """Lazy min-heap of eviction candidates (sender tails)."""

    def __init__(self) -> None:
        self._heap: list = []

    def push(self, entry: TxEntry) -> None:
        """Offer a (possibly new) tail entry as an eviction candidate."""
        heapq.heappush(
            self._heap, (entry.fee, -entry.seq, entry.sender, entry.nonce)
        )

    def find_victim(
        self, senders: Dict[str, SenderSequence]
    ) -> Optional[TxEntry]:
        """The live entry that would be evicted next, or None.

        Pops stale heap records as a side effect; the returned candidate
        is left on the heap (the caller may decide not to evict).
        """
        while self._heap:
            fee, negseq, sender, nonce = self._heap[0]
            entry = self._validate(senders, fee, negseq, sender, nonce)
            if entry is not None:
                return entry
            heapq.heappop(self._heap)
        return None

    @staticmethod
    def _validate(
        senders: Dict[str, SenderSequence],
        fee: int,
        negseq: int,
        sender: str,
        nonce: int,
    ) -> Optional[TxEntry]:
        sequence = senders.get(sender)
        if sequence is None or sequence.highest() != nonce:
            return None
        entry = sequence.get(nonce)
        if entry is None or entry.seq != -negseq or entry.fee != fee:
            return None
        return entry

    def maybe_rebuild(self, senders: Dict[str, SenderSequence], pool_len: int) -> None:
        """Compact away lazy garbage once it dominates the heap."""
        if len(self._heap) <= 4 * pool_len + 64:
            return
        rebuilt: list[Tuple[int, int, str, int]] = []
        for sequence in senders.values():
            tail = sequence.tail()
            if tail is not None:
                rebuilt.append((tail.fee, -tail.seq, tail.sender, tail.nonce))
        heapq.heapify(rebuilt)
        self._heap = rebuilt

    def __len__(self) -> int:
        return len(self._heap)
