"""Typed admission outcomes.

``Mempool.add`` used to return a bare bool; at fee-market scale every
caller (node, RPC surface, gossip relay, benchmarks) needs to know *why* a
transaction was refused — an underpriced bid should be told the going
rate, a rate-limited spammer should not be re-announced, a full pool maps
to the RPC ``OVERLOADED`` band.  :class:`AdmissionResult` carries the
decision; its truthiness preserves the old ``if pool.add(tx):`` idiom
(accepted and replaced are truthy, every rejection falsy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# Stable admission codes (wire-visible via RPC error payloads; append,
# never rename).
ACCEPTED = "accepted"
REPLACED = "replaced"           # replace-by-fee displaced a same-nonce tx
DUPLICATE = "duplicate"         # exact tx id already pooled
UNDERPRICED = "underpriced"     # below fee floor, or RBF bump too small
POOL_FULL = "pool-full"         # at capacity / shedding and bid too low
RATE_LIMITED = "rate-limited"   # sender token bucket exhausted
STALE_NONCE = "stale-nonce"     # nonce below the sender's account nonce

REJECTION_CODES = frozenset(
    {DUPLICATE, UNDERPRICED, POOL_FULL, RATE_LIMITED, STALE_NONCE}
)
ADMISSION_CODES = frozenset({ACCEPTED, REPLACED}) | REJECTION_CODES


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of offering one transaction to the pool."""

    code: str
    tx_id: str = ""
    reason: str = ""
    # Set on REPLACED: the tx id the newcomer displaced.
    replaced_tx_id: Optional[str] = None
    # Set on fee rejections: the smallest effective fee per gas that would
    # currently be admitted (the client's retry hint).
    fee_floor: Optional[int] = None

    def __bool__(self) -> bool:
        return self.code in (ACCEPTED, REPLACED)

    @property
    def accepted(self) -> bool:
        return bool(self)


def accepted(tx_id: str) -> AdmissionResult:
    return AdmissionResult(ACCEPTED, tx_id=tx_id)


def replaced(tx_id: str, old_tx_id: str) -> AdmissionResult:
    return AdmissionResult(REPLACED, tx_id=tx_id, replaced_tx_id=old_tx_id)


def rejected(
    code: str,
    tx_id: str,
    reason: str = "",
    fee_floor: Optional[int] = None,
) -> AdmissionResult:
    return AdmissionResult(code, tx_id=tx_id, reason=reason, fee_floor=fee_floor)
