"""Fee-market mempool package (priced admission, RBF, eviction, shedding).

Public surface re-exported here so ``from repro.chain.mempool import
Mempool`` keeps working exactly as it did when this was a single module.
"""

from repro.chain.mempool.config import MempoolConfig
from repro.chain.mempool.fee_market import (
    effective_fee,
    fee_percentiles,
    rbf_threshold,
)
from repro.chain.mempool.limiter import RateLimiter
from repro.chain.mempool.pool import Mempool
from repro.chain.mempool.result import (
    ACCEPTED,
    ADMISSION_CODES,
    DUPLICATE,
    POOL_FULL,
    RATE_LIMITED,
    REPLACED,
    STALE_NONCE,
    UNDERPRICED,
    AdmissionResult,
)
from repro.chain.mempool.sequence import SenderSequence, TxEntry
from repro.chain.mempool.watermark import WatermarkTracker

__all__ = [
    "ACCEPTED",
    "ADMISSION_CODES",
    "AdmissionResult",
    "DUPLICATE",
    "Mempool",
    "MempoolConfig",
    "POOL_FULL",
    "RATE_LIMITED",
    "REPLACED",
    "RateLimiter",
    "STALE_NONCE",
    "SenderSequence",
    "TxEntry",
    "UNDERPRICED",
    "WatermarkTracker",
    "effective_fee",
    "fee_percentiles",
    "rbf_threshold",
]
