"""Signed blockchain transactions.

Every ledger mutation in the medical blockchain — money transfer, contract
deployment, contract call, data-set registration, access grant — travels as
a :class:`Transaction`.  The transaction hash covers every field except the
signature, and the signature covers the hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.common.errors import ValidationError
from repro.common.hashing import hash_value
from repro.common.signatures import KeyPair, PublicKey, Signature

# Transaction kinds understood by the executor.
TX_TRANSFER = "transfer"
TX_DEPLOY = "deploy"
TX_CALL = "call"
VALID_TX_KINDS = frozenset({TX_TRANSFER, TX_DEPLOY, TX_CALL})

DEFAULT_GAS_LIMIT = 2_000_000


@dataclass(frozen=True)
class Transaction:
    """An immutable signed transaction.

    ``payload`` must be canonical-JSON serializable without floats; its shape
    depends on ``kind``:

    - ``transfer``: ``{"to": address, "amount": int}``
    - ``deploy``:   ``{"contract": name, "source": str, "init": {...}}``
    - ``call``:     ``{"contract": contract_id, "method": str, "args": {...}}``
    """

    sender: str
    nonce: int
    kind: str
    payload: Dict[str, Any]
    gas_limit: int = DEFAULT_GAS_LIMIT
    # Fee-market bid (per gas unit): ``max_fee_per_gas`` is the absolute
    # ceiling the sender will pay, ``priority_fee_per_gas`` the tip offered
    # to the proposer on top of the pool's base fee.  Both are admission /
    # ordering signals for the mempool fee market; execution semantics are
    # fee-independent (see DESIGN.md §12).
    max_fee_per_gas: int = 0
    priority_fee_per_gas: int = 0
    timestamp_ms: int = 0
    public_key: bytes = b""
    signature: bytes = b""

    def signing_digest(self) -> bytes:
        """Hash over every field except the signature (memoized)."""
        cached = self.__dict__.get("_digest_memo")
        if cached is not None:
            return cached
        digest = hash_value(
            {
                "sender": self.sender,
                "nonce": self.nonce,
                "kind": self.kind,
                "payload": self.payload,
                "gas_limit": self.gas_limit,
                "max_fee_per_gas": self.max_fee_per_gas,
                "priority_fee_per_gas": self.priority_fee_per_gas,
                "timestamp_ms": self.timestamp_ms,
                "public_key": self.public_key,
            },
            allow_float=False,
        )
        object.__setattr__(self, "_digest_memo", digest)
        return digest

    def effective_fee_per_gas(self, base_fee: int = 0) -> int:
        """The per-gas price this bid realizes against ``base_fee``.

        Mirrors EIP-1559: the sender pays at most ``max_fee_per_gas``; of
        that, the proposer tip is ``priority_fee_per_gas`` capped by
        whatever headroom remains above the base fee.
        """
        return min(self.max_fee_per_gas, base_fee + self.priority_fee_per_gas)

    def effective_priority_fee(self, base_fee: int = 0) -> int:
        """Proposer tip realized against ``base_fee`` (never negative)."""
        return max(0, self.effective_fee_per_gas(base_fee) - base_fee)

    @property
    def tx_id(self) -> str:
        return self.signing_digest().hex()

    def signed_by(self, keypair: KeyPair) -> "Transaction":
        """Return a copy carrying the signer's public key and signature."""
        unsigned = replace(self, public_key=keypair.public.data, signature=b"")
        signature = keypair.sign(unsigned.signing_digest())
        return replace(unsigned, signature=signature.to_bytes())

    def verify_signature(self) -> bool:
        """True when signature is valid and matches the sender address.

        Memoized per instance: gossip floods re-validate the same object on
        every node, and EC verification dominates simulation wall-clock.
        The cache key includes the signature so a mutated copy re-verifies.
        """
        cached = self.__dict__.get("_verify_memo")
        if cached is not None and cached[0] == self.signature:
            return cached[1]
        result = self._verify_signature_uncached()
        object.__setattr__(self, "_verify_memo", (self.signature, result))
        return result

    def _verify_signature_uncached(self) -> bool:
        if not self.public_key or not self.signature:
            return False
        try:
            public = PublicKey(self.public_key)
            signature = Signature.from_bytes(self.signature)
        except Exception:
            return False
        if public.address() != self.sender:
            return False
        return public.verify(self.signing_digest(), signature)

    def validate(self) -> None:
        """Structural validation; raises :class:`ValidationError`."""
        if self.kind not in VALID_TX_KINDS:
            raise ValidationError(f"unknown tx kind {self.kind!r}")
        if self.nonce < 0:
            raise ValidationError("nonce must be non-negative")
        if self.gas_limit <= 0:
            raise ValidationError("gas limit must be positive")
        if self.max_fee_per_gas < 0 or self.priority_fee_per_gas < 0:
            raise ValidationError("fee bids must be non-negative")
        if self.priority_fee_per_gas > self.max_fee_per_gas:
            raise ValidationError(
                "priority fee exceeds max fee "
                f"({self.priority_fee_per_gas} > {self.max_fee_per_gas})"
            )
        if not isinstance(self.payload, dict):
            raise ValidationError("payload must be a dict")
        if not self.verify_signature():
            raise ValidationError(f"bad signature on tx from {self.sender}")

    def estimated_size_bytes(self) -> int:
        """Wire-size estimate used by the network simulator (memoized)."""
        cached = self.__dict__.get("_size_memo")
        if cached is not None:
            return cached
        from repro.common.serialize import canonical_bytes

        size = len(canonical_bytes(self, allow_float=False)) + 64
        object.__setattr__(self, "_size_memo", size)
        return size


def make_transfer(
    keypair: KeyPair,
    to: str,
    amount: int,
    nonce: int,
    timestamp_ms: int = 0,
    max_fee_per_gas: int = 0,
    priority_fee_per_gas: int = 0,
) -> Transaction:
    """Build and sign a value-transfer transaction."""
    tx = Transaction(
        sender=keypair.address,
        nonce=nonce,
        kind=TX_TRANSFER,
        payload={"to": to, "amount": amount},
        max_fee_per_gas=max_fee_per_gas,
        priority_fee_per_gas=priority_fee_per_gas,
        timestamp_ms=timestamp_ms,
    )
    return tx.signed_by(keypair)


def make_deploy(
    keypair: KeyPair,
    contract_name: str,
    source: str,
    init: Optional[Dict[str, Any]] = None,
    nonce: int = 0,
    gas_limit: int = DEFAULT_GAS_LIMIT,
    timestamp_ms: int = 0,
    max_fee_per_gas: int = 0,
    priority_fee_per_gas: int = 0,
) -> Transaction:
    """Build and sign a contract-deployment transaction."""
    tx = Transaction(
        sender=keypair.address,
        nonce=nonce,
        kind=TX_DEPLOY,
        payload={"contract": contract_name, "source": source, "init": init or {}},
        gas_limit=gas_limit,
        max_fee_per_gas=max_fee_per_gas,
        priority_fee_per_gas=priority_fee_per_gas,
        timestamp_ms=timestamp_ms,
    )
    return tx.signed_by(keypair)


def make_call(
    keypair: KeyPair,
    contract_id: str,
    method: str,
    args: Optional[Dict[str, Any]] = None,
    nonce: int = 0,
    gas_limit: int = DEFAULT_GAS_LIMIT,
    timestamp_ms: int = 0,
    max_fee_per_gas: int = 0,
    priority_fee_per_gas: int = 0,
) -> Transaction:
    """Build and sign a contract-call transaction."""
    tx = Transaction(
        sender=keypair.address,
        nonce=nonce,
        kind=TX_CALL,
        payload={"contract": contract_id, "method": method, "args": args or {}},
        gas_limit=gas_limit,
        max_fee_per_gas=max_fee_per_gas,
        priority_fee_per_gas=priority_fee_per_gas,
        timestamp_ms=timestamp_ms,
    )
    return tx.signed_by(keypair)
