"""Lightning-style state channels (paper section I survey).

The paper surveys the Lightning Network as a duplication-reduction
mechanism: two parties open a channel, exchange any number of *off-chain*
signed state updates, and only the final state is recorded on the ledger —
"from the distributed ledger point of view, it only sees one final
transaction occurred."

This module implements the scheme over our chain primitives so experiment
E13 can quantify the reduction (and its limits — the paper notes it "is
still a duplicated computing mechanism" for what *does* reach the chain):

- :class:`ChannelState` — a monotonically-versioned balance split signed by
  both parties;
- :class:`StateChannel` — open / update / cooperative close / unilateral
  close with a dispute window where the counterparty can present a
  higher-versioned state (punishing stale-state fraud).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.common.errors import ChainError, CryptoError, ValidationError
from repro.common.hashing import hash_value
from repro.common.signatures import KeyPair, PublicKey, Signature


@dataclass(frozen=True)
class ChannelState:
    """One signed state of a two-party channel.

    ``version`` is strictly increasing; the latest doubly-signed state wins
    any dispute.  ``balances`` maps each party's address to its share of the
    channel's capacity.
    """

    channel_id: str
    version: int
    balances: Dict[str, int]
    signature_a: bytes = b""
    signature_b: bytes = b""

    def signing_digest(self) -> bytes:
        return hash_value(
            {
                "channel_id": self.channel_id,
                "version": self.version,
                "balances": self.balances,
            },
            allow_float=False,
        )

    def signed_by(self, party: KeyPair, is_a: bool) -> "ChannelState":
        signature = party.sign(self.signing_digest()).to_bytes()
        if is_a:
            return replace(self, signature_a=signature)
        return replace(self, signature_b=signature)

    def fully_signed(self) -> bool:
        return bool(self.signature_a) and bool(self.signature_b)

    def verify(self, public_a: PublicKey, public_b: PublicKey) -> bool:
        """Both signatures must cover this exact state."""
        if not self.fully_signed():
            return False
        digest = self.signing_digest()
        try:
            sig_a = Signature.from_bytes(self.signature_a)
            sig_b = Signature.from_bytes(self.signature_b)
        except CryptoError:
            return False
        return public_a.verify(digest, sig_a) and public_b.verify(digest, sig_b)


@dataclass
class SettlementRecord:
    """What ultimately reaches the ledger for one channel."""

    channel_id: str
    final_balances: Dict[str, int]
    final_version: int
    cooperative: bool
    disputed: bool = False
    onchain_txs: int = 2  # open + close (a dispute adds one)


class StateChannel:
    """A two-party channel with off-chain updates and on-chain settlement."""

    DISPUTE_WINDOW_S = 60.0

    def __init__(
        self,
        channel_id: str,
        party_a: KeyPair,
        party_b: KeyPair,
        deposit_a: int,
        deposit_b: int,
    ):
        if deposit_a < 0 or deposit_b < 0:
            raise ValidationError("deposits must be non-negative")
        if party_a.address == party_b.address:
            raise ValidationError("a channel needs two distinct parties")
        self.channel_id = channel_id
        self.party_a = party_a
        self.party_b = party_b
        self.capacity = deposit_a + deposit_b
        self.updates_exchanged = 0
        self._closed: Optional[SettlementRecord] = None
        self._pending_close: Optional[Tuple[ChannelState, float]] = None
        initial = ChannelState(
            channel_id=channel_id,
            version=0,
            balances={party_a.address: deposit_a, party_b.address: deposit_b},
        )
        initial = initial.signed_by(party_a, True).signed_by(party_b, False)
        self.latest = initial

    # -- state queries ------------------------------------------------------
    @property
    def is_closed(self) -> bool:
        return self._closed is not None

    def balance_of(self, address: str) -> int:
        return self.latest.balances.get(address, 0)

    # -- off-chain updates ----------------------------------------------------
    def propose_update(self, payer: KeyPair, amount: int) -> ChannelState:
        """Pay ``amount`` from ``payer`` to the counterparty, off chain.

        Returns the new fully-signed state.  Raises on overdraft, closure,
        or a non-member payer.  In a real deployment each side signs
        independently; here both keys are in-process, so the handshake is
        collapsed (the signatures are still real and checked).
        """
        if self.is_closed:
            raise ChainError("channel is closed")
        if self._pending_close is not None:
            raise ChainError("channel close is pending; no further updates")
        if payer.address not in self.latest.balances:
            raise ValidationError("payer is not a channel member")
        if amount <= 0:
            raise ValidationError("payment amount must be positive")
        if self.latest.balances[payer.address] < amount:
            raise ChainError("insufficient channel balance")
        payee = next(
            address for address in self.latest.balances if address != payer.address
        )
        new_balances = dict(self.latest.balances)
        new_balances[payer.address] -= amount
        new_balances[payee] += amount
        state = ChannelState(
            channel_id=self.channel_id,
            version=self.latest.version + 1,
            balances=new_balances,
        )
        state = state.signed_by(self.party_a, True).signed_by(self.party_b, False)
        if not state.verify(self.party_a.public, self.party_b.public):
            raise CryptoError("channel state failed signature verification")
        self.latest = state
        self.updates_exchanged += 1
        return state

    # -- settlement ---------------------------------------------------------
    def close_cooperative(self) -> SettlementRecord:
        """Both parties sign off; the final state settles immediately."""
        if self.is_closed:
            raise ChainError("channel already closed")
        self._closed = SettlementRecord(
            channel_id=self.channel_id,
            final_balances=dict(self.latest.balances),
            final_version=self.latest.version,
            cooperative=True,
        )
        return self._closed

    def start_unilateral_close(
        self, claimed_state: ChannelState, now_s: float
    ) -> None:
        """One party publishes a (possibly stale) state; a window opens."""
        if self.is_closed:
            raise ChainError("channel already closed")
        if claimed_state.channel_id != self.channel_id:
            raise ValidationError("state belongs to a different channel")
        if not claimed_state.verify(self.party_a.public, self.party_b.public):
            raise CryptoError("claimed state is not fully signed")
        if sum(claimed_state.balances.values()) != self.capacity:
            raise ValidationError("claimed state does not conserve capacity")
        self._pending_close = (claimed_state, now_s)

    def dispute(self, newer_state: ChannelState, now_s: float) -> None:
        """Counterparty presents a strictly newer fully-signed state."""
        if self._pending_close is None:
            raise ChainError("no close in progress")
        pending, opened_at = self._pending_close
        if now_s > opened_at + self.DISPUTE_WINDOW_S:
            raise ChainError("dispute window has elapsed")
        if not newer_state.verify(self.party_a.public, self.party_b.public):
            raise CryptoError("dispute state is not fully signed")
        if newer_state.version <= pending.version:
            raise ValidationError("dispute requires a strictly newer state")
        self._pending_close = (newer_state, opened_at)

    def finalize_close(self, now_s: float) -> SettlementRecord:
        """After the window, the highest-version presented state settles."""
        if self._pending_close is None:
            raise ChainError("no close in progress")
        state, opened_at = self._pending_close
        if now_s < opened_at + self.DISPUTE_WINDOW_S:
            raise ChainError("dispute window still open")
        disputed = state.version != self.latest.version or state is not self.latest
        self._closed = SettlementRecord(
            channel_id=self.channel_id,
            final_balances=dict(state.balances),
            final_version=state.version,
            cooperative=False,
            disputed=state.version > 0 and disputed,
            onchain_txs=3,  # open + close-start + finalize
        )
        self._pending_close = None
        return self._closed

    # -- accounting ----------------------------------------------------------
    def ledger_footprint(self) -> Dict[str, int]:
        """On-chain txs vs off-chain updates (E13's headline numbers)."""
        record = self._closed
        return {
            "offchain_updates": self.updates_exchanged,
            "onchain_txs": record.onchain_txs if record else 1,
        }
