"""Optimistic parallel block execution from static read/write sets.

Serial block execution applies transactions one after another, which wastes
the multi-core budget the paper's transformed architecture is built around.
This module executes a block's transactions *optimistically in parallel*
while guaranteeing a state root and receipt list **bit-identical** to the
serial order:

1. **Derive.**  Each transaction's storage read/write set is derived
   statically — transfers from their sender/recipient/nonce account keys,
   contract calls by specializing the per-method templates of
   ``repro.analysis.rwsets`` with the call's arguments.  A transaction
   whose footprint cannot be proven (deploys, computed keys, unresolvable
   arguments) is *unknown* and acts as a serialization barrier.

2. **Plan.**  A conflict graph over the derived sets is levelized into
   *waves*: transaction *t* lands one level after the deepest earlier
   transaction it conflicts with (read-write, write-write, write-read, or
   prefix-scan overlap — same-sender chains always serialize because every
   transaction reads and writes its sender's account/nonce key).  Unknown
   transactions get a singleton wave all later transactions must follow.

3. **Speculate.**  Each wave's transactions execute concurrently on a
   ``repro.parallel`` backend, each against its own recording overlay forked
   from the wave-base state (which already contains every earlier wave's
   commits).  The *process* backend ships each worker a pruned snapshot
   covering exactly the transaction's derived footprint, which is what makes
   shipping state affordable.  Overlays record every key actually read.

4. **Validate and commit, in canonical order.**  A speculative result
   commits only if its *observed* reads are disjoint from the writes
   committed by earlier same-wave transactions (and, on the process
   backend, fully covered by the shipped snapshot); otherwise the
   transaction re-executes serially at its commit point.  Because the
   derived sets of non-``unknown`` methods are a sound over-approximation
   (see ``repro.analysis.rwsets``), a transaction never conflicts with one
   scheduled in an *earlier* wave; the scheduler still cross-checks that
   invariant at commit time and, should a derivation bug ever break it,
   discards the whole overlay and re-executes the block serially — so
   serial-equivalence never rests on the static analysis being right.

This module is imported lazily from ``repro.chain`` (PEP 562) because it
pulls in ``repro.analysis`` → ``repro.contracts``, which themselves import
``repro.chain`` submodules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.rwsets import MethodRWSet, read_write_sets
from repro.chain.executor import ExecutionContext, Executor, Receipt
from repro.chain.state import ACCOUNT_PREFIX, StateDB, StateOverlay
from repro.chain.transactions import TX_CALL, TX_TRANSFER, Transaction
from repro.common.errors import ChainError
from repro.common.hashing import sha256_hex
from repro.contracts.runtime import META_SLOT, STORAGE_PREFIX
from repro.obs.tracer import trace_span
from repro.parallel.executor import TaskFailure, TaskSpec, make_executor
from repro.sim.metrics import current_metrics

_SNAP_MISSING = object()


@dataclass(frozen=True)
class TxAccess:
    """Statically derived storage footprint of one transaction.

    ``unknown=True`` means the footprint could not be proven; the scheduler
    treats such a transaction as conflicting with everything (a wave
    barrier executed serially).
    """

    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    read_prefixes: FrozenSet[str] = frozenset()
    unknown: bool = False


def _account_key(address: str) -> str:
    return f"{ACCOUNT_PREFIX}/{address}"


def _slot_key(contract_id: Any, slot: str) -> str:
    return StateDB.contract_key(contract_id, STORAGE_PREFIX + slot)


def derive_tx_access(
    state: StateDB,
    tx: Transaction,
    rwset_cache: Optional[Dict[str, Dict[str, MethodRWSet]]] = None,
    contract_may_appear: bool = False,
) -> TxAccess:
    """Derive ``tx``'s storage footprint against the deployed code in ``state``.

    Every transaction reads *and* writes its sender's account key (the nonce
    check and bump), which is what serializes same-sender nonce chains.
    Transfers add the recipient's account key.  Calls resolve the deployed
    method's slot templates with the call arguments; deploys and anything
    unresolvable are ``unknown``.  ``rwset_cache`` (keyed by source digest)
    amortizes template derivation across blocks.

    ``contract_may_appear=True`` marks calls to a contract *absent from*
    ``state`` as unknown instead of cheap-failure: the scheduler sets it for
    every transaction after a block's first barrier, because a deploy
    earlier in the same block may create the contract mid-block.
    """
    sender_key = _account_key(tx.sender)
    if tx.kind == TX_TRANSFER:
        keys = {sender_key}
        to = tx.payload.get("to")
        if isinstance(to, str):
            keys.add(_account_key(to))
        frozen = frozenset(keys)
        return TxAccess(reads=frozen, writes=frozen)
    if tx.kind != TX_CALL:
        return TxAccess(unknown=True)  # deploys, unknown kinds: barrier
    contract = tx.payload.get("contract", "")
    method = tx.payload.get("method", "")
    args = tx.payload.get("args", {}) or {}
    meta_key = StateDB.contract_key(contract, META_SLOT)
    base_reads = frozenset({sender_key, meta_key})
    base_writes = frozenset({sender_key})
    meta = state.get(meta_key)
    if not isinstance(meta, dict):
        if contract_may_appear:
            # An earlier transaction in this block (a deploy barrier) may
            # create the contract, so "call fails cheaply" cannot be
            # assumed and the true footprint is unknowable pre-execution.
            return TxAccess(unknown=True)
        # Unknown contract: the call fails after reading only the metadata
        # slot and bumping the nonce.
        return TxAccess(reads=base_reads, writes=base_writes)
    source = meta.get("source", "")
    method_sets = _rwsets_for(source, rwset_cache)
    method_set = method_sets.get(method) if isinstance(method, str) else None
    if method_set is None:
        # Missing/private method: the VM rejects the call before any
        # storage operation, so the footprint is just metadata + nonce.
        return TxAccess(reads=base_reads, writes=base_writes)
    if not isinstance(args, dict):
        return TxAccess(unknown=True)
    resolved = method_set.resolve(args)
    if resolved is None:
        return TxAccess(unknown=True)
    return TxAccess(
        reads=base_reads | {_slot_key(contract, s) for s in resolved.reads},
        writes=base_writes | {_slot_key(contract, s) for s in resolved.writes},
        read_prefixes=frozenset(
            _slot_key(contract, p) for p in resolved.read_prefixes
        ),
    )


def _rwsets_for(
    source: str,
    cache: Optional[Dict[str, Dict[str, MethodRWSet]]],
) -> Dict[str, MethodRWSet]:
    if cache is None:
        return read_write_sets(source)
    key = sha256_hex(source.encode("utf-8"))
    sets = cache.get(key)
    if sets is None:
        sets = read_write_sets(source)
        cache[key] = sets
    return sets


def plan_waves(accesses: Sequence[TxAccess]) -> List[List[int]]:
    """Levelize transactions into waves of pairwise non-conflicting indexes.

    Incremental single pass: a transaction's level is one past the deepest
    earlier transaction it conflicts with.  Unknown transactions become
    singleton barrier waves.  Within each wave, indexes stay in canonical
    order (the commit order).
    """
    levels: List[int] = []
    writer_level: Dict[str, int] = {}
    reader_level: Dict[str, int] = {}
    prefix_level: Dict[str, int] = {}
    barrier = 0
    deepest = 0
    for access in accesses:
        if access.unknown:
            level = deepest + 1
            barrier = level
        else:
            level = barrier + 1
            for key in access.reads:
                level = max(level, writer_level.get(key, 0) + 1)
            for key in access.writes:
                level = max(
                    level,
                    writer_level.get(key, 0) + 1,
                    reader_level.get(key, 0) + 1,
                )
                for prefix, depth in prefix_level.items():
                    if key.startswith(prefix):
                        level = max(level, depth + 1)
            for prefix in access.read_prefixes:
                for key, depth in writer_level.items():
                    if key.startswith(prefix):
                        level = max(level, depth + 1)
            for key in access.reads:
                reader_level[key] = max(reader_level.get(key, 0), level)
            for key in access.writes:
                writer_level[key] = max(writer_level.get(key, 0), level)
            for prefix in access.read_prefixes:
                prefix_level[prefix] = max(prefix_level.get(prefix, 0), level)
        levels.append(level)
        deepest = max(deepest, level)
    waves: Dict[int, List[int]] = {}
    for index, level in enumerate(levels):
        waves.setdefault(level, []).append(index)
    return [waves[level] for level in sorted(waves)]


class _RecordingOverlay(StateOverlay):
    """Overlay that records every key (and prefix) actually read.

    Observed reads are what commit-time validation compares against earlier
    commits — the runtime ground truth the static sets only approximate.
    Deletes record as reads too: a delete's effect depends on whether the
    key existed, so an earlier same-wave write to it must invalidate the
    speculation.
    """

    def __init__(self, parent: StateDB):
        super().__init__(parent)
        self.observed_reads: Set[str] = set()
        self.observed_prefixes: Set[str] = set()

    def get(self, key: str, default: Any = None) -> Any:
        self.observed_reads.add(key)
        return super().get(key, default)

    def contains(self, key: str) -> bool:
        self.observed_reads.add(key)
        return super().contains(key)

    def delete(self, key: str) -> None:
        self.observed_reads.add(key)
        super().delete(key)

    def keys_with_prefix(self, prefix: str) -> List[str]:
        self.observed_prefixes.add(prefix)
        return super().keys_with_prefix(prefix)


@dataclass
class _SpecOutcome:
    """One transaction's speculative effect, as plain shippable data."""

    receipt: Receipt
    writes: Dict[str, Any]
    deletes: List[str]
    observed_reads: Set[str]
    observed_prefixes: Set[str]


def _speculate(
    executor: Executor,
    base: StateDB,
    tx: Transaction,
    context: ExecutionContext,
) -> _SpecOutcome:
    """Execute one transaction on a recording overlay and harvest its delta."""
    overlay = _RecordingOverlay(base)
    receipt = executor.apply(overlay, tx, context)
    writes, deletes = overlay.local_delta()
    return _SpecOutcome(
        receipt=receipt,
        writes=writes,
        deletes=deletes,
        observed_reads=set(overlay.observed_reads),
        observed_prefixes=set(overlay.observed_prefixes),
    )


# Per-process executor instances for the process backend, keyed by executor
# class (shipped by reference, so it must be constructible with no
# arguments).  Reusing one instance keeps the worker's compile cache warm
# across tasks and blocks.
_WORKER_EXECUTORS: Dict[type, Executor] = {}


def _speculate_remote(
    executor_cls: type,
    tx: Transaction,
    snapshot: Dict[str, Any],
    context: ExecutionContext,
) -> _SpecOutcome:
    """Process-backend task: rebuild a pruned state and speculate on it."""
    executor = _WORKER_EXECUTORS.get(executor_cls)
    if executor is None:
        executor = executor_cls()
        _WORKER_EXECUTORS[executor_cls] = executor
    return _speculate(executor, StateDB(snapshot), tx, context)


def _build_snapshot(
    state: StateDB, access: TxAccess
) -> Tuple[Dict[str, Any], FrozenSet[str]]:
    """Prune ``state`` down to a transaction's derived footprint.

    Returns ``(snapshot, universe)``: the snapshot holds the covered keys
    that exist (shipped by reference — the process pool's pickling is the
    copy boundary), while the universe is every *covered* key, present or
    absent.  Coverage validation must use the universe: a key inside it but
    missing from the snapshot is genuinely absent in ``state``, so the
    worker seeing "no value" is correct.  Prefix reads ship every key
    currently under the prefix.
    """
    universe = set(access.reads) | set(access.writes)
    for prefix in access.read_prefixes:
        universe.update(state.keys_with_prefix(prefix))
    snapshot: Dict[str, Any] = {}
    for key in universe:
        value = state.get(key, _SNAP_MISSING)
        if value is not _SNAP_MISSING:
            snapshot[key] = value
    return snapshot, frozenset(universe)


def _covered(
    outcome: _SpecOutcome,
    shipped_keys: FrozenSet[str],
    shipped_prefixes: FrozenSet[str],
) -> bool:
    """Did the pruned snapshot cover everything the worker actually read?

    A read outside the shipped universe saw "absent" where the real state
    may have a value, so the speculation is untrustworthy.
    """
    for key in outcome.observed_reads:
        if key not in shipped_keys and not any(
            key.startswith(p) for p in shipped_prefixes
        ):
            return False
    for prefix in outcome.observed_prefixes:
        if not any(prefix.startswith(p) for p in shipped_prefixes):
            return False
    return True


class _OrderingViolation(ChainError):
    """A commit-time cross-wave check failed; the block must rerun serially."""


class BlockScheduler:
    """Wave-based optimistic parallel executor for whole blocks.

    Owns a reusable ``repro.parallel`` worker pool (``thread``, ``process``,
    or ``serial`` — the last exercises the full speculate/validate path
    without concurrency, useful as a reference).  ``executor`` must follow
    the chain ``Executor`` protocol; for the process backend its *class* is
    shipped to workers and must be constructible with no arguments.

    Not thread-safe: one scheduler serves one node's block pipeline.
    """

    def __init__(
        self,
        executor: Executor,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        min_wave_size: int = 2,
    ):
        self.executor = executor
        self.backend = backend
        self.min_wave_size = max(2, min_wave_size)
        self._pool = make_executor(backend, max_workers)
        self._rwset_cache: Dict[str, Dict[str, MethodRWSet]] = {}
        self.stats: Dict[str, int] = {
            "blocks": 0,
            "txs": 0,
            "txs_speculated": 0,
            "txs_parallel_committed": 0,
            "conflicts": 0,
            "serial_fallbacks": 0,
            "unknown_txs": 0,
            "waves": 0,
            "block_aborts": 0,
        }

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self) -> None:
        self._pool.shutdown()

    def __enter__(self) -> "BlockScheduler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- execution ---------------------------------------------------------
    def execute_block(
        self,
        base_state: StateDB,
        transactions: Sequence[Transaction],
        context: ExecutionContext,
        validate: bool = False,
    ) -> Tuple[StateOverlay, List[Receipt]]:
        """Execute a block against an overlay of ``base_state``.

        Drop-in replacement for the serial fork-and-apply loop: returns the
        same ``(overlay, receipts)`` pair with a bit-identical state root
        and receipt list.  ``validate=True`` structurally validates every
        transaction up front (the gateway path does this; consensus nodes
        validate on gossip ingress instead).
        """
        if validate:
            for tx in transactions:
                tx.validate()
        metrics = current_metrics()
        with trace_span(
            "chain.schedule_block",
            height=context.block_height,
            node=context.node_name,
            txs=len(transactions),
            backend=self.backend,
        ) as span:
            accesses: List[TxAccess] = []
            barrier_seen = False
            for tx in transactions:
                access = derive_tx_access(
                    base_state,
                    tx,
                    self._rwset_cache,
                    contract_may_appear=barrier_seen,
                )
                barrier_seen = barrier_seen or access.unknown
                accesses.append(access)
            waves = plan_waves(accesses)
            try:
                overlay, receipts = self._run_waves(
                    base_state, transactions, accesses, waves, context, span
                )
            except _OrderingViolation:
                # Static derivation let an actual cross-wave conflict
                # through (a deriver bug, not a user-visible condition):
                # discard everything and fall back to plain serial.
                self.stats["block_aborts"] += 1
                metrics.add("parallel_exec_block_aborts")
                span.set_attr("aborted", True)
                overlay, receipts = self._serial_block(
                    base_state, transactions, context
                )
            self.stats["blocks"] += 1
            self.stats["txs"] += len(transactions)
            self.stats["waves"] += len(waves)
            unknown = sum(1 for access in accesses if access.unknown)
            self.stats["unknown_txs"] += unknown
            metrics.add("parallel_exec_blocks")
            metrics.add("parallel_exec_txs", len(transactions))
            metrics.add("parallel_exec_waves", len(waves))
            span.set_attr("waves", len(waves))
            span.set_attr("unknown_txs", unknown)
        return overlay, receipts

    def _serial_block(
        self,
        base_state: StateDB,
        transactions: Sequence[Transaction],
        context: ExecutionContext,
    ) -> Tuple[StateOverlay, List[Receipt]]:
        overlay = base_state.fork()
        receipts = [
            self.executor.apply(overlay, tx, context) for tx in transactions
        ]
        return overlay, receipts

    def _run_waves(
        self,
        base_state: StateDB,
        transactions: Sequence[Transaction],
        accesses: Sequence[TxAccess],
        waves: Sequence[Sequence[int]],
        context: ExecutionContext,
        span: Any,
    ) -> Tuple[StateOverlay, List[Receipt]]:
        metrics = current_metrics()
        state = base_state.fork()
        receipts: List[Optional[Receipt]] = [None] * len(transactions)
        # Highest committed writer index per key, across all waves — the
        # cross-wave ordering cross-check (see _check_ordering).
        writer_index: Dict[str, int] = {}
        parallel_committed = conflicts = fallbacks = speculated = 0
        try:
            for wave in waves:
                pooled = (
                    len(wave) >= self.min_wave_size
                    and not any(accesses[i].unknown for i in wave)
                )
                outcomes: Dict[int, Any] = {}
                shipped: Dict[int, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
                if pooled:
                    speculated += len(wave)
                    outcomes = self._speculate_wave(
                        state, transactions, accesses, wave, context, shipped
                    )
                # Canonical-order commit with validation.
                wave_writes: Set[str] = set()
                for index in wave:
                    outcome = outcomes.get(index)
                    ok = outcome is not None and not isinstance(
                        outcome, TaskFailure
                    )
                    if ok and index in shipped:
                        keys, prefixes = shipped[index]
                        ok = _covered(outcome, keys, prefixes)
                    if ok and _wave_conflict(outcome, wave_writes):
                        ok = False
                        conflicts += 1
                    if not ok:
                        if outcome is not None:  # a speculation was discarded
                            fallbacks += 1
                        outcome = _speculate(
                            self.executor, state, transactions[index], context
                        )
                    elif pooled:
                        parallel_committed += 1
                    self._check_ordering(index, outcome, writer_index)
                    self._commit(state, outcome, index, writer_index)
                    wave_writes.update(outcome.writes)
                    wave_writes.update(outcome.deletes)
                    receipts[index] = outcome.receipt
        except _OrderingViolation:
            state.discard()
            raise
        self.stats["txs_speculated"] += speculated
        self.stats["txs_parallel_committed"] += parallel_committed
        self.stats["conflicts"] += conflicts
        self.stats["serial_fallbacks"] += fallbacks
        metrics.add("parallel_exec_speculated", speculated)
        metrics.add("parallel_exec_committed", parallel_committed)
        metrics.add("parallel_exec_conflicts", conflicts)
        metrics.add("parallel_exec_serial_fallbacks", fallbacks)
        span.set_attr("txs_parallel_committed", parallel_committed)
        span.set_attr("conflicts", conflicts)
        span.set_attr("serial_fallbacks", fallbacks)
        return state, receipts  # type: ignore[return-value]

    def _speculate_wave(
        self,
        state: StateDB,
        transactions: Sequence[Transaction],
        accesses: Sequence[TxAccess],
        wave: Sequence[int],
        context: ExecutionContext,
        shipped: Dict[int, Tuple[FrozenSet[str], FrozenSet[str]]],
    ) -> Dict[int, Any]:
        tasks: List[TaskSpec] = []
        if self.backend == "process":
            for index in wave:
                access = accesses[index]
                snapshot, universe = _build_snapshot(state, access)
                shipped[index] = (universe, access.read_prefixes)
                tasks.append(
                    TaskSpec(
                        key=transactions[index].tx_id,
                        fn=_speculate_remote,
                        args=(
                            type(self.executor),
                            transactions[index],
                            snapshot,
                            context,
                        ),
                    )
                )
        else:
            tasks = [
                TaskSpec(
                    key=transactions[index].tx_id,
                    fn=_speculate,
                    args=(self.executor, state, transactions[index], context),
                )
                for index in wave
            ]
        results = self._pool.map_tasks(tasks)
        return dict(zip(wave, results))

    @staticmethod
    def _check_ordering(
        index: int,
        outcome: _SpecOutcome,
        writer_index: Dict[str, int],
    ) -> None:
        """Cross-wave invariant: nothing tx ``index`` touched was committed
        by a *later-index* transaction in an earlier wave.

        The sound over-approximation of the derived sets makes this
        impossible; if it ever fires, re-execution at the commit point
        cannot help (the stale write is already in the state), so the whole
        block aborts to the serial path.
        """
        for key in outcome.observed_reads:
            if writer_index.get(key, -1) > index:
                raise _OrderingViolation(key)
        for key in list(outcome.writes) + outcome.deletes:
            if writer_index.get(key, -1) > index:
                raise _OrderingViolation(key)
        for prefix in outcome.observed_prefixes:
            for key, writer in writer_index.items():
                if writer > index and key.startswith(prefix):
                    raise _OrderingViolation(key)

    @staticmethod
    def _commit(
        state: StateDB,
        outcome: _SpecOutcome,
        index: int,
        writer_index: Dict[str, int],
    ) -> None:
        for key in outcome.deletes:
            state.delete(key)
            writer_index[key] = max(writer_index.get(key, -1), index)
        for key in sorted(outcome.writes):
            state.set(key, outcome.writes[key])
            writer_index[key] = max(writer_index.get(key, -1), index)


def _wave_conflict(outcome: _SpecOutcome, wave_writes: Set[str]) -> bool:
    """Did this speculation read anything an earlier same-wave commit wrote?"""
    if not wave_writes:
        return False
    if not outcome.observed_reads.isdisjoint(wave_writes):
        return True
    for prefix in outcome.observed_prefixes:
        for key in wave_writes:
            if key.startswith(prefix):
                return True
    return False
