"""Blockchain substrate: transactions, blocks, state, mempool, chain store."""

from repro.chain.blocks import Block, BlockHeader, build_block, make_genesis
from repro.chain.channels import ChannelState, SettlementRecord, StateChannel
from repro.chain.executor import (
    BASE_TX_GAS,
    ContractEvent,
    ExecutionContext,
    Executor,
    Receipt,
    TransferExecutor,
    apply_block_transactions,
    speculate_block_transactions,
)
from repro.chain.mempool import AdmissionResult, Mempool, MempoolConfig
from repro.chain.state import (
    StateAliasingError,
    StateDB,
    StateOverlay,
    set_debug_aliasing,
)
from repro.chain.store import ChainStore
from repro.chain.transactions import (
    DEFAULT_GAS_LIMIT,
    TX_CALL,
    TX_DEPLOY,
    TX_TRANSFER,
    Transaction,
    make_call,
    make_deploy,
    make_transfer,
)

# The parallel block scheduler is exported lazily (PEP 562): it imports
# repro.analysis -> repro.contracts, which import chain submodules, so an
# eager import here would cycle when repro.contracts is imported first.
_SCHEDULER_EXPORTS = frozenset(
    {"BlockScheduler", "TxAccess", "derive_tx_access", "plan_waves"}
)


def __getattr__(name: str):
    if name in _SCHEDULER_EXPORTS:
        from repro.chain import scheduler

        return getattr(scheduler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BASE_TX_GAS",
    "Block",
    "BlockHeader",
    "BlockScheduler",
    "TxAccess",
    "derive_tx_access",
    "plan_waves",
    "ChainStore",
    "ChannelState",
    "SettlementRecord",
    "StateChannel",
    "ContractEvent",
    "DEFAULT_GAS_LIMIT",
    "AdmissionResult",
    "ExecutionContext",
    "Executor",
    "Mempool",
    "MempoolConfig",
    "Receipt",
    "StateAliasingError",
    "StateDB",
    "StateOverlay",
    "TX_CALL",
    "TX_DEPLOY",
    "TX_TRANSFER",
    "Transaction",
    "TransferExecutor",
    "apply_block_transactions",
    "speculate_block_transactions",
    "set_debug_aliasing",
    "build_block",
    "make_call",
    "make_deploy",
    "make_genesis",
    "make_transfer",
]
