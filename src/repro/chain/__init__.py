"""Blockchain substrate: transactions, blocks, state, mempool, chain store."""

from repro.chain.blocks import Block, BlockHeader, build_block, make_genesis
from repro.chain.channels import ChannelState, SettlementRecord, StateChannel
from repro.chain.executor import (
    BASE_TX_GAS,
    ContractEvent,
    ExecutionContext,
    Executor,
    Receipt,
    TransferExecutor,
    apply_block_transactions,
    speculate_block_transactions,
)
from repro.chain.mempool import Mempool
from repro.chain.state import (
    StateAliasingError,
    StateDB,
    StateOverlay,
    set_debug_aliasing,
)
from repro.chain.store import ChainStore
from repro.chain.transactions import (
    DEFAULT_GAS_LIMIT,
    TX_CALL,
    TX_DEPLOY,
    TX_TRANSFER,
    Transaction,
    make_call,
    make_deploy,
    make_transfer,
)

__all__ = [
    "BASE_TX_GAS",
    "Block",
    "BlockHeader",
    "ChainStore",
    "ChannelState",
    "SettlementRecord",
    "StateChannel",
    "ContractEvent",
    "DEFAULT_GAS_LIMIT",
    "ExecutionContext",
    "Executor",
    "Mempool",
    "Receipt",
    "StateAliasingError",
    "StateDB",
    "StateOverlay",
    "TX_CALL",
    "TX_DEPLOY",
    "TX_TRANSFER",
    "Transaction",
    "TransferExecutor",
    "apply_block_transactions",
    "speculate_block_transactions",
    "set_debug_aliasing",
    "build_block",
    "make_call",
    "make_deploy",
    "make_genesis",
    "make_transfer",
]
