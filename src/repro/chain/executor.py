"""Transaction execution interface.

The chain layer defines *what* a transaction is; this module defines *how*
one is applied to state.  The base :class:`TransferExecutor` handles value
transfers and nonce bookkeeping; the contract VM (``repro.contracts``)
plugs in as a richer executor via the same protocol, keeping the chain
substrate independent of the contract layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Protocol, Tuple

from repro.chain.state import StateDB, StateOverlay
from repro.chain.transactions import TX_TRANSFER, Transaction
from repro.common.errors import ChainError
from repro.obs.tracer import trace_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see scheduler.py)
    from repro.chain.scheduler import BlockScheduler


@dataclass
class ContractEvent:
    """Event emitted during contract execution (Fig. 3's monitor feed)."""

    contract_id: str
    name: str
    data: Dict[str, Any]
    tx_id: str = ""
    block_height: int = -1


@dataclass
class Receipt:
    """Result of applying one transaction."""

    tx_id: str
    success: bool
    gas_used: int = 0
    output: Any = None
    error: str = ""
    events: List[ContractEvent] = field(default_factory=list)


class Executor(Protocol):
    """Applies a validated transaction to state, returning a receipt."""

    def apply(self, state: StateDB, tx: Transaction, context: "ExecutionContext") -> Receipt:
        ...


@dataclass
class ExecutionContext:
    """Ambient data available to executing transactions."""

    block_height: int = 0
    timestamp_ms: int = 0
    proposer: str = ""
    node_name: str = ""


BASE_TX_GAS = 21_000


class TransferExecutor:
    """Minimal executor: nonces + value transfers; rejects contract txs."""

    def apply(
        self, state: StateDB, tx: Transaction, context: ExecutionContext
    ) -> Receipt:
        expected_nonce = state.nonce(tx.sender)
        if tx.nonce != expected_nonce:
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                error=f"bad nonce: expected {expected_nonce}, got {tx.nonce}",
            )
        state.bump_nonce(tx.sender)
        if tx.kind != TX_TRANSFER:
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                gas_used=BASE_TX_GAS,
                error=f"TransferExecutor cannot execute {tx.kind!r} transactions",
            )
        to = tx.payload.get("to")
        amount = tx.payload.get("amount")
        if not isinstance(to, str) or not isinstance(amount, int) or amount < 0:
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                gas_used=BASE_TX_GAS,
                error="malformed transfer payload",
            )
        try:
            state.debit(tx.sender, amount)
        except ChainError as exc:
            return Receipt(
                tx_id=tx.tx_id, success=False, gas_used=BASE_TX_GAS, error=str(exc)
            )
        state.credit(to, amount)
        return Receipt(tx_id=tx.tx_id, success=True, gas_used=BASE_TX_GAS)


def apply_block_transactions(
    executor: Executor,
    state: StateDB,
    transactions: List[Transaction],
    context: ExecutionContext,
) -> List[Receipt]:
    """Apply a block's transactions in order.

    Each transaction executes inside a state snapshot; a failed transaction
    still consumes its nonce (mirroring Ethereum semantics) but its other
    writes are rolled back by the executor itself.  Structural invalidity
    (bad signature) raises — such a transaction must never reach execution.
    """
    with trace_span(
        "chain.apply_block",
        height=context.block_height,
        node=context.node_name,
        txs=len(transactions),
    ) as span:
        receipts = []
        for tx in transactions:
            tx.validate()
            receipts.append(executor.apply(state, tx, context))
        span.set_attr("gas", sum(receipt.gas_used for receipt in receipts))
    return receipts


def speculate_block_transactions(
    executor: Executor,
    base_state: StateDB,
    transactions: List[Transaction],
    context: ExecutionContext,
    scheduler: Optional["BlockScheduler"] = None,
) -> Tuple[StateOverlay, List[Receipt]]:
    """Execute a block's transactions against an overlay of ``base_state``.

    This is the copy-on-write path used for per-block execution on every
    consensus node: the base state is forked as an O(1) diff instead of
    being copied, so speculative execution of competing blocks over the
    same parent costs O(write-set) each.  The returned overlay can be kept
    (the block was adopted), discarded (the block lost), or
    ``flatten()``-ed into a standalone state at the canonical head.

    Forking freezes ``base_state`` against direct writes, but only for as
    long as the overlay is live: dropping the last reference to a losing
    overlay (or calling ``overlay.discard()`` for a deterministic release)
    unfreezes the base automatically.

    Passing a ``repro.chain.scheduler.BlockScheduler`` routes execution
    through optimistic parallel scheduling instead of the serial loop; the
    result (state root and receipts) is bit-identical either way.
    """
    if scheduler is not None:
        return scheduler.execute_block(
            base_state, transactions, context, validate=True
        )
    overlay = base_state.fork()
    receipts = apply_block_transactions(executor, overlay, transactions, context)
    return overlay, receipts
