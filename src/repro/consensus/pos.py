"""Proof of stake ("virtual mining", paper section I).

Winning probability is proportional to stake, with no hash grinding: for
each height, every staker draws a deterministic ticket
``H(parent_hash, height, staker)`` mapped to [0, 1); the effective score is
``-ln(ticket) / stake`` (the classic exponential-race transform), and the
*lowest* score proposes after a delay proportional to its score.  Because
tickets derive from the parent hash, every node computes the same winner
independently — consensus without duplicated hash work, which is exactly the
energy fix the paper attributes to PoS (while remaining duplicated in
contract execution, as E12 shows).
"""

from __future__ import annotations

import math
from typing import Dict

from repro.chain.blocks import Block
from repro.common.errors import ConsensusError
from repro.common.hashing import hash_value
from repro.consensus.base import ConsensusEngine, ProposalPlan
from repro.obs.tracer import trace_span


def _ticket(parent_hash: bytes, height: int, staker: str) -> float:
    """Deterministic uniform draw in (0, 1) for a staker at a height."""
    digest = hash_value(
        {"parent": parent_hash, "height": height, "staker": staker},
        allow_float=False,
    )
    value = int.from_bytes(digest, "big")
    return (value + 1) / float(2 ** 256 + 2)


class ProofOfStake(ConsensusEngine):
    """Stake-weighted virtual-mining lottery."""

    name = "pos"

    def __init__(self, stakes: Dict[str, int], round_time_s: float = 1.0):
        if not stakes or any(stake <= 0 for stake in stakes.values()):
            raise ConsensusError("all stakes must be positive")
        self.stakes = dict(stakes)
        self.round_time_s = round_time_s

    def score(self, parent: Block, height: int, staker: str) -> float:
        """Exponential-race score; the minimum across stakers wins."""
        stake = self.stakes.get(staker)
        if stake is None:
            return math.inf
        ticket = _ticket(parent.block_hash, height, staker)
        return -math.log(ticket) / stake

    def winner_at(self, parent: Block, height: int) -> str:
        return min(
            self.stakes, key=lambda staker: (self.score(parent, height, staker), staker)
        )

    def plan_proposal(
        self, node_name: str, parent: Block, rng_sample: float
    ) -> ProposalPlan:
        height = parent.height + 1
        if node_name not in self.stakes:
            return ProposalPlan(delay_s=None)
        if self.winner_at(parent, height) != node_name:
            return ProposalPlan(delay_s=None)
        # Delay scales with the winning score so block times vary naturally.
        total_stake = sum(self.stakes.values())
        delay = self.round_time_s * self.score(parent, height, node_name) * total_stake
        return ProposalPlan(delay_s=max(0.05, min(delay, 10 * self.round_time_s)))

    def seal(self, node_name: str, block: Block) -> Block:
        if node_name not in self.stakes:
            raise ConsensusError(f"{node_name} holds no stake")
        with trace_span("pos.seal", node=node_name, stake=self.stakes[node_name]):
            return block.with_consensus(
                {
                    "type": self.name,
                    "staker": node_name,
                    "stake": self.stakes[node_name],
                }
            )

    def verify(self, block: Block, parent: Block) -> bool:
        with trace_span("pos.verify") as span:
            proof = block.header.consensus
            staker = proof.get("staker")
            valid = (
                proof.get("type") == self.name
                and staker in self.stakes
                and self.winner_at(parent, block.height) == staker
            )
            span.set_attr("valid", valid)
        return valid
