"""Consensus engine interface.

An engine decides (a) when a given node may propose the next block, (b) what
proof it must attach, and (c) how other nodes verify that proof.  Three
engines are provided, matching the mechanisms the paper surveys in section I:
proof of work (the baseline whose duplicated hashing wastes energy), proof of
stake ("virtual mining", no hashing), and proof of authority (the permissioned
setting a hospital consortium would actually run).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.chain.blocks import Block


@dataclass
class ProposalPlan:
    """When and how a node should try to propose the next block.

    ``delay_s`` is simulation time until the proposal fires (None = this node
    never proposes at this height); ``hash_work`` is the number of hash
    attempts the proposal will burn (energy accounting, PoW only).
    """

    delay_s: Optional[float]
    hash_work: int = 0


class ConsensusEngine(ABC):
    """Strategy object plugged into :class:`repro.consensus.node.BlockchainNode`."""

    name = "abstract"

    @abstractmethod
    def plan_proposal(
        self, node_name: str, parent: Block, rng_sample: float
    ) -> ProposalPlan:
        """Schedule this node's proposal attempt on top of ``parent``."""

    @abstractmethod
    def seal(self, node_name: str, block: Block) -> Block:
        """Attach the consensus proof, returning the sealed block."""

    @abstractmethod
    def verify(self, block: Block, parent: Block) -> bool:
        """Check the proof on a received block."""

    def work_per_second(self, node_name: str) -> float:
        """Background hash work burned per second while racing (PoW only)."""
        return 0.0
