"""Proof of authority: rotating signed blocks from a validator set.

The permissioned consortium setting (hospitals + an FDA trusted node,
Figure 2).  Clique-style liveness: each height has an *in-turn* (primary)
proposer — ``validators[height % n]`` — who proposes after one block
interval; every other validator is a backup that proposes after a rank-
scaled delay, so the chain keeps moving when the primary is partitioned or
crashed.  The proof is the proposer's Schnorr signature over the mining
digest; any registered validator's signature verifies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.chain.blocks import Block
from repro.common.errors import ConsensusError
from repro.common.signatures import KeyPair, PublicKey, Signature
from repro.consensus.base import ConsensusEngine, ProposalPlan
from repro.obs.tracer import trace_span


class ProofOfAuthority(ConsensusEngine):
    """Rotating-primary authority consensus with backup proposers."""

    name = "poa"

    def __init__(
        self,
        validators: List[str],
        keypairs: Dict[str, KeyPair],
        block_interval_s: float = 1.0,
        backup_delay_factor: float = 2.0,
    ):
        if not validators:
            raise ConsensusError("validator set must not be empty")
        self.validators = list(validators)
        self.keypairs = dict(keypairs)
        self.block_interval_s = block_interval_s
        self.backup_delay_factor = backup_delay_factor
        # Address -> public key, for verification.
        self._addresses: Dict[str, PublicKey] = {
            name: kp.public for name, kp in self.keypairs.items()
        }

    def proposer_at(self, height: int) -> str:
        """The in-turn (primary) proposer for a height."""
        return self.validators[height % len(self.validators)]

    def rank_at(self, height: int, node_name: str) -> Optional[int]:
        """0 for the primary, 1..n-1 for backups, None for non-validators."""
        if node_name not in self.validators:
            return None
        index = self.validators.index(node_name)
        return (index - height) % len(self.validators)

    def plan_proposal(
        self, node_name: str, parent: Block, rng_sample: float
    ) -> ProposalPlan:
        rank = self.rank_at(parent.height + 1, node_name)
        if rank is None:
            return ProposalPlan(delay_s=None)
        # Primary fires after one interval; backup k waits k extra
        # backup_delay_factor intervals, so it only proposes when the
        # primary (and lower-rank backups) failed to deliver a block.
        delay = self.block_interval_s * (1 + self.backup_delay_factor * rank)
        return ProposalPlan(delay_s=delay)

    def seal(self, node_name: str, block: Block) -> Block:
        keypair = self.keypairs.get(node_name)
        if keypair is None or node_name not in self.validators:
            raise ConsensusError(f"{node_name} holds no authority key")
        with trace_span(
            "poa.seal",
            node=node_name,
            in_turn=self.proposer_at(block.height) == node_name,
        ):
            signature = keypair.sign(block.header.mining_digest())
        return block.with_consensus(
            {
                "type": self.name,
                "validator": node_name,
                "in_turn": self.proposer_at(block.height) == node_name,
                "signature": signature.to_bytes(),
            }
        )

    def verify(self, block: Block, parent: Block) -> bool:
        with trace_span("poa.verify") as span:
            valid = self._verify_inner(block)
            span.set_attr("valid", valid)
        return valid

    def _verify_inner(self, block: Block) -> bool:
        proof = block.header.consensus
        if proof.get("type") != self.name:
            return False
        validator = proof.get("validator")
        if validator not in self.validators:
            return False
        public = self._addresses.get(validator)
        raw = proof.get("signature")
        if public is None or not isinstance(raw, (bytes, bytearray)):
            return False
        try:
            signature = Signature.from_bytes(bytes(raw))
        except Exception:
            return False
        return public.verify(block.header.mining_digest(), signature)
