"""Proof-of-work difficulty retargeting.

Bitcoin-style adjustment: every ``window`` blocks, compare the actual time
the window took against ``target_block_time_s * window`` and move the
difficulty up or down (in whole bits, since our target is a power of two),
clamped to one bit per adjustment — the stabilizing mechanism that makes
"more miners" translate into "more energy" rather than "faster blocks"
(experiment E2's premise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chain.blocks import Block
from repro.common.errors import ConsensusError


@dataclass
class RetargetConfig:
    target_block_time_s: float = 10.0
    window: int = 8              # blocks per adjustment period
    min_bits: int = 4
    max_bits: int = 40


def next_difficulty_bits(
    current_bits: int,
    window_timestamps_ms: Sequence[int],
    config: Optional[RetargetConfig] = None,
) -> int:
    """Difficulty for the next period given the last window's timestamps.

    ``window_timestamps_ms`` must contain ``window + 1`` block timestamps
    (the fencepost block plus the window).  The adjustment is at most one
    bit per period: actual time under half the target doubles difficulty
    (+1 bit); over double the target halves it (-1 bit).
    """
    config = config or RetargetConfig()
    if not config.min_bits <= current_bits <= config.max_bits:
        raise ConsensusError(f"difficulty {current_bits} outside configured range")
    if len(window_timestamps_ms) < 2:
        return current_bits
    actual_s = (window_timestamps_ms[-1] - window_timestamps_ms[0]) / 1000.0
    expected_s = config.target_block_time_s * (len(window_timestamps_ms) - 1)
    if actual_s <= 0:
        return min(config.max_bits, current_bits + 1)
    ratio = actual_s / expected_s
    if ratio < 0.5:
        return min(config.max_bits, current_bits + 1)
    if ratio > 2.0:
        return max(config.min_bits, current_bits - 1)
    return current_bits


class DifficultySchedule:
    """Tracks difficulty over a chain of blocks."""

    def __init__(self, initial_bits: int, config: Optional[RetargetConfig] = None):
        self.config = config or RetargetConfig()
        if not self.config.min_bits <= initial_bits <= self.config.max_bits:
            raise ConsensusError("initial difficulty outside configured range")
        self.initial_bits = initial_bits

    def bits_at_height(self, height: int, chain: Sequence[Block]) -> int:
        """Difficulty for a block at ``height`` given the canonical chain.

        Recomputes period by period from genesis — O(height), fine at
        simulation scale and trivially deterministic across nodes.
        """
        window = self.config.window
        bits = self.initial_bits
        period_start = 0
        while period_start + window < height:
            timestamps = [
                chain[i].header.timestamp_ms
                for i in range(period_start, period_start + window + 1)
                if i < len(chain)
            ]
            if len(timestamps) < window + 1:
                break
            bits = next_difficulty_bits(bits, timestamps, self.config)
            period_start += window
        return bits
