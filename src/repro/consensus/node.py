"""A full blockchain node: mempool, gossip, mining/proposal loop, execution.

This implements the *un-transformed* commercial-blockchain behaviour the
paper starts from (section I): every transaction is broadcast to all
participants, every node re-executes every smart contract, and consensus
requires the whole network to agree on each ledger modification.  The
duplicated work is charged to the metrics registry per node, so experiments
can quantify exactly what the transformed architecture (``repro.core``)
saves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from repro.chain.blocks import Block, build_block
from repro.chain.executor import ContractEvent, ExecutionContext, Receipt
from repro.chain.mempool import (
    DUPLICATE,
    AdmissionResult,
    Mempool,
    MempoolConfig,
)
from repro.chain.state import StateDB
from repro.chain.store import ChainStore
from repro.chain.transactions import Transaction
from repro.common.errors import ValidationError
from repro.consensus.base import ConsensusEngine
from repro.obs.tracer import trace_span
from repro.contracts.runtime import ContractExecutor
from repro.sim.kernel import EventHandle, Kernel, Process
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Message, Network

EventSubscriber = Callable[[ContractEvent], None]


@dataclass
class NodeConfig:
    """Tunables for a blockchain node."""

    max_txs_per_block: int = 200
    mine_empty: bool = False
    rebroadcast_txs: bool = True
    rebroadcast_blocks: bool = True
    # Per-block states older than this many blocks below the head are
    # pruned, so state memory is bounded by chain *width* within the
    # window rather than chain *length*.  Longest-chain reorgs deeper than
    # the window cannot be re-validated (their parent states are gone);
    # 0 disables pruning.  Matches the fork-choice finality assumption of
    # ChainStore.  Caveat: states retained inside the window (the
    # canonical boundary and recent fork tips) may still reference pruned
    # ancestor *layers* through their copy-on-write parent chains until
    # they are collapsed or age out, so reclamation of a pruned layer can
    # lag by up to a window; the retained chain below the boundary is
    # bounded by state_collapse_interval layers (each the size of one
    # block's write-set) plus one shared collapsed base, so the lag is
    # bounded, never proportional to chain length.
    state_prune_window: int = 64
    # The window-boundary state is collapsed into a standalone base only
    # once its overlay chain is at least this deep, so the O(state-size)
    # collapse cost is paid once per interval — amortized
    # O(state/interval + write-set) per block — instead of rebuilding the
    # full state dict on every new head.  1 collapses on every block.
    state_collapse_interval: int = 16
    # Cap on the ChainStore orphan buffer (oldest-first eviction).
    max_orphan_blocks: int = 512
    # Optimistic parallel block execution (repro.chain.scheduler): derive
    # static read/write sets, execute non-conflicting transactions
    # concurrently, validate observed reads at commit.  Off by default —
    # results are bit-identical to serial execution either way, so this is
    # purely a throughput knob.  ``parallel_backend`` is one of "serial"
    # (full speculate/validate path without concurrency), "thread", or
    # "process" (real cores; the win for CPU-bound contract code).
    parallel_execution: bool = False
    parallel_backend: str = "thread"
    # Worker pool size (None = available cores) and the smallest wave worth
    # dispatching to the pool instead of executing inline.
    parallel_max_workers: Optional[int] = None
    parallel_min_wave_size: int = 2
    # Fee-market mempool policy (repro.chain.mempool.MempoolConfig): price
    # priority, replace-by-fee, capacity eviction, watermark shedding, and
    # per-account rate limiting.  None uses permissive defaults that admit
    # unfee'd development traffic FIFO-style.
    mempool: Optional[MempoolConfig] = None
    # Peer-to-peer settings (repro.p2p.P2PConfig).  When a P2PService is
    # attached, tx/block dissemination switches from the sim network's
    # full-body flood to announce-by-hash gossip with fetch-on-miss, and
    # missing ancestors are repaired by headers-first sync instead of
    # point get_block requests.  None keeps the legacy flood behaviour.
    p2p: Optional[Any] = None


class BlockchainNode(Process):
    """One participant in the medical blockchain network (Figure 2)."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        name: str,
        genesis: Block,
        genesis_state: StateDB,
        consensus: ConsensusEngine,
        executor: Optional[ContractExecutor] = None,
        metrics: Optional[MetricsRegistry] = None,
        config: Optional[NodeConfig] = None,
    ):
        super().__init__(kernel, name)
        self.network = network
        self.consensus = consensus
        self.executor = executor or ContractExecutor()
        self.metrics = metrics or MetricsRegistry()
        self.config = config or NodeConfig()
        self.store = ChainStore(genesis, max_orphans=self.config.max_orphan_blocks)
        self.mempool = Mempool(
            config=self.config.mempool,
            time_source=lambda: self.now,
            metrics=self.metrics,
            scope=name,
        )
        self._orphan_evictions_reported = 0
        self._states: Dict[str, StateDB] = {genesis.block_id: genesis_state.copy()}
        self._block_receipts: Dict[str, List[Receipt]] = {genesis.block_id: []}
        self._receipts_by_tx: Dict[str, Receipt] = {}
        self._seen_blocks: Set[str] = {genesis.block_id}
        # Blocks waiting for an ancestor we are back-filling via get_block.
        self._pending_blocks: Dict[str, List[Block]] = {}
        self._requested_blocks: Set[str] = set()
        self._emitted_blocks: Set[str] = {genesis.block_id}
        self._event_subscribers: List[EventSubscriber] = []
        self._tx_submit_times: Dict[str, float] = {}
        self._proposal_handle: Optional[EventHandle] = None
        self._round_start: Optional[float] = None
        self._started = False
        self._scheduler = None  # built lazily when parallel_execution is on
        self._p2p = None  # P2PService, attached via attach_p2p
        self.events: List[ContractEvent] = []
        network.register(name, self._on_message)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Begin participating in consensus."""
        self._started = True
        self._plan_round()

    def stop(self) -> None:
        self._started = False
        self._cancel_round()
        if self._scheduler is not None:
            self._scheduler.shutdown()
            self._scheduler = None

    def _block_scheduler(self):
        """The node's parallel block scheduler (lazy; owns a worker pool)."""
        if self._scheduler is None:
            from repro.chain.scheduler import BlockScheduler

            self._scheduler = BlockScheduler(
                self.executor,
                backend=self.config.parallel_backend,
                max_workers=self.config.parallel_max_workers,
                min_wave_size=self.config.parallel_min_wave_size,
            )
        return self._scheduler

    # -- public API --------------------------------------------------------
    @property
    def head(self) -> Block:
        return self.store.head

    @property
    def state(self) -> StateDB:
        """World state at the canonical head."""
        return self._states[self.store.head.block_id]

    def receipt(self, tx_id: str) -> Optional[Receipt]:
        return self._receipts_by_tx.get(tx_id)

    def subscribe_events(self, subscriber: EventSubscriber) -> None:
        """Register a contract-event callback (the monitor node hook, Fig. 3)."""
        self._event_subscribers.append(subscriber)

    def attach_p2p(self, service) -> None:
        """Route this node's dissemination through a ``P2PService``.

        Gossip becomes announce-by-hash (ids to ``fanout`` peers, bodies
        fetched once on miss) instead of the full-body network flood, and
        missing-ancestor repair goes through headers-first sync.
        """
        self._p2p = service

    # -- dissemination -------------------------------------------------------
    def _broadcast_tx(self, tx: Transaction) -> None:
        if self._p2p is not None:
            self._p2p.announce_tx(tx)
        else:
            self.network.broadcast(
                self.name, "tx", tx, size_bytes=tx.estimated_size_bytes()
            )

    def _broadcast_block(self, block: Block) -> None:
        if self._p2p is not None:
            self._p2p.announce_block(block)
        else:
            self.network.broadcast(
                self.name, "block", block, size_bytes=block.estimated_size_bytes()
            )

    def submit_tx(self, tx: Transaction) -> AdmissionResult:
        """Inject a transaction locally and gossip it to every peer.

        Returns the pool's typed admission outcome (truthy iff the pool
        now holds the transaction).  Rejected transactions are *not*
        announced to peers — an underpriced or rate-limited bid dies
        here instead of consuming network-wide gossip bandwidth — and
        are *forgotten*: the duplicate check is answered by current
        pool membership and committed receipts, never by a
        first-contact set, so a bid refused under transient overload
        (RATE_LIMITED, POOL_FULL) can be resubmitted and admitted once
        pressure clears.
        """
        tx.validate()
        if tx.tx_id in self._receipts_by_tx:
            return AdmissionResult(
                DUPLICATE, tx_id=tx.tx_id, reason="already committed"
            )
        added = self._admit_tx(tx)
        if added:
            self._tx_submit_times.setdefault(tx.tx_id, self.now)
            self._broadcast_tx(tx)
            if self._started and self._proposal_handle is None:
                self._plan_round()
        return added

    def _admit_tx(self, tx: Transaction) -> AdmissionResult:
        """Offer a transaction to the pool with the head account nonce."""
        return self.mempool.add(tx, account_nonce=self.state.nonce(tx.sender))

    def call_view(
        self,
        contract_id: str,
        method: str,
        args: Optional[Dict[str, Any]] = None,
        caller: str = "",
    ) -> Any:
        """Read-only contract call against this node's head state."""
        return self.executor.execute_view(
            self.state,
            contract_id,
            method,
            args,
            caller=caller or self.name,
            context=ExecutionContext(
                block_height=self.head.height,
                timestamp_ms=int(self.now * 1000),
                node_name=self.name,
            ),
        )

    # -- network ------------------------------------------------------------
    def _on_message(self, sender: str, message: Message) -> None:
        if message.kind == "tx":
            self._handle_gossip_tx(message.payload)
        elif message.kind == "block":
            self._handle_gossip_block(message.payload, sender)
        elif message.kind == "get_block":
            self._handle_get_block(message.payload, sender)
        elif message.kind.startswith("p2p.") and self._p2p is not None:
            # SimTransport shares this node's network endpoint; hand its
            # request/response envelopes to the p2p transport.
            self._p2p.transport.handle_message(sender, message)

    def _handle_gossip_tx(self, tx: Transaction) -> None:
        if tx.tx_id in self.mempool or tx.tx_id in self._receipts_by_tx:
            return
        try:
            tx.validate()
        except ValidationError:
            return
        added = self._admit_tx(tx)
        # Only transactions this node actually pooled are relayed: spam the
        # fee market refused (underpriced, rate-limited, shed) dies at the
        # first hop instead of propagating across the network.  Refusals
        # are not remembered, so a re-announcement after a transient
        # shedding or rate-limiting episode gets a fresh admission
        # decision instead of being dropped forever.
        if added and self.config.rebroadcast_txs:
            self._broadcast_tx(tx)
        if added and self._started and self._proposal_handle is None:
            self._plan_round()

    def _handle_gossip_block(self, block: Block, sender: str = "") -> None:
        if block.block_id in self._seen_blocks:
            return
        self._seen_blocks.add(block.block_id)
        parent_id = block.header.parent_hash.hex()
        if parent_id not in self._states:
            if parent_id in self.store and self._recover_states(parent_id):
                # Parent block known but its state was pruned or skipped
                # (e.g. after a restart): re-executing the gap recovers it,
                # so the block need not be rejected.
                self._ingest_block(block)
                return
            # We missed an ancestor (e.g. during a partition): buffer the
            # block, then back-fill the gap — headers-first sync when p2p
            # is attached, a point get_block request from the sender on
            # the legacy flood path.
            self._pending_blocks.setdefault(parent_id, []).append(block)
            self.metrics.add("blocks_waiting_parent", 1, scope=self.name)
            if self._p2p is not None:
                self._p2p.request_backfill()
            elif sender and parent_id not in self._requested_blocks:
                self._requested_blocks.add(parent_id)
                self.network.send(self.name, sender, "get_block", parent_id)
            return
        self._ingest_block(block)

    def _recover_states(self, block_id: str, max_depth: Optional[int] = None) -> bool:
        """Rebuild the post-state of a stored block by re-executing forward.

        Walks parent links back to the nearest ancestor whose state is
        still held (bounded by the prune window — states older than that
        are gone by design), then verifies and re-executes each block on
        the path.  Returns True when ``block_id``'s state is available
        afterwards.
        """
        if block_id in self._states:
            return True
        if max_depth is None:
            max_depth = self.config.state_prune_window or len(self.store)
        path: List[Block] = []
        current_id = block_id
        while current_id not in self._states:
            if current_id not in self.store or len(path) >= max_depth:
                return False  # gap reaches below the retained window
            block = self.store.get(current_id)
            path.append(block)
            current_id = block.header.parent_hash.hex()
        for block in reversed(path):
            if not self._verify_and_execute(block):
                return False
            self.metrics.add("states_recovered", 1, scope=self.name)
        return True

    def _ingest_block(self, block: Block) -> None:
        """Verify, execute, adopt, and drain any blocks waiting on this one."""
        if not self._verify_and_execute(block):
            return
        old_head = self.store.head
        self.store.add(block)
        self._report_orphan_evictions()
        if self.config.rebroadcast_blocks:
            self._broadcast_block(block)
        if self.store.head.block_id != old_head.block_id:
            self._on_new_head(old_head)
        for child in self._pending_blocks.pop(block.block_id, []):
            self._ingest_block(child)

    def _handle_get_block(self, block_id: str, requester: str) -> None:
        """Serve a back-fill request from a peer catching up."""
        if not isinstance(block_id, str) or block_id not in self.store:
            return
        block = self.store.get(block_id)
        self.network.send(
            self.name,
            requester,
            "block",
            block,
            size_bytes=block.estimated_size_bytes(),
        )

    # -- verification (the duplicated computing) -----------------------------
    def _verify_and_execute(self, block: Block) -> bool:
        """Verify proof and re-execute the block's transactions.

        Every node does this for every block — the per-node gas charged here
        is the paper's duplicated smart-contract computation.
        """
        with trace_span(
            "consensus.verify_block",
            node=self.name,
            engine=self.consensus.name,
            height=block.height,
            txs=len(block.transactions),
            sim_time=self.now,
        ) as span:
            valid = self._verify_and_execute_inner(block)
            span.set_attr("valid", valid)
            state = self._states.get(block.block_id)
            if state is not None:
                self._set_state_span_attrs(span, state)
        return valid

    def _verify_and_execute_inner(self, block: Block) -> bool:
        parent_id = block.header.parent_hash.hex()
        parent_state = self._states.get(parent_id)
        if parent_state is None:
            # The parent block may be stored with its state pruned/skipped;
            # re-execute the gap rather than silently rejecting the block.
            if parent_id in self.store and self._recover_states(parent_id):
                parent_state = self._states[parent_id]
            else:
                self.metrics.add(
                    "blocks_missing_parent_state", 1, scope=self.name
                )
                return False
        parent = self.store.get(parent_id)
        try:
            block.validate_structure()
        except ValidationError:
            return False
        if not self.consensus.verify(block, parent):
            return False
        state, receipts = self._execute_transactions(
            parent_state, block.transactions, block
        )
        if state.state_root() != block.header.state_root:
            return False
        self._remember_execution(block, state, receipts)
        return True

    def _execute_transactions(
        self, parent_state: StateDB, txs: List[Transaction], block: Block
    ):
        context = ExecutionContext(
            block_height=block.height,
            timestamp_ms=block.header.timestamp_ms,
            proposer=block.header.proposer,
            node_name=self.name,
        )
        state, receipts = self._apply_block(parent_state, txs, context)
        return state, receipts

    def _apply_block(
        self,
        parent_state: StateDB,
        txs: List[Transaction],
        context: ExecutionContext,
    ):
        """Fork the parent and apply ``txs``, serially or via the parallel
        scheduler per config; results are bit-identical either way."""
        if self.config.parallel_execution:
            state, receipts = self._block_scheduler().execute_block(
                parent_state, txs, context
            )
            for receipt in receipts:
                self.metrics.add_gas(receipt.gas_used, scope=self.name)
            return state, receipts
        state = parent_state.fork()
        receipts = []
        for tx in txs:
            receipt = self.executor.apply(state, tx, context)
            self.metrics.add_gas(receipt.gas_used, scope=self.name)
            receipts.append(receipt)
        return state, receipts

    def _remember_execution(
        self, block: Block, state: StateDB, receipts: List[Receipt]
    ) -> None:
        self._states[block.block_id] = state
        self._block_receipts[block.block_id] = receipts

    def _set_state_span_attrs(self, span, state: StateDB) -> None:
        stats = state.stats()
        span.set_attr("state_writes", stats["local_keys"])
        span.set_attr("overlay_depth", stats["overlay_depth"])
        span.set_attr("journal_depth", stats["journal_depth"])
        span.set_attr("root_cache_hits", stats["root_cache_hits"])
        span.set_attr("root_recomputes", stats["root_recomputes"])

    def _report_orphan_evictions(self) -> None:
        evicted = self.store.orphans_evicted - self._orphan_evictions_reported
        if evicted > 0:
            self.metrics.add("orphans_evicted", evicted, scope=self.name)
            self._orphan_evictions_reported = self.store.orphans_evicted

    # -- head adoption -----------------------------------------------------
    def _on_new_head(self, old_head: Block) -> None:
        self._charge_lost_race()
        new_blocks = self._new_canonical_blocks()
        self._evict_committed(new_blocks)
        self._record_commits(new_blocks)
        self._emit_new_canonical_events(new_blocks)
        self._prune_states()
        self.metrics.add("blocks_adopted", 1, scope=self.name)
        if self._started:
            self._plan_round()

    # -- state pruning ------------------------------------------------------
    def _prune_states(self) -> None:
        """Bound per-block state retention to the finality window.

        Full (collapsed) state is kept only at (or a bounded distance
        below) the window boundary on the canonical chain; newer blocks —
        canonical or recent forks — keep their copy-on-write overlays.
        Everything older is dropped from the per-block maps, so state
        memory scales with chain width inside the window rather than with
        total chain length.  The boundary state is collapsed only once its
        overlay chain reaches ``state_collapse_interval`` layers, keeping
        steady-state per-block cost at O(write-set) amortized instead of
        rebuilding the full state dict on every head change.  Blocks
        attaching below the boundary can no longer be validated
        (documented finality assumption).
        """
        window = self.config.state_prune_window
        if window <= 0:
            return
        head = self.store.head
        boundary_height = head.height - window
        if boundary_height < 0:
            return
        boundary = head
        for _ in range(window):
            boundary = self.store.get(boundary.header.parent_hash.hex())
        boundary_state = self._states.get(boundary.block_id)
        if boundary_state is not None and boundary_state.overlay_depth >= max(
            1, self.config.state_collapse_interval
        ):
            boundary_state.collapse()
        stale = [
            block_id
            for block_id in self._states
            if block_id != boundary.block_id
            and self.store.get(block_id).height <= boundary_height
        ]
        for block_id in stale:
            del self._states[block_id]
            self._block_receipts.pop(block_id, None)
        if stale:
            self.metrics.add("state_entries_pruned", len(stale), scope=self.name)

    def _new_canonical_blocks(self) -> List[Block]:
        """Canonical blocks not yet processed, oldest first.

        Walks back from the head until it meets an already-emitted block;
        with longest-chain consensus reorgs are shallow, so this is O(new
        blocks) instead of O(chain length).  Transactions reorged *out* are
        not returned to the mempool (documented simplification).
        """
        fresh: List[Block] = []
        for block in self.store.ancestors(self.store.head):
            if block.block_id in self._emitted_blocks:
                break
            fresh.append(block)
        fresh.reverse()
        return fresh

    def _evict_committed(self, new_blocks: List[Block]) -> None:
        """Drop committed txs and purge nonces the chain has moved past.

        The post-block account nonce of every sender touched by the new
        canonical blocks is fed back to the pool, which purges any pooled
        transaction with a lower nonce — those can never execute and used
        to leak in the pool forever.
        """
        committed: List[str] = []
        senders: Set[str] = set()
        for block in new_blocks:
            for tx in block.transactions:
                committed.append(tx.tx_id)
                senders.add(tx.sender)
        if not committed:
            return
        head_state = self._states[self.store.head.block_id]
        nonces = {sender: head_state.nonce(sender) for sender in senders}
        self.mempool.commit(committed, nonces)

    def _record_commits(self, new_blocks: List[Block]) -> None:
        for block in new_blocks:
            for receipt in self._block_receipts.get(block.block_id, []):
                if receipt.tx_id not in self._receipts_by_tx:
                    self._receipts_by_tx[receipt.tx_id] = receipt
                    submitted = self._tx_submit_times.get(receipt.tx_id)
                    if submitted is not None:
                        self.metrics.observe(
                            "tx_commit_latency_s", self.now - submitted
                        )
                        self.metrics.add("txs_committed", 1, scope=self.name)

    def _emit_new_canonical_events(self, new_blocks: List[Block]) -> None:
        for block in new_blocks:
            if block.block_id in self._emitted_blocks:
                continue
            self._emitted_blocks.add(block.block_id)
            for receipt in self._block_receipts.get(block.block_id, []):
                for event in receipt.events:
                    self.events.append(event)
                    for subscriber in self._event_subscribers:
                        subscriber(event)

    # -- proposing ----------------------------------------------------------
    def _cancel_round(self) -> None:
        if self._proposal_handle is not None:
            self._proposal_handle.cancel()
            self._proposal_handle = None
        self._round_start = None

    def _charge_lost_race(self) -> None:
        """Account hash work burned since the round began (PoW racing)."""
        if self._round_start is None:
            return
        elapsed = self.now - self._round_start
        rate = self.consensus.work_per_second(self.name)
        if rate > 0 and elapsed > 0:
            self.metrics.add_hashes(elapsed * rate, scope=self.name)
        self._round_start = None

    def _plan_round(self) -> None:
        self._cancel_round()
        if not self._started:
            return
        if not self.config.mine_empty and len(self.mempool) == 0:
            return
        plan = self.consensus.plan_proposal(
            self.name, self.store.head, self.kernel.rng.random()
        )
        if plan.delay_s is None:
            return
        parent_id = self.store.head.block_id
        self._round_start = self.now
        self._proposal_handle = self.after(
            plan.delay_s, lambda: self._propose(parent_id), label=f"{self.name}:propose"
        )

    def _propose(self, parent_id: str) -> None:
        self._proposal_handle = None
        if self.store.head.block_id != parent_id:
            # Lost the race; a new round has been planned by _on_new_head.
            return
        with trace_span(
            "consensus.propose",
            node=self.name,
            engine=self.consensus.name,
            height=self.store.head.height + 1,
            sim_time=self.now,
        ) as span:
            self._propose_inner(span)

    def _propose_inner(self, span) -> None:
        parent = self.store.head
        parent_state = self._states[parent.block_id]
        # Priority-ordered executable selection: the pool looks up each
        # candidate sender's account nonce lazily and drains by effective
        # fee (replaces the old two-pass FIFO scan).
        txs = self.mempool.select(
            self.config.max_txs_per_block, nonces=parent_state.nonce
        )
        if not txs and not self.config.mine_empty:
            # Nothing executable (nonce gaps); wait for new txs or a new head.
            return
        context = ExecutionContext(
            block_height=parent.height + 1,
            timestamp_ms=int(self.now * 1000),
            proposer=self.name,
            node_name=self.name,
        )
        state, receipts = self._apply_block(parent_state, txs, context)
        block = build_block(
            parent=parent,
            transactions=txs,
            state_root=state.state_root(),
            proposer=self.name,
            timestamp_ms=int(self.now * 1000),
        )
        sealed = self.consensus.seal(self.name, block)
        attempts = sealed.header.consensus.get("attempts", 0)
        span.set_attr("txs", len(txs))
        span.set_attr("hashes", attempts)
        self._set_state_span_attrs(span, state)
        if attempts:
            self.metrics.add_hashes(attempts, scope=self.name)
        self._round_start = None
        self._seen_blocks.add(sealed.block_id)
        self._remember_execution(sealed, state, receipts)
        old_head = self.store.head
        self.store.add(sealed)
        self.metrics.add("blocks_proposed", 1, scope=self.name)
        self._broadcast_block(sealed)
        if self.store.head.block_id != old_head.block_id:
            self._on_new_head(old_head)
        else:
            self._plan_round()
        # A gossiped block buffered on us may have been waiting for exactly
        # this proposal (we re-proposed a parent another branch built on).
        for child in self._pending_blocks.pop(sealed.block_id, []):
            self._ingest_block(child)


def make_network_nodes(
    kernel: Kernel,
    network: Network,
    names: List[str],
    genesis: Block,
    genesis_state: StateDB,
    consensus_factory: Callable[[], ConsensusEngine],
    metrics: Optional[MetricsRegistry] = None,
    config: Optional[NodeConfig] = None,
    shared_executor: bool = False,
) -> Dict[str, BlockchainNode]:
    """Build one node per name on a shared network and genesis.

    ``consensus_factory`` is called once per node unless the engine is
    stateless; passing a single shared engine instance via a lambda is fine.
    ``shared_executor=True`` shares one compile cache (saves wall-clock in
    large simulations without affecting determinism).
    """
    executor = ContractExecutor() if shared_executor else None
    shared_metrics = metrics or MetricsRegistry()
    nodes = {}
    for name in names:
        nodes[name] = BlockchainNode(
            kernel=kernel,
            network=network,
            name=name,
            genesis=genesis,
            genesis_state=genesis_state,
            consensus=consensus_factory(),
            executor=executor or ContractExecutor(),
            metrics=shared_metrics,
            config=config,
        )
    return nodes
