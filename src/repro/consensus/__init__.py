"""Consensus engines (PoW / PoA / PoS) and the full blockchain node."""

from repro.consensus.base import ConsensusEngine, ProposalPlan
from repro.consensus.difficulty import (
    DifficultySchedule,
    RetargetConfig,
    next_difficulty_bits,
)
from repro.consensus.node import BlockchainNode, NodeConfig, make_network_nodes
from repro.consensus.poa import ProofOfAuthority
from repro.consensus.pos import ProofOfStake
from repro.consensus.pow import ProofOfWork, check_pow, grind, pow_target

__all__ = [
    "BlockchainNode",
    "ConsensusEngine",
    "DifficultySchedule",
    "NodeConfig",
    "ProofOfAuthority",
    "ProofOfStake",
    "ProofOfWork",
    "ProposalPlan",
    "check_pow",
    "grind",
    "make_network_nodes",
    "pow_target",
    "RetargetConfig",
    "next_difficulty_bits",
]
