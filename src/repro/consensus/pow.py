"""Proof of work with a real SHA-256 hash puzzle.

The sealing step actually grinds nonces (so verification is a genuine hash
check and the "hashes" counters reflect real work), while *scheduling* uses
the exponential race model: a miner with hash rate ``r`` facing difficulty
``D`` (expected hashes) solves after ``Exp(D / r)`` seconds.  This separates
simulated time (what latency/throughput experiments measure) from real CPU
time (kept small by using low difficulty bits).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.chain.blocks import Block
from repro.common.hashing import sha256
from repro.consensus.base import ConsensusEngine, ProposalPlan
from repro.obs.tracer import trace_span


def pow_target(bits: int) -> int:
    """Numeric target: hash value must be strictly below this."""
    return 1 << (256 - bits)


def check_pow(mining_digest: bytes, nonce: int, bits: int) -> bool:
    """Verify a PoW solution."""
    digest = sha256(mining_digest + nonce.to_bytes(8, "big"))
    return int.from_bytes(digest, "big") < pow_target(bits)


def grind(mining_digest: bytes, bits: int, start_nonce: int = 0) -> tuple:
    """Find a valid nonce by brute force; returns (nonce, attempts)."""
    nonce = start_nonce
    attempts = 0
    target = pow_target(bits)
    while True:
        attempts += 1
        digest = sha256(mining_digest + nonce.to_bytes(8, "big"))
        if int.from_bytes(digest, "big") < target:
            return nonce, attempts
        nonce += 1


class ProofOfWork(ConsensusEngine):
    """Nakamoto-style PoW; every registered miner races every height."""

    name = "pow"

    def __init__(
        self,
        difficulty_bits: int = 14,
        hash_rates: Optional[Dict[str, float]] = None,
        default_hash_rate: float = 1e5,
    ):
        if not 1 <= difficulty_bits <= 64:
            raise ValueError("difficulty_bits must be in [1, 64]")
        self.difficulty_bits = difficulty_bits
        self.hash_rates = dict(hash_rates or {})
        self.default_hash_rate = default_hash_rate

    def hash_rate(self, node_name: str) -> float:
        return self.hash_rates.get(node_name, self.default_hash_rate)

    @property
    def expected_hashes(self) -> float:
        return float(2 ** self.difficulty_bits)

    def plan_proposal(
        self, node_name: str, parent: Block, rng_sample: float
    ) -> ProposalPlan:
        """Exponential race: solve time ~ Exp(expected_hashes / rate)."""
        rate = self.hash_rate(node_name)
        mean = self.expected_hashes / rate
        # Inverse-CDF sampling from the uniform handed in by the node's RNG.
        sample = min(max(rng_sample, 1e-12), 1 - 1e-12)
        delay = -mean * math.log(1.0 - sample)
        return ProposalPlan(delay_s=delay, hash_work=int(self.expected_hashes))

    def seal(self, node_name: str, block: Block) -> Block:
        with trace_span(
            "pow.seal", node=node_name, bits=self.difficulty_bits
        ) as span:
            digest = block.header.mining_digest()
            nonce, attempts = grind(digest, self.difficulty_bits)
            span.set_attr("hashes", attempts)
        return block.with_consensus(
            {
                "type": self.name,
                "bits": self.difficulty_bits,
                "nonce": nonce,
                "attempts": attempts,
            }
        )

    def verify(self, block: Block, parent: Block) -> bool:
        with trace_span("pow.verify", bits=self.difficulty_bits, hashes=1) as span:
            proof = block.header.consensus
            valid = (
                proof.get("type") == self.name
                and proof.get("bits") == self.difficulty_bits
                and isinstance(proof.get("nonce"), int)
                and proof["nonce"] >= 0
                and check_pow(
                    block.header.mining_digest(),
                    proof["nonce"],
                    self.difficulty_bits,
                )
            )
            span.set_attr("valid", valid)
        return valid

    def work_per_second(self, node_name: str) -> float:
        return self.hash_rate(node_name)
