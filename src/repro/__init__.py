"""medchain: blockchain as a distributed parallel computing architecture
for precision medicine.

Reproduction of Shae & Tsai, "Transform Blockchain into Distributed Parallel
Computing Architecture for Precision Medicine", ICDCS 2018.

Public entry points live in :mod:`repro.core`; the substrates (chain,
consensus, contracts, simulation, data management, sharing, analytics,
learning, query, trial) are importable subpackages.
"""

__version__ = "1.0.0"
